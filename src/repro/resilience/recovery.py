"""Recovery policies: what happens to a packet a fault takes down.

When a link dies under a packet (or a degraded topology leaves a header
with no route), the engine asks the run's :class:`RecoveryPolicy` what
to do with the casualty.  Three policies cover the design space the
fault-tolerant NoC literature uses:

* :class:`DropAndCount` — discard the packet and account for it; the
  delivered-fraction metric then measures raw routing fault tolerance.
* :class:`SourceRetransmit` — re-enqueue the whole message at its source
  after a capped exponential backoff, giving end-to-end delivery
  semantics over an unreliable network.
* :class:`AbortRun` — stop the simulation at the first casualty, for
  experiments where any loss invalidates the run.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = [
    "ABORT",
    "DROP",
    "RETRY",
    "AbortRun",
    "DropAndCount",
    "RecoveryDecision",
    "RecoveryPolicy",
    "SourceRetransmit",
    "available_recovery_policies",
    "make_recovery_policy",
]

#: Decision action: discard the packet and count it dropped.
DROP = "drop"
#: Decision action: re-enqueue the message at its source after ``delay``.
RETRY = "retry"
#: Decision action: terminate the run.
ABORT = "abort"


@dataclass(frozen=True)
class RecoveryDecision:
    """What to do with one casualty.

    Attributes:
        action: :data:`DROP`, :data:`RETRY`, or :data:`ABORT`.
        delay: cycles to wait before the retransmission (``RETRY`` only).
    """

    action: str
    delay: int = 0


class RecoveryPolicy(ABC):
    """Decides the fate of packets lost to faults.

    Attributes:
        name: registry identifier (``drop``, ``retransmit``, ``abort``).
    """

    name: str = "unnamed"

    @abstractmethod
    def decide(self, attempt: int) -> RecoveryDecision:
        """The decision for a casualty on its ``attempt``-th loss.

        Args:
            attempt: how many times this message has already been
                retransmitted (0 on the first loss).
        """


class DropAndCount(RecoveryPolicy):
    """Discard every casualty; the stats layer counts them."""

    name = "drop"

    def decide(self, attempt: int) -> RecoveryDecision:
        return RecoveryDecision(DROP)


class SourceRetransmit(RecoveryPolicy):
    """Re-send lost messages from their source, with capped backoff.

    The k-th retransmission of a message waits
    ``min(base_delay * 2**k, delay_cap)`` cycles; after ``max_attempts``
    losses the message is dropped for good.

    Args:
        base_delay: backoff for the first retransmission, in cycles.
        delay_cap: ceiling on the exponential backoff.
        max_attempts: retransmissions before giving up on a message.
    """

    name = "retransmit"

    def __init__(
        self, base_delay: int = 8, delay_cap: int = 512, max_attempts: int = 8
    ):
        if base_delay < 1:
            raise ValueError(f"base_delay must be >= 1, got {base_delay}")
        if delay_cap < base_delay:
            raise ValueError(
                f"delay_cap ({delay_cap}) must be >= base_delay ({base_delay})"
            )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.base_delay = base_delay
        self.delay_cap = delay_cap
        self.max_attempts = max_attempts

    def decide(self, attempt: int) -> RecoveryDecision:
        if attempt >= self.max_attempts:
            return RecoveryDecision(DROP)
        # attempt is capped above, and the shift saturates at delay_cap,
        # so the exponent cannot blow up.
        delay = min(self.base_delay << min(attempt, 30), self.delay_cap)
        return RecoveryDecision(RETRY, delay)


class AbortRun(RecoveryPolicy):
    """Terminate the run at the first casualty."""

    name = "abort"

    def decide(self, attempt: int) -> RecoveryDecision:
        return RecoveryDecision(ABORT)


_POLICIES = {
    DropAndCount.name: DropAndCount,
    SourceRetransmit.name: SourceRetransmit,
    AbortRun.name: AbortRun,
}


def available_recovery_policies() -> tuple:
    """The registered policy names, sorted."""
    return tuple(sorted(_POLICIES))


def make_recovery_policy(name: str, **kwargs) -> RecoveryPolicy:
    """Instantiate a recovery policy by registry name.

    Args:
        name: ``drop``, ``retransmit``, or ``abort``.
        kwargs: constructor arguments (``retransmit`` accepts
            ``base_delay``, ``delay_cap``, ``max_attempts``).
    """
    try:
        factory = _POLICIES[name.strip().lower()]
    except KeyError:
        known = ", ".join(available_recovery_policies())
        raise ValueError(
            f"unknown recovery policy {name!r}; known: {known}"
        ) from None
    return factory(**kwargs)
