"""The runtime fault controller the engine consults each cycle.

A :class:`FaultController` replays a
:class:`~repro.resilience.schedule.FaultSchedule` against a live
simulation.  The engine owns the clock and the packets; the controller
owns the fault state:

* which channels are currently failed (and hence the degraded
  topology/routing pair the engine must route against),
* the recovery bookkeeping — per-message retransmission attempts and the
  retry heap of messages waiting out their backoff,
* the :class:`~repro.resilience.stats.ResilienceStats` ledger.

The contract with the engine is deliberately small: ``bind`` once at
construction, then per cycle (only when ``next_wake`` has arrived)
``advance`` + ``pop_retries``; ``casualty`` for every packet torn out of
the network, ``on_delivered`` for every completed one, and ``finish``
when the clock stops.  ``next_wake`` makes the whole subsystem free when
idle: with an empty schedule and no pending retries it stays at
infinity and the engine's hot path never enters the fault code.

Every degraded configuration is re-certified deadlock-free (PR 3's
prover) before the run proceeds, unless the controller was built with
``recertify=False`` — the CLI's ``--no-recertify`` escape hatch.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.resilience.recovery import (
    DROP,
    RETRY,
    DropAndCount,
    RecoveryDecision,
    RecoveryPolicy,
    make_recovery_policy,
)
from repro.resilience.schedule import FAIL, FaultEvent, FaultSchedule
from repro.resilience.stats import ResilienceStats
from repro.routing.base import RoutingAlgorithm
from repro.routing.registry import make_routing
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId
from repro.topology.faults import FaultyTopology

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.analysis.executor import ResilienceSpec
    from repro.sim.config import SimulationConfig
    from repro.sim.packet import Packet

__all__ = ["DegradedRouting", "FaultController", "build_controller"]

_INF = float("inf")

#: A retry-heap entry: (ready cycle, tie-break seq, src, dest, size,
#: original create_time).  The engine re-enqueues the last four fields
#: as a source-queue message, so a retransmitted message keeps its
#: original creation time (end-to-end latency includes the recovery).
RetryEntry = Tuple[int, int, NodeId, NodeId, int, float]

#: A message identity stable across retransmissions.
MessageKey = Tuple[NodeId, NodeId, float]


class DegradedRouting(RoutingAlgorithm):
    """A routing relation with the failed channels filtered out.

    The fallback when no ``routing_factory`` is supplied: the base
    algorithm's decisions are kept, minus any candidate that is
    currently dead.  A factory-rebuilt algorithm (the default for fault
    sweeps) instead re-derives its tables on the degraded topology and
    can genuinely route *around* faults; this wrapper can only prune,
    which models a router whose configuration cannot be recomputed
    online.

    Attributes:
        degraded_base: the healthy algorithm being filtered.  Its
            presence also tells the engine's cache refresh that only
            entries touching the changed channels went stale.
        failed: the channels filtered from every decision.
    """

    def __init__(
        self,
        base: RoutingAlgorithm,
        failed: FrozenSet[Channel],
        topology: Topology,
    ):
        super().__init__(topology)
        self.degraded_base = base
        self.failed = failed
        self.name = base.name
        self.minimal = base.minimal
        self.cacheable = base.cacheable
        self.uses_in_channel = base.uses_in_channel

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        failed = self.failed
        return tuple(
            channel
            for channel in self.degraded_base.route(in_channel, node, dest)
            if channel not in failed
        )


class FaultController:
    """Replays a fault schedule and manages recovery for one run.

    Args:
        schedule: the fail/heal events to replay.
        policy: the recovery policy for casualties; drop-and-count when
            omitted.
        routing_factory: rebuilds the routing algorithm on a degraded
            topology (e.g. ``lambda t: make_routing(name, t)``), letting
            table-driven algorithms re-derive their reachability around
            the faults.  When ``None``, the healthy algorithm is wrapped
            in :class:`DegradedRouting` (filter-only degradation).
        recertify: re-prove every degraded configuration deadlock-free
            before the run proceeds (raises
            :class:`~repro.verify.suite.CertificationError` otherwise).

    Attributes:
        stats: the run's :class:`ResilienceStats` ledger.
        failed: the currently failed channels.
        current_routing, current_topology: what the engine should route
            against right now (the healthy pair until the first fault).
        next_event_cycle: cycle of the next unapplied schedule event.
        next_wake: earliest cycle at which the controller has any work
            (schedule event or due retry); ``inf`` when idle, which lets
            the engine skip the fault hook entirely.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        policy: Optional[RecoveryPolicy] = None,
        *,
        routing_factory: Optional[Callable[[Topology], RoutingAlgorithm]] = None,
        recertify: bool = True,
    ):
        self.schedule = schedule
        self.policy: RecoveryPolicy = policy if policy is not None else DropAndCount()
        self.routing_factory = routing_factory
        self.recertify_enabled = recertify
        self.stats = ResilienceStats()
        self.base_routing: Optional[RoutingAlgorithm] = None
        self.base_topology: Optional[Topology] = None
        self.current_routing: Optional[RoutingAlgorithm] = None
        self.current_topology: Optional[Topology] = None
        self.failed: FrozenSet[Channel] = frozenset()
        self.next_event_cycle: float = _INF
        self.next_wake: float = _INF
        self._cursor = 0
        self._retry_heap: List[RetryEntry] = []
        self._attempts: Dict[MessageKey, int] = {}
        self._seq = 0

    # -- engine lifecycle ----------------------------------------------

    def bind(self, routing: RoutingAlgorithm, topology: Topology) -> None:
        """Attach to one run; called once by the engine's constructor.

        Validates the schedule against the run's topology and resets all
        per-run state, so one controller instance serves one run.
        """
        self.schedule.validate_for(topology)
        self.base_routing = routing
        self.base_topology = topology
        self.current_routing = routing
        self.current_topology = topology
        self.failed = frozenset()
        self.stats = ResilienceStats()
        self._cursor = 0
        self._retry_heap = []
        self._attempts = {}
        self._seq = 0
        events = self.schedule.events
        self.next_event_cycle = events[0].cycle if events else _INF
        self.next_wake = self.next_event_cycle

    def advance(self, cycle: int) -> List[FaultEvent]:
        """Apply every schedule event due at or before ``cycle``.

        Returns the applied events (empty when none were due).  When any
        event fired, the degraded topology/routing pair is rebuilt and —
        unless disabled — re-certified deadlock-free before returning.
        """
        events = self.schedule.events
        cursor = self._cursor
        applied: List[FaultEvent] = []
        failed = set(self.failed)
        while cursor < len(events) and events[cursor].cycle <= cycle:
            event = events[cursor]
            cursor += 1
            if event.kind == FAIL:
                failed.add(event.channel)
                self.stats.on_fault()
            else:
                failed.discard(event.channel)
                self.stats.on_heal()
            applied.append(event)
        self._cursor = cursor
        self.next_event_cycle = (
            events[cursor].cycle if cursor < len(events) else _INF
        )
        if applied:
            self.failed = frozenset(failed)
            self._rebuild()
        self._update_wake()
        return applied

    def _rebuild(self) -> None:
        base_topology = self.base_topology
        base_routing = self.base_routing
        assert base_topology is not None and base_routing is not None
        if not self.failed:
            self.current_topology = base_topology
            self.current_routing = base_routing
            return
        degraded = FaultyTopology(base_topology, self.failed)
        if self.routing_factory is not None:
            routing = self.routing_factory(degraded)
        else:
            routing = DegradedRouting(base_routing, self.failed, degraded)
        self.current_topology = degraded
        self.current_routing = routing
        if self.recertify_enabled:
            self._recertify(degraded, routing)

    def _recertify(self, topology: Topology, routing: RoutingAlgorithm) -> None:
        # Imported lazily: repro.verify pulls in the whole prover stack,
        # which a no-fault (or --no-recertify) run never needs.
        from repro.verify import recertify

        label = f"degraded({len(self.failed)} failed)"
        recertify(topology, routing, topology_label=label)
        self.stats.on_recertified()

    # -- recovery ------------------------------------------------------

    @property
    def retries_pending(self) -> bool:
        """Whether any retransmission is still waiting out its backoff."""
        return bool(self._retry_heap)

    def pop_retries(self, cycle: int) -> List[RetryEntry]:
        """The retransmissions whose backoff expires at or before ``cycle``.

        The engine re-enqueues each as a fresh source-queue message.
        """
        heap = self._retry_heap
        if not heap or heap[0][0] > cycle:
            return []
        ready: List[RetryEntry] = []
        while heap and heap[0][0] <= cycle:
            ready.append(heappop(heap))
        self._update_wake()
        return ready

    def casualty(self, packet: "Packet", cycle: int) -> RecoveryDecision:
        """Decide the fate of a packet torn out of the network.

        Called by the engine for every packet that held a failed channel
        or whose header found no route on the degraded topology.  The
        engine executes the returned decision; retransmissions are
        queued here and surface later via :meth:`pop_retries`.
        """
        key: MessageKey = (packet.src, packet.dest, packet.create_time)
        self.stats.on_casualty(key, cycle)
        attempt = self._attempts.get(key, 0)
        decision = self.policy.decide(attempt)
        if decision.action == RETRY:
            self._attempts[key] = attempt + 1
            self._seq += 1
            heappush(
                self._retry_heap,
                (
                    cycle + max(1, decision.delay),
                    self._seq,
                    packet.src,
                    packet.dest,
                    packet.size,
                    packet.create_time,
                ),
            )
            self.stats.on_retransmit()
            self._update_wake()
        elif decision.action == DROP:
            self._attempts.pop(key, None)
            self.stats.on_drop(key, cycle)
        else:
            self.stats.aborted = True
        return decision

    def on_delivered(self, packet: "Packet", cycle: int) -> None:
        """Account a fully consumed packet (detour hops, recovery latency)."""
        key: MessageKey = (packet.src, packet.dest, packet.create_time)
        self._attempts.pop(key, None)
        base = self.base_topology
        assert base is not None
        detour = packet.hops - base.distance(packet.src, packet.dest)
        self.stats.on_delivered(key, cycle, detour)

    def finish(self, created: int, cycle: int) -> None:
        """Seal the ledger when the engine's clock stops."""
        self.stats.finalize(created, cycle)

    def _update_wake(self) -> None:
        wake = self.next_event_cycle
        heap = self._retry_heap
        if heap and heap[0][0] < wake:
            wake = heap[0][0]
        self.next_wake = wake

    def __repr__(self) -> str:
        return (
            f"FaultController({self.schedule!r}, policy={self.policy.name}, "
            f"failed={len(self.failed)}, recertify={self.recertify_enabled})"
        )


def build_controller(
    topology: Topology,
    routing_name: str,
    spec: "ResilienceSpec",
    config: "SimulationConfig",
) -> FaultController:
    """Construct the controller a :class:`ResilienceSpec` describes.

    The executor's bridge from declarative spec to live controller: the
    fault window defaults to the run's measurement window, the schedule
    is seed-derived from the spec, and nonminimal algorithms are rebuilt
    by registry name on every degraded topology (so their turn tables
    re-derive reachability around the faults) while minimal algorithms
    degrade by candidate filtering — see the inline rationale.

    Args:
        topology: the healthy topology of the run.
        routing_name: registry name used to rebuild routing on degraded
            topologies.
        spec: the declarative description (fault count/seed, policy,
            window, recertification switch).
        config: the run's simulation config (supplies the default fault
            window).
    """
    window = spec.window
    if window is None:
        window = (
            config.warmup_cycles,
            config.warmup_cycles + config.measure_cycles,
        )
    # Minimal algorithms degrade by filtering, not rebuilding.  Several
    # minimal adaptive algorithms (negative-first is the clear case)
    # enforce their turn discipline through candidate *availability*:
    # rebuilt on a degraded topology, a fault that removes every
    # negative-going candidate makes them emit a positive hop with
    # negative hops still owed, and the later positive-to-negative turn
    # breaks the acyclicity proof — the recertifier rightly refuses such
    # configurations.  Filtering the healthy decision (DegradedRouting)
    # keeps the dependency graph a subset of the certified healthy one,
    # and a minimal algorithm cannot detour around faults anyway, so
    # nothing is lost.  Nonminimal turn-table routers keep their (static)
    # turn table under rebuild and gain re-derived reachability — the
    # detours the fault sweep measures.
    probe = make_routing(routing_name, topology)
    routing_factory = (
        None
        if probe.minimal
        else (lambda degraded: make_routing(routing_name, degraded))
    )
    schedule = FaultSchedule.random(
        topology,
        spec.fault_count,
        seed=spec.fault_seed,
        window=window,
        heal_after=spec.heal_after,
        require_connected=spec.require_connected,
    )
    if spec.policy == "retransmit":
        policy = make_recovery_policy(
            "retransmit",
            base_delay=spec.retransmit_base_delay,
            delay_cap=spec.retransmit_delay_cap,
            max_attempts=spec.retransmit_max_attempts,
        )
    else:
        policy = make_recovery_policy(spec.policy)
    return FaultController(
        schedule,
        policy,
        routing_factory=routing_factory,
        recertify=spec.recertify,
    )
