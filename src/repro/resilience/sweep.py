"""Fault sweeps: delivered fraction vs. escalating fault counts.

The paper's opening case for adaptive routing is that adaptiveness
"provides alternative paths for packets that encounter faulty hardware"
(Section 1).  :func:`fault_sweep` turns that claim into a measurement:
the same workload runs under the same seed-derived fault schedules for
several routing algorithms, and the resulting table shows the fraction
of messages each algorithm still delivers as the number of runtime link
failures grows — the nonminimal turn-table router keeps delivering
where dimension-order xy strands packets.

Sweeps route through the PR 1 :class:`~repro.analysis.executor
.SweepExecutor`, so points parallelize across processes and cache on
disk like every other experiment.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.executor import (
    ConfigSpec,
    ExperimentSpec,
    PointOutcome,
    PointSpec,
    ResilienceSpec,
    SweepExecutor,
)
from repro.obs.spec import ObsSpec
from repro.sim.config import SimulationConfig
from repro.sim.stats import SimulationResult
from repro.topology.base import Topology
from repro.topology.spec import topology_spec
from repro.traffic.workload import PAPER_SIZES, SizeDistribution

__all__ = ["FaultSweepCell", "FaultSweepResult", "fault_sweep", "render_fault_table"]


@dataclass(frozen=True)
class FaultSweepCell:
    """One (algorithm, fault count) measurement.

    Attributes:
        algorithm: routing algorithm registry name.
        fault_count: runtime link failures injected.
        result: the run's :class:`SimulationResult`.
        resilience: the run's resilience summary (``None`` only for the
            zero-fault baseline cells, which run the plain engine path).
    """

    algorithm: str
    fault_count: int
    result: SimulationResult
    resilience: Optional[dict]

    @property
    def delivered_fraction(self) -> float:
        """Messages delivered over messages created."""
        if self.resilience is not None:
            return self.resilience["delivered_fraction"]
        # Zero-fault baseline: nothing is ever dropped; undelivered
        # messages are merely still in flight or queued at drain end.
        created = max(1, self.result.total_injected)
        return self.result.total_delivered / created


@dataclass(frozen=True)
class FaultSweepResult:
    """A complete fault sweep: algorithms x fault counts.

    Attributes:
        topology: topology spec string the sweep ran on.
        pattern: traffic pattern name.
        load: offered load (flits per node per cycle).
        fault_counts: the escalation axis, ascending.
        cells: every measurement, grouped by algorithm then fault count.
    """

    topology: str
    pattern: str
    load: float
    fault_counts: Tuple[int, ...]
    cells: Tuple[FaultSweepCell, ...]

    def cell(self, algorithm: str, fault_count: int) -> FaultSweepCell:
        """The measurement for one (algorithm, fault count) pair."""
        for cell in self.cells:
            if cell.algorithm == algorithm and cell.fault_count == fault_count:
                return cell
        raise KeyError(f"no cell for {algorithm!r} at {fault_count} faults")

    def algorithms(self) -> List[str]:
        """The algorithms measured, in first-seen order."""
        seen: List[str] = []
        for cell in self.cells:
            if cell.algorithm not in seen:
                seen.append(cell.algorithm)
        return seen

    def to_dict(self) -> dict:
        """A JSON-ready summary (results flattened to key metrics)."""
        return {
            "topology": self.topology,
            "pattern": self.pattern,
            "load": self.load,
            "fault_counts": list(self.fault_counts),
            "cells": [
                {
                    "algorithm": cell.algorithm,
                    "fault_count": cell.fault_count,
                    "delivered_fraction": cell.delivered_fraction,
                    "avg_latency_cycles": cell.result.avg_latency_cycles,
                    "total_delivered": cell.result.total_delivered,
                    "deadlocked": cell.result.deadlocked,
                    "resilience": cell.resilience,
                }
                for cell in self.cells
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        """The summary as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def fault_sweep(
    topology: Union[str, Topology],
    algorithms: Sequence[str],
    pattern: str,
    load: float,
    fault_counts: Sequence[int],
    *,
    config: Optional[SimulationConfig] = None,
    sizes: SizeDistribution = PAPER_SIZES,
    seed: int = 1,
    fault_seed: int = 1,
    policy: str = "drop",
    heal_after: Optional[int] = None,
    recertify: bool = True,
    require_connected: bool = True,
    executor: Optional[SweepExecutor] = None,
    obs: Optional[ObsSpec] = None,
) -> FaultSweepResult:
    """Measure delivered fraction for each algorithm under each fault count.

    At a given fault count every algorithm faces the *same* seed-derived
    fault schedule (the schedule seed is ``fault_seed + fault_count``,
    independent of the algorithm), so differences in delivered fraction
    are attributable to routing alone.  A fault count of 0 runs the
    plain engine path as the healthy baseline.

    Args:
        topology: the healthy network, as an instance or a spec string.
        algorithms: routing registry names to compare.
        pattern: traffic pattern name.
        load: offered load in flits per node per cycle.
        fault_counts: escalation axis (any order; reported ascending).
        config: simulator knobs; library defaults when omitted.
        sizes: packet-size distribution.
        seed: workload RNG seed.
        fault_seed: base seed the per-count schedule seeds derive from.
        policy: recovery policy name for casualties.
        heal_after: cycles until each fault heals; ``None`` = permanent.
        recertify: re-prove each degraded configuration deadlock-free.
        require_connected: keep the fully degraded topology strongly
            connected (resampling the fault set, bounded).
        executor: the :class:`SweepExecutor` to run through; a fresh
            serial, uncached one when omitted.
        obs: optional :class:`~repro.obs.spec.ObsSpec`; every cell then
            collects channel/latency/timeline metrics (bit-invisible to
            results) — pair with an executor whose ``manifest_dir`` is
            set to persist them for ``repro report``.
    """
    spec_string = (
        topology if isinstance(topology, str) else topology_spec(topology)
    )
    counts = tuple(sorted(set(int(count) for count in fault_counts)))
    config_spec = ConfigSpec.from_config(config)
    points: List[PointSpec] = []
    for algorithm in algorithms:
        for count in counts:
            resilience = (
                ResilienceSpec(
                    fault_count=count,
                    fault_seed=fault_seed + count,
                    policy=policy,
                    heal_after=heal_after,
                    recertify=recertify,
                    require_connected=require_connected,
                )
                if count > 0
                else None
            )
            points.append(
                PointSpec(
                    spec=ExperimentSpec(
                        topology=spec_string,
                        routing=algorithm,
                        pattern=pattern,
                        load=load,
                        sizes=sizes.choices,
                        config=config_spec,
                        seed=seed,
                        resilience=resilience,
                        obs=obs,
                    ),
                    series=algorithm,
                    index=count,
                )
            )
    if executor is not None:
        outcomes: List[PointOutcome] = executor.run_points(points)
    else:
        # A self-created executor owns its worker pool; close it (via the
        # context manager) rather than leaking workers to the GC.
        with SweepExecutor() as runner:
            outcomes = runner.run_points(points)
    cells = tuple(
        FaultSweepCell(
            algorithm=outcome.point.series,
            fault_count=outcome.point.index,
            result=outcome.result,
            resilience=outcome.resilience,
        )
        for outcome in outcomes
    )
    first = points[0].spec
    return FaultSweepResult(
        topology=spec_string,
        pattern=first.pattern,
        load=load,
        fault_counts=counts,
        cells=cells,
    )


def render_fault_table(sweep: FaultSweepResult) -> str:
    """The sweep as a fixed-width text table (delivered fractions).

    One row per algorithm, one column per fault count — the shape of the
    paper's comparison tables.
    """
    counts = sweep.fault_counts
    algorithms = sweep.algorithms()
    label_width = max(len("algorithm"), *(len(name) for name in algorithms))
    header = "algorithm".ljust(label_width) + "".join(
        f"  {f'{count} faults':>10}" for count in counts
    )
    lines = [
        f"delivered fraction on {sweep.topology} "
        f"({sweep.pattern}, load {sweep.load:g})",
        header,
        "-" * len(header),
    ]
    for algorithm in algorithms:
        row = algorithm.ljust(label_width)
        for count in counts:
            cell = sweep.cell(algorithm, count)
            mark = "*" if cell.result.deadlocked else ""
            row += f"  {cell.delivered_fraction:>9.4f}{mark or ' '}"
        lines.append(row.rstrip())
    if any(cell.result.deadlocked for cell in sweep.cells):
        lines.append("(* = run flagged deadlocked)")
    return "\n".join(lines)
