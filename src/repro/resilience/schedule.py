"""Deterministic link fail/heal schedules for runtime fault injection.

A :class:`FaultSchedule` is the ground truth of a resilience run: an
ordered list of :class:`FaultEvent` records (fail or heal one channel at
one cycle) that the :class:`~repro.resilience.controller.FaultController`
replays against the engine.  Schedules are pure data — seed-derived,
serializable to JSON, and validated at construction — so the same
schedule string always produces the same degraded topologies, which is
what makes fault runs reproducible and cacheable.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.core.directions import Direction
from repro.topology.base import Topology
from repro.topology.channels import Channel
from repro.topology.faults import sample_fault_channels

__all__ = [
    "FAIL",
    "HEAL",
    "FaultEvent",
    "FaultSchedule",
    "channel_from_dict",
    "channel_to_dict",
]

#: Event kind: the channel stops carrying flits at this cycle.
FAIL = "fail"
#: Event kind: a previously failed channel returns to service.
HEAL = "heal"

_KINDS = (FAIL, HEAL)


def channel_to_dict(channel: Channel) -> dict:
    """A JSON-ready encoding of one channel; inverse of
    :func:`channel_from_dict`."""
    return {
        "src": list(channel.src),
        "dst": list(channel.dst),
        "dim": channel.direction.dim,
        "sign": channel.direction.sign,
        "wraparound": channel.wraparound,
        "lane": channel.lane,
    }


def channel_from_dict(payload: dict) -> Channel:
    """Rebuild a channel saved by :func:`channel_to_dict`."""
    return Channel(
        src=tuple(payload["src"]),
        dst=tuple(payload["dst"]),
        direction=Direction(int(payload["dim"]), int(payload["sign"])),
        wraparound=bool(payload.get("wraparound", False)),
        lane=int(payload.get("lane", 0)),
    )


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled link transition.

    Attributes:
        cycle: simulation cycle at which the transition takes effect
            (before that cycle's allocation phase).
        kind: :data:`FAIL` or :data:`HEAL`.
        channel: the unidirectional channel transitioning.
    """

    cycle: int
    kind: str
    channel: Channel

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError(f"event cycle must be >= 0, got {self.cycle}")
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")

    def to_dict(self) -> dict:
        """A JSON-ready dict; inverse of :meth:`from_dict`."""
        return {
            "cycle": self.cycle,
            "kind": self.kind,
            "channel": channel_to_dict(self.channel),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultEvent":
        """Rebuild an event saved by :meth:`to_dict`."""
        return cls(
            cycle=int(payload["cycle"]),
            kind=str(payload["kind"]),
            channel=channel_from_dict(payload["channel"]),
        )


class FaultSchedule:
    """An immutable, validated sequence of fail/heal events.

    Events are stored sorted by cycle (ties keep the given order) and
    checked for consistency at construction: a channel may not fail
    while already failed, nor heal while healthy, so every prefix of the
    schedule defines a well-formed failed set.

    Args:
        events: the transitions, in any order.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        ordered = sorted(events, key=lambda event: event.cycle)
        failed: set = set()
        for event in ordered:
            if event.kind == FAIL:
                if event.channel in failed:
                    raise ValueError(
                        f"channel {event.channel} fails at cycle "
                        f"{event.cycle} while already failed"
                    )
                failed.add(event.channel)
            else:
                if event.channel not in failed:
                    raise ValueError(
                        f"channel {event.channel} heals at cycle "
                        f"{event.cycle} without a prior fault"
                    )
                failed.discard(event.channel)
        self.events: Tuple[FaultEvent, ...] = tuple(ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> "Iterator[FaultEvent]":
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self.events == other.events

    def __repr__(self) -> str:
        fails = sum(1 for event in self.events if event.kind == FAIL)
        return (
            f"FaultSchedule({len(self.events)} events, {fails} fail, "
            f"{len(self.events) - fails} heal)"
        )

    def channels(self) -> FrozenSet[Channel]:
        """Every channel the schedule ever touches."""
        return frozenset(event.channel for event in self.events)

    def peak_failed(self) -> FrozenSet[Channel]:
        """The union of all channels ever concurrently failed.

        (With no heals this is just :meth:`channels`; a schedule's worst
        degraded topology is a subset of this set at every cycle.)
        """
        return frozenset(
            event.channel for event in self.events if event.kind == FAIL
        )

    def validate_for(self, topology: Topology) -> None:
        """Raise ``ValueError`` unless every channel belongs to ``topology``."""
        known = set(topology.channels())
        unknown = self.channels() - known
        if unknown:
            raise ValueError(
                f"schedule touches channels not in {topology!r}: "
                f"{sorted(str(ch) for ch in unknown)}"
            )

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-ready dict; inverse of :meth:`from_dict`."""
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSchedule":
        """Rebuild a schedule saved by :meth:`to_dict`."""
        return cls(FaultEvent.from_dict(entry) for entry in payload["events"])

    def to_json(self) -> str:
        """The schedule as a canonical JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Rebuild a schedule saved by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    # -- generation ----------------------------------------------------

    @classmethod
    def random(
        cls,
        topology: Topology,
        count: int,
        seed: int = 0,
        window: Tuple[int, int] = (0, 1),
        heal_after: Optional[int] = None,
        require_connected: bool = True,
        max_attempts: int = 20,
    ) -> "FaultSchedule":
        """A seed-derived schedule of ``count`` link failures.

        The failed channels are drawn exactly as
        :func:`repro.topology.faults.random_channel_faults` draws them
        (same seed, same set), then each fault is assigned a uniform
        cycle inside ``window``.

        Args:
            topology: the healthy topology the schedule degrades.
            count: number of distinct channels to fail.
            seed: RNG seed; the schedule is a pure function of
                ``(topology, count, seed, window, heal_after)``.
            window: half-open ``[start, end)`` cycle range the failure
                cycles are drawn from.
            heal_after: when given, every fault heals this many cycles
                after it strikes (a transient-fault schedule); ``None``
                means faults are permanent.
            require_connected: resample (bounded) so the fully degraded
                topology stays strongly connected; raise otherwise.
            max_attempts: resampling bound for ``require_connected``.
        """
        start, end = window
        if count > 0 and end <= start:
            raise ValueError(f"empty fault window {window}")
        if heal_after is not None and heal_after < 1:
            raise ValueError(f"heal_after must be >= 1, got {heal_after}")
        rng = random.Random(seed)
        failed = sample_fault_channels(
            topology,
            count,
            rng,
            require_connected=require_connected,
            max_attempts=max_attempts,
        )
        cycles = sorted(rng.randrange(start, end) for _ in failed)
        events: List[FaultEvent] = []
        for cycle, channel in zip(cycles, failed):
            events.append(FaultEvent(cycle, FAIL, channel))
            if heal_after is not None:
                events.append(FaultEvent(cycle + heal_after, HEAL, channel))
        return cls(events)

    def failed_at(self, cycle: int) -> FrozenSet[Channel]:
        """The failed set after every event up to and including ``cycle``."""
        failed: set = set()
        for event in self.events:
            if event.cycle > cycle:
                break
            if event.kind == FAIL:
                failed.add(event.channel)
            else:
                failed.discard(event.channel)
        return frozenset(failed)
