"""Runtime fault injection and recovery (``repro resilience``).

The paper's Section 1 motivates adaptive routing with fault tolerance:
adaptiveness "provides alternative paths for packets that encounter
faulty hardware".  This package makes faults *happen* during a run
instead of only at construction time:

* :class:`FaultSchedule` — deterministic, seed-derived, serializable
  link fail/heal events.
* :class:`FaultController` — replays the schedule against the live
  engine, rebuilding (and re-certifying deadlock-free, via
  :func:`repro.verify.recertify`) the degraded topology/routing pair.
* :class:`RecoveryPolicy` — what happens to in-flight casualties:
  :class:`DropAndCount`, :class:`SourceRetransmit` (capped exponential
  backoff), or :class:`AbortRun`.
* :class:`ResilienceStats` — delivered/dropped/retransmitted fractions,
  detour hops vs. the healthy-minimal baseline, per-fault recovery
  latency.
* :func:`fault_sweep` — the paper's qualitative fault-tolerance claim
  as a measurement, routed through the parallel caching executor.
"""

from repro.resilience.controller import (
    DegradedRouting,
    FaultController,
    build_controller,
)
from repro.resilience.recovery import (
    AbortRun,
    DropAndCount,
    RecoveryDecision,
    RecoveryPolicy,
    SourceRetransmit,
    available_recovery_policies,
    make_recovery_policy,
)
from repro.resilience.schedule import (
    FAIL,
    HEAL,
    FaultEvent,
    FaultSchedule,
    channel_from_dict,
    channel_to_dict,
)
from repro.resilience.stats import ResilienceStats
from repro.resilience.sweep import (
    FaultSweepCell,
    FaultSweepResult,
    fault_sweep,
    render_fault_table,
)

__all__ = [
    "FAIL",
    "HEAL",
    "AbortRun",
    "DegradedRouting",
    "DropAndCount",
    "FaultController",
    "FaultEvent",
    "FaultSchedule",
    "FaultSweepCell",
    "FaultSweepResult",
    "RecoveryDecision",
    "RecoveryPolicy",
    "ResilienceStats",
    "SourceRetransmit",
    "available_recovery_policies",
    "build_controller",
    "channel_from_dict",
    "channel_to_dict",
    "fault_sweep",
    "make_recovery_policy",
    "render_fault_table",
]
