"""Resilience accounting, kept apart from :class:`SimulationResult`.

The engine's :class:`~repro.sim.stats.SimulationResult` is digest-pinned
by the golden determinism suite (its field set must not grow), so every
fault-run metric lives here instead: delivered/dropped/retransmitted
fractions, detour hops against the healthy-minimal baseline, and
per-casualty recovery latency.  A :class:`ResilienceStats` is owned by
the run's :class:`~repro.resilience.controller.FaultController` and
serializes to a JSON-ready dict via :meth:`ResilienceStats.summary`,
which is what the executor caches next to the simulation result.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["ResilienceStats"]

#: A message identity stable across retransmissions: the source queue
#: re-enqueues the same (src, dest, create_time) triple, so casualties
#: and the eventual delivery of the same logical message correlate.
MessageKey = Tuple[tuple, tuple, float]


class ResilienceStats:
    """Counters and samples for one fault-injected run.

    Attributes:
        faults_applied, heals_applied: schedule events replayed.
        recertifications: degraded configurations re-proved safe.
        casualties: packets torn out of the network (all causes).
        dropped: messages permanently lost.
        retransmissions: source-retransmit re-enqueues.
        delivered: messages fully consumed at their destination.
        delivered_after_recovery: deliveries of messages that had been a
            casualty at least once.
        detoured_packets, detour_hops_total: deliveries that took more
            hops than the healthy topology's minimal path, and the total
            excess.
        aborted: an :class:`~repro.resilience.recovery.AbortRun` policy
            stopped the run.
        recovery_latency_cycles: per recovered message, cycles from its
            first casualty to its final delivery.
    """

    def __init__(self) -> None:
        self.faults_applied = 0
        self.heals_applied = 0
        self.recertifications = 0
        self.casualties = 0
        self.dropped = 0
        self.retransmissions = 0
        self.delivered = 0
        self.delivered_after_recovery = 0
        self.detoured_packets = 0
        self.detour_hops_total = 0
        self.aborted = False
        self.created = 0
        self.unresolved = 0
        self.end_cycle = 0
        self.recovery_latency_cycles: List[int] = []
        self._pending_recovery: Dict[MessageKey, int] = {}

    # -- event hooks (called by the controller) ------------------------

    def on_fault(self) -> None:
        self.faults_applied += 1

    def on_heal(self) -> None:
        self.heals_applied += 1

    def on_recertified(self) -> None:
        self.recertifications += 1

    def on_casualty(self, key: MessageKey, cycle: int) -> None:
        """A packet was torn out of the network at ``cycle``."""
        self.casualties += 1
        self._pending_recovery.setdefault(key, cycle)

    def on_drop(self, key: MessageKey, cycle: int) -> None:
        """The casualty was discarded for good."""
        self.dropped += 1
        self._pending_recovery.pop(key, None)

    def on_retransmit(self) -> None:
        self.retransmissions += 1

    def on_delivered(self, key: MessageKey, cycle: int, detour_hops: int) -> None:
        """A message was fully consumed; ``detour_hops`` is its excess
        over the healthy topology's minimal hop count."""
        self.delivered += 1
        if detour_hops > 0:
            self.detoured_packets += 1
            self.detour_hops_total += detour_hops
        first_loss = self._pending_recovery.pop(key, None)
        if first_loss is not None:
            self.delivered_after_recovery += 1
            self.recovery_latency_cycles.append(cycle - first_loss)

    def finalize(self, created: int, end_cycle: int) -> None:
        """Seal the run: record totals and casualties never resolved."""
        self.created = created
        self.end_cycle = end_cycle
        self.unresolved = len(self._pending_recovery)
        self._pending_recovery.clear()

    # -- derived metrics ----------------------------------------------

    @property
    def delivered_fraction(self) -> float:
        """Messages delivered over messages created (1.0 when idle)."""
        return self.delivered / self.created if self.created else 1.0

    @property
    def dropped_fraction(self) -> float:
        """Messages permanently lost over messages created."""
        return self.dropped / self.created if self.created else 0.0

    @property
    def avg_detour_hops(self) -> float:
        """Mean excess hops per delivered message (0.0 when none)."""
        return self.detour_hops_total / self.delivered if self.delivered else 0.0

    @property
    def avg_recovery_latency(self) -> float:
        """Mean first-loss-to-delivery latency of recovered messages."""
        samples = self.recovery_latency_cycles
        return sum(samples) / len(samples) if samples else 0.0

    def summary(self) -> dict:
        """A JSON-ready digest of the run's resilience behavior."""
        samples = self.recovery_latency_cycles
        return {
            "faults_applied": self.faults_applied,
            "heals_applied": self.heals_applied,
            "recertifications": self.recertifications,
            "created": self.created,
            "delivered": self.delivered,
            "delivered_fraction": self.delivered_fraction,
            "dropped": self.dropped,
            "dropped_fraction": self.dropped_fraction,
            "casualties": self.casualties,
            "retransmissions": self.retransmissions,
            "delivered_after_recovery": self.delivered_after_recovery,
            "unresolved": self.unresolved,
            "detoured_packets": self.detoured_packets,
            "detour_hops_total": self.detour_hops_total,
            "avg_detour_hops": self.avg_detour_hops,
            "recovery_latency_avg": self.avg_recovery_latency,
            "recovery_latency_max": max(samples) if samples else 0,
            "recovery_latency_samples": len(samples),
            "aborted": self.aborted,
            "end_cycle": self.end_cycle,
        }

    def __repr__(self) -> str:
        return (
            f"ResilienceStats(delivered={self.delivered}, "
            f"dropped={self.dropped}, retransmissions={self.retransmissions}, "
            f"faults={self.faults_applied})"
        )
