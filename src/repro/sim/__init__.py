"""Flit-level wormhole network simulator (the Section 6 substrate)."""

from repro.sim.config import FLITS_PER_USEC, SimulationConfig
from repro.sim.engine import RoutingError, WormholeSimulator
from repro.sim.flatcore import (
    FlatCoreUnsupported,
    FlatWormholeSimulator,
    make_simulator,
)
from repro.sim.packet import Packet
from repro.sim.resources import EJECTION, INJECTION, NETWORK, ChannelState
from repro.sim.simulator import simulate
from repro.sim.stats import SimulationResult, StatsCollector, percentile
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "SimulationConfig",
    "FLITS_PER_USEC",
    "WormholeSimulator",
    "RoutingError",
    "FlatWormholeSimulator",
    "FlatCoreUnsupported",
    "make_simulator",
    "Packet",
    "ChannelState",
    "NETWORK",
    "INJECTION",
    "EJECTION",
    "simulate",
    "SimulationResult",
    "StatsCollector",
    "percentile",
    "TraceEvent",
    "TraceRecorder",
]
