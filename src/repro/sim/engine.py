"""The flit-level wormhole network simulator (Section 6).

One simulator cycle is one flit time: every channel has the same bandwidth
and the routers synchronize to transmit the flits in a packet, exactly the
paper's setup with the asynchronous skew abstracted away.  Each cycle has
two phases:

1. **Allocation** — headers waiting at routers request output channels.
   The routing algorithm supplies the candidates, the input selection
   policy (local FCFS by default) orders competing headers, and the
   output selection policy (xy by default) picks among the free
   candidates.  A granted channel is held by the packet until its tail
   flit leaves it — wormhole flow control.

2. **Movement** — flits advance along each packet's chain of held
   channels, front to back, one flit per channel per cycle; processing
   the chain front-first lets a draining packet move every flit in the
   same cycle, giving full-rate pipelining with single-flit buffers.
   Messages blocked from entering the network wait in unbounded source
   queues; flits reaching the destination's ejection channel are consumed
   immediately.

A watchdog flags deadlock when no flit moves for a configurable number of
cycles while packets are in flight — routing algorithms from the turn
model never trigger it, and the Figure 1/Figure 4 demonstrations do.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.routing.base import RoutingAlgorithm
from repro.routing.selection import SelectionContext
from repro.sim.config import SimulationConfig
from repro.sim.packet import Packet
from repro.sim.resources import EJECTION, INJECTION, NETWORK, ChannelState
from repro.sim.stats import SimulationResult, StatsCollector, percentile
from repro.sim.trace import TraceRecorder
from repro.topology.channels import Channel, NodeId
from repro.traffic.workload import Workload

__all__ = ["WormholeSimulator", "RoutingError"]


class RoutingError(RuntimeError):
    """The routing algorithm offered no candidates for a reachable state."""


class WormholeSimulator:
    """Simulates one workload on one topology with one routing algorithm."""

    def __init__(
        self,
        routing: RoutingAlgorithm,
        workload: Workload,
        config: Optional[SimulationConfig] = None,
        preload: Optional[List[Tuple[NodeId, NodeId, int, float]]] = None,
        trace: Optional[TraceRecorder] = None,
    ):
        """
        Args:
            routing: the routing algorithm (also supplies the topology).
            workload: message generation (pattern, sizes, rate, seed).
            config: simulator knobs; defaults reproduce Section 6.
            preload: messages queued before the run starts, as
                (source, destination, size, create_time) tuples — handy
                for deterministic unit tests and staged demonstrations
                (combine with ``offered_load=0`` for a closed workload).
            trace: optional :class:`~repro.sim.trace.TraceRecorder`
                capturing packet-level events (grants, deliveries, ...).
        """
        self.topology = routing.topology
        if workload.pattern.topology is not self.topology:
            if workload.pattern.topology.shape != self.topology.shape:
                raise ValueError(
                    "workload and routing algorithm use different topologies"
                )
        self.routing = routing
        self.workload = workload
        self.config = config or SimulationConfig()
        self.trace = trace

        depth = self.config.buffer_depth
        self._net_states: Dict[Channel, ChannelState] = {
            ch: ChannelState(NETWORK, depth, channel=ch)
            for ch in self.topology.channels()
        }
        self._inj_states: Dict[NodeId, ChannelState] = {}
        self._ej_states: Dict[NodeId, ChannelState] = {}
        for node in self.topology.nodes():
            self._inj_states[node] = ChannelState(INJECTION, depth, node=node)
            self._ej_states[node] = ChannelState(EJECTION, depth, node=node)

        self._sources = workload.sources()
        self._queues: List[Deque[Tuple[NodeId, int, float]]] = [
            deque() for _ in self._sources
        ]
        self._context = SelectionContext(
            free_space=self._free_space, rng=random.Random(self.config.seed)
        )
        self._active: List[Packet] = []
        self._waiters: List[Packet] = []
        self._messages_created = 0
        self._preload_count = 0
        if preload:
            index = {src.node: q for src, q in zip(self._sources, self._queues)}
            for src, dest, size, create_time in preload:
                self.topology.validate_node(src)
                self.topology.validate_node(dest)
                if src == dest:
                    raise ValueError(f"preloaded message sends {src} to itself")
                index[src].append((dest, size, create_time))
                self._messages_created += 1
                self._preload_count += 1
        self._next_pid = 0
        self._total_injected = 0
        self._total_delivered = 0
        self._last_progress = 0
        self._deadlocked = False
        self.cycle = 0
        # Virtual channels: lanes share their physical link's bandwidth
        # (one flit per cycle per physical channel, Section 1).  The
        # stall-skipping optimization is disabled when lanes contend,
        # since a packet blocked by the *other* lane's flit can resume
        # without any allocation event.
        self._multilane = any(ch.lane != 0 for ch in self.topology.channels())
        self._phy_used: set = set()

    # ------------------------------------------------------------------
    # Resource helpers

    def _free_space(self, channel: Channel) -> int:
        return self._net_states[channel].free_space

    def occupancy_snapshot(self) -> int:
        """Total flits currently buffered in the network (for tests)."""
        total = sum(s.count for s in self._net_states.values())
        total += sum(s.count for s in self._inj_states.values())
        total += sum(s.count for s in self._ej_states.values())
        return total

    # ------------------------------------------------------------------
    # Phase 0: message generation and injection-channel allocation

    def _generate(self, stats: StatsCollector) -> None:
        cap = self.config.max_packets
        for source, queue in zip(self._sources, self._queues):
            for dest, size, create_time in source.poll(self.cycle):
                if cap is not None and self._messages_created >= cap:
                    return
                self._messages_created += 1
                queue.append((dest, size, create_time))
                stats.record_created(create_time, size)

    def _start_packets(self) -> None:
        for source, queue in zip(self._sources, self._queues):
            if not queue:
                continue
            inj = self._inj_states[source.node]
            if inj.owner is not None:
                continue
            dest, size, create_time = queue.popleft()
            packet = Packet(self._next_pid, source.node, dest, size, create_time)
            self._next_pid += 1
            inj.owner = packet
            packet.path.append(inj)
            packet.occupancy.append(0)
            self._active.append(packet)
            self._total_injected += 1
            self._last_progress = self.cycle
            if self.trace is not None:
                self.trace.record(
                    self.cycle, "injected", packet.pid, (source.node, dest)
                )

    # ------------------------------------------------------------------
    # Phase 1: routing and channel allocation

    def _candidates_for(self, packet: Packet) -> Tuple[ChannelState, ...]:
        front = packet.path[-1]
        node = front.destination_node()
        if node == packet.dest:
            return (self._ej_states[node],)
        in_channel = front.channel  # None for the injection channel
        channels = self.routing.route(in_channel, node, packet.dest)
        if not channels:
            raise RoutingError(
                f"{self.routing.name} offered no route for {packet!r} at {node} "
                f"(arrived via {in_channel})"
            )
        return tuple(self._net_states[ch] for ch in channels)

    def _allocate(self) -> None:
        if not self._waiters:
            return
        context = self._context
        policy = self.config.input_policy
        delay = self.config.routing_delay_cycles
        order = sorted(
            self._waiters,
            key=lambda p: (*policy.priority(p.waiting_since, context), p.pid),
        )
        still_waiting: List[Packet] = []
        for packet in order:
            if self.cycle - packet.waiting_since < delay:
                # The router is still computing this header's route
                # (routing_delay_cycles > 1 models slower selection logic).
                still_waiting.append(packet)
                continue
            if packet.pending_candidates is None:
                packet.pending_candidates = self._candidates_for(packet)
            free = [s for s in packet.pending_candidates if s.owner is None]
            if not free:
                still_waiting.append(packet)
                continue
            if len(free) == 1 or free[0].kind == EJECTION:
                chosen = free[0]
            else:
                by_channel = {s.channel: s for s in free}
                pick = self.config.output_policy.select(
                    list(by_channel), context
                )
                chosen = by_channel[pick]
            chosen.owner = packet
            packet.path.append(chosen)
            packet.occupancy.append(0)
            packet.header_present = False
            packet.pending_candidates = None
            packet.stalled = False
            if chosen.kind == EJECTION:
                packet.route_complete = True
            else:
                packet.hops += 1
            self._last_progress = self.cycle
            if self.trace is not None:
                if chosen.kind == EJECTION:
                    self.trace.record(
                        self.cycle, "eject-granted", packet.pid, chosen.node
                    )
                else:
                    self.trace.record(
                        self.cycle, "granted", packet.pid, chosen.channel
                    )
        self._waiters = still_waiting

    # ------------------------------------------------------------------
    # Phase 2: flit movement

    def _move(self, packet: Packet, stats: StatsCollector) -> bool:
        path = packet.path
        occ = packet.occupancy
        moved = False
        # Consume at the destination processor: one flit per cycle off the
        # ejection buffer ("messages that arrive ... are immediately
        # consumed").
        if packet.route_complete and occ[-1] > 0:
            occ[-1] -= 1
            path[-1].count -= 1
            packet.flits_consumed += 1
            stats.record_flit_consumed(self.cycle)
            moved = True
        # Advance flits across each held channel, front boundary first, so
        # a slot freed downstream is reusable upstream in the same cycle.
        front_index = len(path) - 1
        multilane = self._multilane
        for i in range(front_index, 0, -1):
            downstream = path[i]
            if occ[i - 1] > 0 and downstream.count < downstream.capacity:
                if multilane and downstream.kind == NETWORK:
                    physical = downstream.channel.physical
                    if physical in self._phy_used:
                        continue
                    self._phy_used.add(physical)
                occ[i - 1] -= 1
                path[i - 1].count -= 1
                occ[i] += 1
                downstream.count += 1
                moved = True
                if (
                    i == front_index
                    and not packet.header_present
                    and not packet.route_complete
                ):
                    self._header_arrived(packet)
        # Inject the next flit from the source queue into the injection
        # buffer (the packet owns its injection channel until fully
        # injected).
        if packet.remaining_to_inject > 0:
            rear = path[0]
            if rear.count < rear.capacity:
                occ[0] += 1
                rear.count += 1
                packet.remaining_to_inject -= 1
                moved = True
                if packet.inject_cycle is None:
                    packet.inject_cycle = self.cycle
                    self._header_arrived(packet)
        # Release channels the tail has fully passed.
        while len(path) > 1 and occ[0] == 0:
            rear = path[0]
            if rear.kind == INJECTION and packet.remaining_to_inject > 0:
                break
            rear.owner = None
            path.pop(0)
            occ.pop(0)
        if not moved and not packet.route_complete and not self._multilane:
            packet.stalled = True
        return moved

    def _header_arrived(self, packet: Packet) -> None:
        packet.header_present = True
        packet.waiting_since = self.cycle
        packet.pending_candidates = None
        self._waiters.append(packet)

    def _finish(self, packet: Packet, stats: StatsCollector) -> None:
        # Once every flit is consumed the held buffers are empty; just
        # release the channels (normally only the ejection channel remains).
        for state in packet.path:
            state.owner = None
        packet.path.clear()
        packet.occupancy.clear()
        self._total_delivered += 1
        if self.trace is not None:
            self.trace.record(self.cycle, "delivered", packet.pid, packet.dest)
        stats.record_packet_done(
            packet.create_time, packet.inject_cycle, self.cycle, packet.hops,
            size=packet.size,
        )

    # ------------------------------------------------------------------
    # Main loop

    def run(self) -> SimulationResult:
        """Run the configured number of cycles and return the results."""
        config = self.config
        stats = StatsCollector(
            config.warmup_cycles, config.warmup_cycles + config.measure_cycles
        )
        window_end = config.warmup_cycles + config.measure_cycles
        for self.cycle in range(config.total_cycles):
            self._context.cycle = self.cycle
            if self.cycle == config.warmup_cycles:
                stats.queue_len_at_window_start = self._total_queued()
            if self.cycle == window_end:
                stats.queue_len_at_window_end = self._total_queued()
            self._generate(stats)
            self._start_packets()
            self._allocate()
            if self._multilane:
                self._phy_used.clear()
                if len(self._active) > 1:
                    # Rotate processing order so no packet systematically
                    # wins the physical-bandwidth race between lanes.
                    self._active.append(self._active.pop(0))
            any_moved = False
            finished: List[Packet] = []
            for packet in self._active:
                if packet.stalled:
                    continue
                if self._move(packet, stats):
                    any_moved = True
                if packet.done:
                    finished.append(packet)
            if finished:
                for packet in finished:
                    self._finish(packet, stats)
                self._active = [p for p in self._active if not p.done]
            if any_moved:
                self._last_progress = self.cycle
            elif (
                self._active
                and self.cycle - self._last_progress >= config.deadlock_threshold
            ):
                self._deadlocked = True
                if self.trace is not None:
                    self.trace.record(self.cycle, "deadlock", -1)
                break
            if (
                config.max_packets is not None
                and self._messages_created >= config.max_packets
                and not self._active
                and self._total_queued() == 0
            ):
                break
        if stats.queue_len_at_window_start is None:
            stats.queue_len_at_window_start = self._total_queued()
        if stats.queue_len_at_window_end is None:
            stats.queue_len_at_window_end = self._total_queued()
        return self._result(stats)

    def _total_queued(self) -> int:
        return sum(len(q) for q in self._queues)

    def _result(self, stats: StatsCollector) -> SimulationResult:
        latencies = stats.latencies_cycles
        hops = stats.hops
        delays = stats.queue_delays_cycles
        by_size = {
            size: sum(values) / len(values)
            for size, values in sorted(stats.latencies_by_size.items())
        }
        return SimulationResult(
            offered_load=self.workload.offered_load,
            cycle_time_usec=self.config.cycle_time_usec,
            num_nodes=self.topology.num_nodes,
            avg_latency_cycles=sum(latencies) / len(latencies) if latencies else 0.0,
            latency_samples=len(latencies),
            measured_created=stats.measured_created,
            delivered_flits=stats.flits_delivered_in_window,
            offered_flits=stats.offered_flits_in_window,
            measure_cycles=self.config.measure_cycles,
            avg_hops=sum(hops) / len(hops) if hops else 0.0,
            avg_queue_delay_cycles=sum(delays) / len(delays) if delays else 0.0,
            queue_start=stats.queue_len_at_window_start or 0,
            queue_end=stats.queue_len_at_window_end or 0,
            deadlocked=self._deadlocked,
            total_injected=self._total_injected,
            total_delivered=self._total_delivered,
            p50_latency_cycles=percentile(latencies, 0.50),
            p95_latency_cycles=percentile(latencies, 0.95),
            max_latency_cycles=max(latencies) if latencies else 0.0,
            latency_by_size_cycles=by_size,
        )
