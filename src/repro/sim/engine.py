"""The flit-level wormhole network simulator (Section 6).

One simulator cycle is one flit time: every channel has the same bandwidth
and the routers synchronize to transmit the flits in a packet, exactly the
paper's setup with the asynchronous skew abstracted away.  Each cycle has
two phases:

1. **Allocation** — headers waiting at routers request output channels.
   The routing algorithm supplies the candidates, the input selection
   policy (local FCFS by default) orders competing headers, and the
   output selection policy (xy by default) picks among the free
   candidates.  A granted channel is held by the packet until its tail
   flit leaves it — wormhole flow control.

2. **Movement** — flits advance along each packet's chain of held
   channels, front to back, one flit per channel per cycle; processing
   the chain front-first lets a draining packet move every flit in the
   same cycle, giving full-rate pipelining with single-flit buffers.
   Messages blocked from entering the network wait in unbounded source
   queues; flits reaching the destination's ejection channel are consumed
   immediately.

A watchdog flags deadlock when no flit moves for a configurable number of
cycles while packets are in flight — routing algorithms from the turn
model never trigger it, and the Figure 1/Figure 4 demonstrations do.
"""

from __future__ import annotations

import random
from collections import deque
from heapq import heapify, heappop, heappush
from operator import attrgetter
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.routing.base import RoutingAlgorithm
from repro.routing.cache import RouteCache
from repro.routing.selection import SelectionContext
from repro.sim.config import SimulationConfig
from repro.sim.packet import Packet
from repro.sim.resources import EJECTION, INJECTION, NETWORK, ChannelState
from repro.sim.stats import SimulationResult, StatsCollector, percentile
from repro.sim.trace import TraceRecorder
from repro.topology.channels import Channel, NodeId
from repro.traffic.workload import Workload

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.obs.metrics import MetricsCollector
    from repro.resilience.controller import FaultController

__all__ = ["WormholeSimulator", "RoutingError"]


class RoutingError(RuntimeError):
    """The routing algorithm offered no candidates for a reachable state."""


#: Expected-message ceiling for the pre-drawn arrival schedule; above
#: it the engine polls sources live instead of materializing the trace.
PRE_DRAW_MESSAGE_LIMIT = 4_000_000


def _arrival_key(packet: Packet) -> Tuple[int, int]:
    return (packet.waiting_since, packet.pid)


def _pid_key(packet: Packet) -> int:
    return packet.pid


_rank_of = attrgetter("rank")


def _merge_waiters(a: List[Packet], b: List[Packet]) -> List[Packet]:
    """Linear merge of two waiter lists sorted by (waiting_since, pid)."""
    merged: List[Packet] = []
    append = merged.append
    i = j = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        pa = a[i]
        pb = b[j]
        if (pa.waiting_since, pa.pid) <= (pb.waiting_since, pb.pid):
            append(pa)
            i += 1
        else:
            append(pb)
            j += 1
    merged.extend(a[i:])
    merged.extend(b[j:])
    return merged


class WormholeSimulator:
    """Simulates one workload on one topology with one routing algorithm."""

    #: Which engine core this class implements ("object" is the
    #: reference implementation; see :mod:`repro.sim.flatcore`).
    core = "object"

    def __init__(
        self,
        routing: RoutingAlgorithm,
        workload: Workload,
        config: Optional[SimulationConfig] = None,
        preload: Optional[List[Tuple[NodeId, NodeId, int, float]]] = None,
        trace: Optional[TraceRecorder] = None,
        resilience: Optional["FaultController"] = None,
        obs: Optional["MetricsCollector"] = None,
        route_source: Optional[RouteCache] = None,
    ):
        """
        Args:
            routing: the routing algorithm (also supplies the topology).
            workload: message generation (pattern, sizes, rate, seed).
            config: simulator knobs; defaults reproduce Section 6.
            preload: messages queued before the run starts, as
                (source, destination, size, create_time) tuples — handy
                for deterministic unit tests and staged demonstrations
                (combine with ``offered_load=0`` for a closed workload).
            trace: optional :class:`~repro.sim.trace.TraceRecorder`
                capturing packet-level events (grants, deliveries, ...).
            resilience: optional
                :class:`~repro.resilience.controller.FaultController`
                injecting runtime link faults.  With a controller bound,
                an unroutable header is a recoverable casualty rather
                than a :class:`RoutingError`; with an empty schedule the
                fault hook never fires and results are bit-identical to
                a run without a controller.
            obs: optional
                :class:`~repro.obs.metrics.MetricsCollector` sampling
                channel utilization, latency, and throughput during the
                run.  Every hook is read-only and the collector draws
                no numbers from the simulation's RNG streams, so
                enabling it is bit-invisible to results and traces.
            route_source: optional shared *raw*
                :class:`~repro.routing.cache.RouteCache` for the same
                algorithm (see :mod:`repro.analysis.prewarm`).  The
                run's private cache consults it on a miss before
                recomputing a route — routing decisions are pure, so a
                warmed run is bit-identical to a cold one.
        """
        self.topology = routing.topology
        if workload.pattern.topology is not self.topology:
            if workload.pattern.topology.shape != self.topology.shape:
                raise ValueError(
                    "workload and routing algorithm use different topologies"
                )
        self.routing = routing
        self.workload = workload
        self.config = config or SimulationConfig()
        self.trace = trace

        depth = self.config.buffer_depth
        self._net_states: Dict[Channel, ChannelState] = {
            ch: ChannelState(NETWORK, depth, channel=ch)
            for ch in self.topology.channels()
        }
        self._inj_states: Dict[NodeId, ChannelState] = {}
        self._ej_states: Dict[NodeId, ChannelState] = {}
        for node in self.topology.nodes():
            self._inj_states[node] = ChannelState(INJECTION, depth, node=node)
            self._ej_states[node] = ChannelState(EJECTION, depth, node=node)

        self._sources = workload.sources()
        self._queues: List[Deque[Tuple[NodeId, int, float]]] = [
            deque() for _ in self._sources
        ]
        self._context = SelectionContext(
            free_space=self._free_space, rng=random.Random(self.config.seed)
        )
        self._active: List[Packet] = []
        self._waiters: List[Packet] = []
        self._messages_created = 0
        self._preload_count = 0
        if preload:
            index = {src.node: q for src, q in zip(self._sources, self._queues)}
            for src, dest, size, create_time in preload:
                self.topology.validate_node(src)
                self.topology.validate_node(dest)
                if src == dest:
                    raise ValueError(f"preloaded message sends {src} to itself")
                index[src].append((dest, size, create_time))
                self._messages_created += 1
                self._preload_count += 1
        self._next_pid = 0
        self._total_injected = 0
        self._total_delivered = 0
        self._last_progress = 0
        self._deadlocked = False
        self.cycle = 0
        # Virtual channels: lanes share their physical link's bandwidth
        # (one flit per cycle per physical channel, Section 1).  The
        # stall-skipping optimization is disabled when lanes contend,
        # since a packet blocked by the *other* lane's flit can resume
        # without any allocation event.
        self._multilane = any(ch.lane != 0 for ch in self.topology.channels())
        self._phy_used: set = set()
        # Hot-path state.  Routing is memoized when the algorithm is a
        # pure function of (in_channel, node, dest); the cache resolves
        # channels to their ChannelState up front so allocation is a
        # dict lookup away from its candidates.
        self._route_cache: Optional[RouteCache] = (
            RouteCache(
                routing,
                resolve=self._net_states.__getitem__,
                source=route_source,
            )
            if getattr(routing, "cacheable", True)
            else None
        )
        # Event-driven generation: one heap entry per source, keyed by
        # its next arrival time, so a cycle only touches sources that
        # actually release a message.  Silent sources (rate 0) never
        # enter the heap.
        self._arrival_heap: List[Tuple[float, int]] = [
            (source.next_arrival, index)
            for index, source in enumerate(self._sources)
            if source.next_arrival != float("inf")
        ]
        heapify(self._arrival_heap)
        # Pre-drawn arrival schedule.  Each source owns a private RNG
        # stream (Workload.sources seeds one Random per node), so
        # realizing every arrival up to the horizon now draws exactly
        # the values the per-cycle polls would have drawn, in the same
        # per-source order — the clock loop then consumes plain lists
        # with no RNG work.  Discarded arrivals (a pattern declining to
        # emit a destination) are kept as placeholder events so the
        # arrival heap sees identical event times.  Skipped when the
        # expected message volume would make the trace large; the
        # engine then polls sources live, as before.
        self._pre_pairs: Optional[List[List[Tuple[float, Optional[tuple]]]]] = None
        self._pre_pos: List[int] = []
        expected_messages = (
            workload.messages_per_node_per_cycle
            * len(self._sources)
            * self.config.total_cycles
        )
        if expected_messages <= PRE_DRAW_MESSAGE_LIMIT:
            last = self.config.total_cycles - 1
            pairs_per: List[List[Tuple[float, Optional[tuple]]]] = []
            for source in self._sources:
                pairs: List[Tuple[float, Optional[tuple]]] = []
                while source.next_arrival <= last:
                    pairs.append((source.next_arrival, source.pull()))
                pairs_per.append(pairs)
            self._pre_pairs = pairs_per
            self._pre_pos = [0] * len(self._sources)
        # Source-queue total, maintained incrementally (counts preloads).
        self._queued_total = sum(len(q) for q in self._queues)
        # Waiters whose headers arrived since the last allocation pass;
        # merged into the (incrementally ordered) waiter list there.
        self._new_waiters: List[Packet] = []
        # Parking (stateless input policies only): a blocked header
        # leaves the waiter list and registers on each candidate
        # channel's wake list; releasing a channel moves its valid
        # entries to ``_woken``, which the next allocation pass merges
        # back in (waiting_since, pid) order.  A stateful policy such as
        # random selection recomputes priorities — and may draw from the
        # shared RNG — for every waiter every cycle, so parked packets
        # would change its stream; those policies keep the full scan.
        self._park_enabled = self.config.input_policy.stateless
        self._woken: List[Packet] = []
        # Event-driven injection: only sources flagged here can start a
        # packet — flagged when a message is created (queue became
        # non-empty, including preloads) and when their injection channel
        # is released.
        self._node_index: Dict[NodeId, int] = {
            source.node: index for index, source in enumerate(self._sources)
        }
        self._inj_list: List[ChannelState] = [
            self._inj_states[source.node] for source in self._sources
        ]
        self._inj_candidates: set = {
            index for index, queue in enumerate(self._queues) if queue
        }
        #: Flits transferred over the whole run (consumptions, channel
        #: crossings, and injections) — the work metric of ``repro bench``.
        self.flit_moves = 0
        #: Main-loop iterations actually executed; less than the cycles
        #: simulated when the idle fast-forward skips dead time.
        self.cycles_executed = 0
        # Whether the current cycle is inside the measurement window —
        # hoisted out of the per-flit consumption accounting.
        self._in_window = False
        # Pure-ranking output policies (e.g. xy): each network channel's
        # sort key is precomputed on its state, so a multi-candidate
        # grant is a min() over the free list instead of a dict build
        # plus a select() call.
        ranking = getattr(self.config.output_policy, "ranking", None)
        if ranking is not None:
            for ch, state in self._net_states.items():
                state.rank = ranking(ch)
        self._rank_grant = ranking is not None
        # Runtime fault injection.  ``_active_routing`` is what headers
        # actually route against — rebound to a degraded algorithm when
        # the controller applies a fault, back to ``routing`` when every
        # channel heals.  ``_strict_routes`` preserves the historical
        # contract (empty candidate sets raise) for fault-free runs.
        self._resilience = resilience
        self._strict_routes = resilience is None
        self._active_routing: RoutingAlgorithm = routing
        self._res_abort = False
        self._stats: Optional[StatsCollector] = None
        if resilience is not None:
            resilience.bind(routing, self.topology)
        # Observability: same cheap-hook contract as the fault
        # controller — a run without a collector pays one ``is not
        # None`` test per hook site and nothing else.
        self._obs = obs
        if obs is not None:
            obs.bind(self)

    # ------------------------------------------------------------------
    # Resource helpers

    def _free_space(self, channel: Channel) -> int:
        return self._net_states[channel].free_space

    @property
    def network_channel_states(self) -> Dict[Channel, ChannelState]:
        """The live per-channel resource table, in topology order.

        Read-only view for observability: the metrics collector samples
        ``owner`` and ``count`` from these states each cycle.  Mutating
        them voids the determinism contract.
        """
        return self._net_states

    @property
    def total_injected(self) -> int:
        """Packets that have started injecting (running total)."""
        return self._total_injected

    @property
    def total_delivered(self) -> int:
        """Packets fully consumed at their destination (running total)."""
        return self._total_delivered

    @property
    def route_cache(self) -> Optional[RouteCache]:
        """The memoized routing table, or ``None`` for uncacheable
        algorithms (reported by ``repro bench``)."""
        return self._route_cache

    def occupancy_snapshot(self) -> int:
        """Total flits currently buffered in the network (for tests)."""
        total = sum(s.count for s in self._net_states.values())
        total += sum(s.count for s in self._inj_states.values())
        total += sum(s.count for s in self._ej_states.values())
        return total

    # ------------------------------------------------------------------
    # Phase 0: message generation and injection-channel allocation

    def _generate(self, stats: StatsCollector) -> None:
        # Event-driven: only sources whose next arrival time has passed
        # are popped from the heap and polled.  Ready sources are
        # processed in source-index order — the order the reference
        # polling loop visited them — so message creation order, the
        # max_packets cut-off, and every per-source RNG stream are
        # bit-identical to polling all sources each cycle (a source
        # whose arrival is still in the future draws nothing either way).
        heap = self._arrival_heap
        cycle = self.cycle
        if not heap or heap[0][0] > cycle:
            return
        ready: List[Tuple[float, int]] = []
        while heap and heap[0][0] <= cycle:
            ready.append(heappop(heap))
        if len(ready) > 1:
            ready.sort(key=lambda entry: entry[1])
        cap = self.config.max_packets
        sources = self._sources
        queues = self._queues
        pre = self._pre_pairs
        if cap is None and pre is not None:
            # Uncapped fast path over the pre-drawn schedule: every
            # arrival is enqueued, so the per-message cap check and
            # counter updates hoist out, record_created's window test is
            # inlined, and no RNG work happens on the clock.
            pos_list = self._pre_pos
            ws = stats.window_start
            we = stats.window_end
            add_candidate = self._inj_candidates.add
            created = 0
            offered = 0
            measured = 0
            for _, index in ready:
                pairs = pre[index]
                pos = pos_list[index]
                n = len(pairs)
                queue = queues[index]
                before = created
                while pos < n:
                    arrival, entry = pairs[pos]
                    if arrival > cycle:
                        break
                    pos += 1
                    if entry is not None:
                        queue.append(entry)
                        created += 1
                        if ws <= arrival < we:
                            offered += entry[1]
                            measured += 1
                pos_list[index] = pos
                heappush(
                    heap,
                    (
                        pairs[pos][0] if pos < n else sources[index].next_arrival,
                        index,
                    ),
                )
                if created != before:
                    add_candidate(index)
            self._messages_created += created
            self._queued_total += created
            stats.offered_flits_in_window += offered
            stats.measured_created += measured
            return
        if cap is None:
            # Uncapped, live polling (schedule precompute was skipped).
            ws = stats.window_start
            we = stats.window_end
            add_candidate = self._inj_candidates.add
            created = 0
            offered = 0
            measured = 0
            for _, index in ready:
                source = sources[index]
                arrivals = source.poll(cycle)
                heappush(heap, (source.next_arrival, index))
                if arrivals:
                    queue = queues[index]
                    add_candidate(index)
                    for entry in arrivals:
                        queue.append(entry)
                        if ws <= entry[2] < we:
                            offered += entry[1]
                            measured += 1
                    created += len(arrivals)
            self._messages_created += created
            self._queued_total += created
            stats.offered_flits_in_window += offered
            stats.measured_created += measured
            return
        for pos, (_, index) in enumerate(ready):
            if pre is not None:
                pairs = pre[index]
                p = self._pre_pos[index]
                n = len(pairs)
                arrivals = []
                while p < n and pairs[p][0] <= cycle:
                    entry = pairs[p][1]
                    if entry is not None:
                        arrivals.append(entry)
                    p += 1
                self._pre_pos[index] = p
                next_key = (
                    pairs[p][0] if p < n else sources[index].next_arrival
                )
            else:
                source = sources[index]
                arrivals = source.poll(cycle)
                next_key = source.next_arrival
            heappush(heap, (next_key, index))
            queue = queues[index]
            for dest, size, create_time in arrivals:
                if cap is not None and self._messages_created >= cap:
                    # The reference loop returns here too, leaving the
                    # remaining sources untouched this cycle; keep their
                    # heap entries so they are revisited next cycle.
                    for entry in ready[pos + 1 :]:
                        heappush(heap, entry)
                    return
                self._messages_created += 1
                queue.append((dest, size, create_time))
                self._queued_total += 1
                self._inj_candidates.add(index)
                stats.record_created(create_time, size)

    def _start_packets(self) -> None:
        # Event-driven: only flagged sources are visited, in source-index
        # order so pids are assigned exactly as the reference full scan
        # assigned them.  A source that cannot start a packet right now
        # is dropped from the candidate set — the event that changes
        # that (a new message, or its injection channel being released)
        # re-flags it.
        pending = self._inj_candidates
        if not pending:
            return
        cycle = self.cycle
        trace = self.trace
        sources = self._sources
        queues = self._queues
        inj_list = self._inj_list
        active = self._active
        for index in sorted(pending):
            queue = queues[index]
            if not queue:
                continue
            inj = inj_list[index]
            if inj.owner is not None:
                continue
            dest, size, create_time = queue.popleft()
            self._queued_total -= 1
            source = sources[index]
            packet = Packet(self._next_pid, source.node, dest, size, create_time)
            self._next_pid += 1
            inj.owner = packet
            packet.path.append(inj)
            packet.occupancy.append(0)
            active.append(packet)
            self._total_injected += 1
            self._last_progress = cycle
            if trace is not None:
                trace.record(cycle, "injected", packet.pid, (source.node, dest))
        pending.clear()

    # ------------------------------------------------------------------
    # Phase 1: routing and channel allocation

    def _candidates_for(self, packet: Packet) -> Tuple[ChannelState, ...]:
        front = packet.path[-1]
        node = front.dest_node
        if node == packet.dest:
            return (self._ej_states[node],)
        in_channel = front.channel  # None for the injection channel
        cache = self._route_cache
        if cache is not None:
            states = cache.candidates(in_channel, node, packet.dest)
        else:
            states = tuple(
                self._net_states[ch]
                for ch in self._active_routing.route(in_channel, node, packet.dest)
            )
        if not states and self._strict_routes:
            raise RoutingError(
                f"{self.routing.name} offered no route for {packet!r} at {node} "
                f"(arrived via {in_channel})"
            )
        # Empty with a fault controller bound: the degraded topology cut
        # the header off; _allocate hands the packet to recovery.
        return states

    def _allocate(self) -> None:
        # The waiter list stays incrementally ordered for stateless
        # input policies: headers that arrived since the last pass all
        # share the current arrival cycle, which (for a policy whose
        # priority is strictly increasing in it, e.g. FCFS) sorts them
        # after every existing waiter — so a pid-sort of the newcomers
        # appended at the tail reproduces the reference full sort by
        # (*priority, pid) without re-sorting the whole list each cycle.
        waiters = self._waiters
        policy = self.config.input_policy
        new = self._new_waiters
        park = self._park_enabled
        woken = self._woken
        obs = self._obs
        if woken:
            # Woken (previously parked) packets arrived at their routers
            # strictly before this cycle's new headers, so sorted-woken +
            # sorted-new is itself (waiting_since, pid)-ordered; the
            # existing waiters (routing-delay holdovers) interleave with
            # the woken ones, hence the linear merge.
            if len(woken) > 1:
                woken.sort(key=_arrival_key)
            if new:
                if len(new) > 1:
                    new.sort(key=_pid_key)
                woken.extend(new)
                new.clear()
            if waiters:
                waiters = _merge_waiters(waiters, woken)
            else:
                waiters = list(woken)
            self._waiters = waiters
            woken.clear()
        elif new:
            if park and len(new) > 1:
                new.sort(key=_pid_key)
            waiters.extend(new)
            new.clear()
        if not waiters:
            return
        context = self._context
        delay = self.config.routing_delay_cycles
        cycle = self.cycle
        if policy.stateless:
            order = waiters
        else:
            order = sorted(
                waiters,
                key=lambda p: (*policy.priority(p.waiting_since, context), p.pid),
            )
        trace = self.trace
        output_policy = self.config.output_policy
        rank_grant = self._rank_grant
        candidates_for = self._candidates_for
        still_waiting: List[Packet] = []
        append_waiting = still_waiting.append
        for packet in order:
            if cycle - packet.waiting_since < delay:
                # The router is still computing this header's route
                # (routing_delay_cycles > 1 models slower selection logic).
                append_waiting(packet)
                continue
            candidates = packet.pending_candidates
            if candidates is None:
                candidates = candidates_for(packet)
                if not candidates:
                    # Only reachable with a fault controller bound
                    # (_candidates_for raises otherwise): the degraded
                    # topology stranded this header.
                    self._recover(packet, in_allocation=True)
                    continue
                packet.pending_candidates = candidates
            if len(candidates) == 1:
                # Single candidate (ejection, or a one-way route): no
                # free-list build, no selection.
                chosen = candidates[0]
                if chosen.owner is not None:
                    if park:
                        token = packet.park_token + 1
                        packet.park_token = token
                        packet.parked = True
                        chosen.wake.append((packet, token))
                        if obs is not None:
                            obs.park_events += 1
                    else:
                        append_waiting(packet)
                    continue
            else:
                free = [s for s in candidates if s.owner is None]
                if not free:
                    if park:
                        # Nothing can free a candidate except a release
                        # in the movement phase, which wakes the packet —
                        # so leaving the waiter list loses no grant
                        # opportunity.
                        token = packet.park_token + 1
                        packet.park_token = token
                        packet.parked = True
                        for s in candidates:
                            s.wake.append((packet, token))
                        if obs is not None:
                            obs.park_events += 1
                    else:
                        append_waiting(packet)
                    continue
                # Multi-candidate routes never include the ejection
                # channel (_candidates_for returns it alone), so no
                # EJECTION short-circuit is needed here.
                if len(free) == 1:
                    chosen = free[0]
                elif rank_grant:
                    # The output policy is a pure ranking: min over the
                    # free states by their precomputed key, ties to the
                    # earliest candidate — exactly the reference min
                    # over the candidate channels.
                    chosen = min(free, key=_rank_of)
                else:
                    by_channel = {s.channel: s for s in free}
                    pick = output_policy.select(list(by_channel), context)
                    chosen = by_channel[pick]
            chosen.owner = packet
            packet.path.append(chosen)
            packet.occupancy.append(0)
            packet.header_present = False
            packet.pending_candidates = None
            packet.stalled = False
            if chosen.kind == EJECTION:
                packet.route_complete = True
            else:
                packet.hops += 1
            self._last_progress = cycle
            if trace is not None:
                if chosen.kind == EJECTION:
                    trace.record(cycle, "eject-granted", packet.pid, chosen.node)
                else:
                    trace.record(cycle, "granted", packet.pid, chosen.channel)
        self._waiters = still_waiting

    # ------------------------------------------------------------------
    # Phase 2: flit movement

    def _move(self, packet: Packet, stats: StatsCollector) -> bool:
        path = packet.path
        occ = packet.occupancy
        cycle = self.cycle
        moves = 0
        # Consume at the destination processor: one flit per cycle off the
        # ejection buffer ("messages that arrive ... are immediately
        # consumed").
        if packet.route_complete and occ[-1] > 0:
            occ[-1] -= 1
            path[-1].count -= 1
            packet.flits_consumed += 1
            if self._in_window:
                stats.flits_delivered_in_window += 1
            moves = 1
        # Advance flits across each held channel, front boundary first, so
        # a slot freed downstream is reusable upstream in the same cycle.
        front_index = len(path) - 1
        multilane = self._multilane
        if multilane:
            phy_used = self._phy_used
        # Walk front to back carrying the downstream state: iteration i's
        # upstream is iteration i-1's downstream, saving one list index
        # per boundary.
        i = front_index
        downstream = path[i]
        while i:
            upstream = path[i - 1]
            below = occ[i - 1]
            if below and downstream.count < downstream.capacity:
                if multilane and downstream.kind == NETWORK:
                    physical = downstream.channel.physical
                    if physical in phy_used:
                        i -= 1
                        downstream = upstream
                        continue
                    phy_used.add(physical)
                occ[i - 1] = below - 1
                upstream.count -= 1
                occ[i] += 1
                downstream.count += 1
                moves += 1
                if (
                    i == front_index
                    and not packet.header_present
                    and not packet.route_complete
                ):
                    self._header_arrived(packet)
            i -= 1
            downstream = upstream
        # Inject the next flit from the source queue into the injection
        # buffer (the packet owns its injection channel until fully
        # injected).
        if packet.remaining_to_inject > 0:
            rear = path[0]
            if rear.count < rear.capacity:
                occ[0] += 1
                rear.count += 1
                packet.remaining_to_inject -= 1
                moves += 1
                if packet.inject_cycle is None:
                    packet.inject_cycle = cycle
                    self._header_arrived(packet)
        # Release channels the tail has fully passed.
        while len(path) > 1 and occ[0] == 0:
            rear = path[0]
            if rear.kind == INJECTION and packet.remaining_to_inject > 0:
                break
            rear.owner = None
            self._released(rear)
            del path[0]
            del occ[0]
        if moves:
            self.flit_moves += moves
            return True
        if not packet.route_complete and not multilane:
            packet.stalled = True
        return False

    def _move1(self, packet: Packet, stats: StatsCollector) -> bool:
        """:meth:`_move` specialized for single-flit buffers, single lane.

        With ``buffer_depth == 1`` (the paper's routers) every occupancy
        is 0 or 1 and — because wormhole ownership is exclusive — a held
        channel's buffer count always equals the owner's occupancy entry,
        so a boundary moves iff the upstream slot is full and the
        downstream slot is empty, and every count update is a constant
        store.  Behaviour is identical to :meth:`_move`.
        """
        path = packet.path
        occ = packet.occupancy
        moves = 0
        if packet.route_complete and occ[-1]:
            occ[-1] = 0
            path[-1].count = 0
            packet.flits_consumed += 1
            if self._in_window:
                stats.flits_delivered_in_window += 1
            moves = 1
        i = len(path) - 1
        front_index = i
        downstream = path[i]
        down_occ = occ[i]
        while i:
            upstream = path[i - 1]
            up_occ = occ[i - 1]
            if up_occ and not down_occ:
                occ[i - 1] = 0
                upstream.count = 0
                occ[i] = 1
                downstream.count = 1
                moves += 1
                if (
                    i == front_index
                    and not packet.header_present
                    and not packet.route_complete
                ):
                    self._header_arrived(packet)
                up_occ = 0
            i -= 1
            downstream = upstream
            down_occ = up_occ
        if packet.remaining_to_inject > 0 and not occ[0]:
            occ[0] = 1
            path[0].count = 1
            packet.remaining_to_inject -= 1
            moves += 1
            if packet.inject_cycle is None:
                packet.inject_cycle = self.cycle
                self._header_arrived(packet)
        while occ[0] == 0 and len(path) > 1:
            rear = path[0]
            if rear.kind == INJECTION and packet.remaining_to_inject > 0:
                break
            rear.owner = None
            self._released(rear)
            del path[0]
            del occ[0]
        if moves:
            self.flit_moves += moves
            return True
        if not packet.route_complete:
            packet.stalled = True
        return False

    def _released(self, state: ChannelState) -> None:
        # An owner release is the only event that can unblock a parked
        # header or let a backlogged source inject, so this hook is the
        # sole feeder of ``_woken`` and (with message creation)
        # ``_inj_candidates``.
        if state.kind == INJECTION:
            self._inj_candidates.add(self._node_index[state.node])
            return
        wake = state.wake
        if wake:
            woken = self._woken
            obs = self._obs
            for entry in wake:
                parked = entry[0]
                if parked.parked and parked.park_token == entry[1]:
                    parked.parked = False
                    woken.append(parked)
                    if obs is not None:
                        obs.wake_events += 1
            wake.clear()

    def _header_arrived(self, packet: Packet) -> None:
        packet.header_present = True
        packet.waiting_since = self.cycle
        packet.pending_candidates = None
        self._new_waiters.append(packet)

    def _finish(self, packet: Packet, stats: StatsCollector) -> None:
        # Once every flit is consumed the held buffers are empty; just
        # release the channels (normally only the ejection channel remains).
        for state in packet.path:
            state.owner = None
            self._released(state)
        packet.path.clear()
        packet.occupancy.clear()
        self._total_delivered += 1
        if self.trace is not None:
            self.trace.record(self.cycle, "delivered", packet.pid, packet.dest)
        if self._resilience is not None:
            self._resilience.on_delivered(packet, self.cycle)
        if self._obs is not None:
            self._obs.on_packet_delivered(packet, self.cycle)
        stats.record_packet_done(
            packet.create_time, packet.inject_cycle, self.cycle, packet.hops,
            size=packet.size,
        )

    # ------------------------------------------------------------------
    # Runtime fault injection

    def _resilience_tick(self, ctrl: "FaultController") -> None:
        """Apply due fault events and release due retransmissions.

        Runs at the top of a cycle, before generation and allocation, so
        a fault at cycle *c* degrades the topology before any routing
        decision of cycle *c*, and a retransmission whose backoff ends
        at *c* can inject at *c*.  Only called when ``ctrl.next_wake``
        has arrived — a controller with nothing pending costs the hot
        loop a single comparison per cycle.
        """
        cycle = self.cycle
        # 1. Due retransmissions re-enter their source queues as whole
        #    messages, keeping their original creation time.
        for _ready, _seq, src, dest, size, create_time in ctrl.pop_retries(cycle):
            index = self._node_index[src]
            self._queues[index].append((dest, size, create_time))
            self._queued_total += 1
            self._inj_candidates.add(index)
        if ctrl.next_event_cycle > cycle:
            return
        # 2. Apply the due fail/heal events.  ``advance`` rebuilds the
        #    degraded topology/routing pair and (unless disabled)
        #    re-certifies it deadlock-free, raising CertificationError
        #    on refutation — the run must not proceed unsafely.
        events = ctrl.advance(cycle)
        if not events:
            return
        trace = self.trace
        changed: List[Channel] = []
        victims: List[Packet] = []
        for event in events:
            changed.append(event.channel)
            if trace is not None:
                trace.record(cycle, "fault", -1, (event.kind, event.channel))
            if event.kind == "fail":
                owner = self._net_states[event.channel].owner
                if owner is not None and owner not in victims:
                    victims.append(owner)
        # 3. Point allocation at the degraded routing relation.
        self._refresh_routing(ctrl, changed)
        # 4. Flush every routing decision taken against the old
        #    topology: cached candidates are re-resolved, and parked
        #    headers rejoin the waiter list (their candidate sets may
        #    have changed entirely).
        woken = self._woken
        for packet in self._active:
            packet.pending_candidates = None
            if packet.parked:
                packet.parked = False
                woken.append(packet)
        # 5. Packets with flits on a now-dead channel are casualties.
        for packet in victims:
            self._recover(packet)

    def _refresh_routing(
        self, ctrl: "FaultController", changed: List[Channel]
    ) -> None:
        """Swap in the controller's current routing and fix the cache.

        A filter-mode degradation (:class:`DegradedRouting` over the
        same base) only changes decisions at the endpoints of ``changed``
        channels, so the existing cache is retargeted and just those
        nodes' entries are dropped.  A factory-rebuilt algorithm may
        shift decisions anywhere (a reachability oracle recomputes
        globally), so it gets a fresh cache; the hit/miss counters carry
        over for ``repro bench`` reporting.
        """
        new = ctrl.current_routing
        prev = self._active_routing
        if new is None or new is prev:
            return
        self._active_routing = new
        cache = self._route_cache
        if not getattr(new, "cacheable", True):
            self._route_cache = None
            return
        same_base = (
            getattr(new, "degraded_base", new)
            is getattr(prev, "degraded_base", prev)
        )
        if cache is not None and same_base:
            cache.retarget(new)
            cache.invalidate_channels(changed)
            return
        fresh = RouteCache(new, resolve=self._net_states.__getitem__)
        if cache is not None:
            fresh.hits = cache.hits
            fresh.misses = cache.misses
        self._route_cache = fresh

    def _recover(self, packet: Packet, in_allocation: bool = False) -> None:
        """Tear a casualty out of the network and apply recovery.

        The packet's buffered flits are discarded, every held channel is
        released (waking parked headers and backlogged sources), and the
        controller's policy decides the message's fate: re-enqueue after
        a backoff (``retry``), count it lost (``drop``), or stop the run
        (``abort``).

        Args:
            packet: the casualty (held a failed channel, or its header
                has no route on the degraded topology).
            in_allocation: True when called from inside ``_allocate``'s
                waiter scan — the scan already excludes the packet from
                the rebuilt waiter list, and mutating the list being
                iterated would corrupt it.
        """
        ctrl = self._resilience
        assert ctrl is not None
        cycle = self.cycle
        decision = ctrl.casualty(packet, cycle)
        trace = self.trace
        if trace is not None:
            if decision.action == "retry":
                trace.record(
                    cycle,
                    "retransmitted",
                    packet.pid,
                    (packet.src, packet.dest, decision.delay),
                )
            elif decision.action == "drop":
                trace.record(
                    cycle, "dropped", packet.pid, (packet.src, packet.dest)
                )
        # Discard buffered flits and release the held chain.  Wormhole
        # ownership is exclusive, so each held channel's count includes
        # exactly this packet's occupancy entry.
        path = packet.path
        occupancy = packet.occupancy
        for i, state in enumerate(path):
            state.count -= occupancy[i]
            state.owner = None
            self._released(state)
        path.clear()
        occupancy.clear()
        packet.pending_candidates = None
        packet.parked = False
        packet.park_token += 1  # invalidate stale wake-list entries
        packet.header_present = False
        packet.stalled = True
        try:
            self._active.remove(packet)
        except ValueError:
            pass
        if not in_allocation:
            for waitlist in (self._waiters, self._new_waiters, self._woken):
                try:
                    waitlist.remove(packet)
                except ValueError:
                    pass
        if decision.action == "drop":
            if self._stats is not None:
                self._stats.record_packet_dropped()
        elif decision.action == "abort":
            self._res_abort = True

    # ------------------------------------------------------------------
    # Main loop

    def run(self) -> SimulationResult:
        """Run the configured number of cycles and return the results.

        The main loop fast-forwards over *idle* stretches: when no
        packet is active, no header is waiting, and every source queue
        is empty, nothing can happen until the next message arrival, so
        the clock jumps straight to it.  The jump is clamped to the
        warmup/measurement window boundaries (their queue samples must
        be taken on the exact reference cycles) and to the final cycle,
        and the deadlock watchdog only measures stalls while packets are
        in flight — so skipped cycles are exactly the cycles on which
        the reference engine did nothing, and results are bit-identical.
        """
        config = self.config
        warmup = config.warmup_cycles
        window_end = warmup + config.measure_cycles
        stats = StatsCollector(warmup, window_end)
        self._stats = stats
        resilience = self._resilience
        total = config.total_cycles
        max_packets = config.max_packets
        deadlock_threshold = config.deadlock_threshold
        multilane = self._multilane
        context = self._context
        trace = self.trace
        move = (
            self._move1
            if not multilane and config.buffer_depth == 1
            else self._move
        )
        generate = self._generate
        start_packets = self._start_packets
        allocate = self._allocate
        # All four containers are mutated in place, never rebound, so
        # they can feed the per-cycle phase-dispatch checks as locals
        # (the waiter list IS rebound by _allocate and is read fresh).
        heap = self._arrival_heap
        inj_candidates = self._inj_candidates
        new_waiters = self._new_waiters
        woken = self._woken
        active = self._active
        obs = self._obs
        cycle = 0
        while cycle < total:
            self.cycle = cycle
            context.cycle = cycle
            self.cycles_executed += 1
            self._in_window = warmup <= cycle < window_end
            if cycle == warmup:
                stats.queue_len_at_window_start = self._queued_total
            if cycle == window_end:
                stats.queue_len_at_window_end = self._queued_total
            # Runtime faults: the controller advertises the next cycle
            # it has work (a schedule event or a due retransmission), so
            # fault-free cycles — and entire fault-free runs — cost one
            # comparison here.
            if resilience is not None and resilience.next_wake <= cycle:
                self._resilience_tick(resilience)
            # Dispatch each phase only when it has work: a phase with an
            # empty work set is a no-op in the reference engine too.
            if heap and heap[0][0] <= cycle:
                generate(stats)
            if inj_candidates:
                start_packets()
            if self._waiters or new_waiters or woken:
                allocate()
            if resilience is not None and self._res_abort:
                # An AbortRun recovery policy stopped the run.
                break
            if multilane:
                self._phy_used.clear()
                if len(active) > 1:
                    # Rotate processing order so no packet systematically
                    # wins the physical-bandwidth race between lanes.
                    active.append(active.pop(0))
            any_moved = False
            finished: Optional[List[Packet]] = None
            for packet in active:
                if packet.stalled:
                    continue
                if move(packet, stats):
                    any_moved = True
                    # Consumption happens only inside a successful move,
                    # so the finished check hides behind it.
                    if packet.flits_consumed >= packet.size:
                        if finished is None:
                            finished = [packet]
                        else:
                            finished.append(packet)
            if finished is not None:
                for packet in finished:
                    self._finish(packet, stats)
                    # Identity-based removal preserves the order the
                    # reference rebuild kept.
                    active.remove(packet)
            if any_moved:
                self._last_progress = cycle
            elif (
                active
                and cycle - self._last_progress >= deadlock_threshold
            ):
                self._deadlocked = True
                if trace is not None:
                    trace.record(cycle, "deadlock", -1)
                break
            if (
                max_packets is not None
                and self._messages_created >= max_packets
                and not active
                and self._queued_total == 0
                and (resilience is None or not resilience.retries_pending)
            ):
                break
            # Observability sampling happens after every phase of the
            # cycle has settled; the hook is read-only, so results with
            # and without a collector are bit-identical.
            if obs is not None:
                obs.on_cycle_end(cycle, self)
            cycle += 1
            if (
                not active
                and cycle < total
                and not self._waiters
                and not new_waiters
                and self._queued_total == 0
            ):
                # Idle fast-forward: jump to the next arrival (the heap
                # top), clamped so window-boundary cycles and the final
                # cycle still execute.
                if heap:
                    next_arrival = heap[0][0]
                    target = int(next_arrival)
                    if target < next_arrival:
                        target += 1
                else:
                    target = total - 1
                if resilience is not None:
                    # The next fault event or due retransmission must
                    # still execute on its exact cycle (``inf`` when the
                    # controller is idle fails the comparison).
                    wake = resilience.next_wake
                    if wake < target:
                        target = int(wake)
                if cycle <= warmup:
                    target = min(target, warmup)
                elif cycle <= window_end:
                    target = min(target, window_end)
                if target > cycle:
                    cycle = min(target, total - 1)
        if stats.queue_len_at_window_start is None:
            stats.queue_len_at_window_start = self._queued_total
        if stats.queue_len_at_window_end is None:
            stats.queue_len_at_window_end = self._queued_total
        if resilience is not None:
            resilience.finish(self._messages_created, self.cycle)
        if obs is not None:
            obs.finish(self)
        return self._result(stats)

    def _total_queued(self) -> int:
        return self._queued_total

    def _result(self, stats: StatsCollector) -> SimulationResult:
        latencies = stats.latencies_cycles
        hops = stats.hops
        delays = stats.queue_delays_cycles
        # Explicit None checks: a legitimate sample of 0 (empty queues at
        # a window boundary) must not be confused with "never sampled"
        # (run() backfills both before calling here, but a truthiness
        # fallback would silently mask that distinction).
        queue_start = stats.queue_len_at_window_start
        if queue_start is None:
            queue_start = 0
        queue_end = stats.queue_len_at_window_end
        if queue_end is None:
            queue_end = 0
        by_size = {
            size: sum(values) / len(values)
            for size, values in sorted(stats.latencies_by_size.items())
        }
        return SimulationResult(
            offered_load=self.workload.offered_load,
            cycle_time_usec=self.config.cycle_time_usec,
            num_nodes=self.topology.num_nodes,
            avg_latency_cycles=sum(latencies) / len(latencies) if latencies else 0.0,
            latency_samples=len(latencies),
            measured_created=stats.measured_created,
            delivered_flits=stats.flits_delivered_in_window,
            offered_flits=stats.offered_flits_in_window,
            measure_cycles=self.config.measure_cycles,
            avg_hops=sum(hops) / len(hops) if hops else 0.0,
            avg_queue_delay_cycles=sum(delays) / len(delays) if delays else 0.0,
            queue_start=queue_start,
            queue_end=queue_end,
            deadlocked=self._deadlocked,
            total_injected=self._total_injected,
            total_delivered=self._total_delivered,
            p50_latency_cycles=percentile(latencies, 0.50),
            p95_latency_cycles=percentile(latencies, 0.95),
            max_latency_cycles=max(latencies) if latencies else 0.0,
            latency_by_size_cycles=by_size,
        )
