"""Measurement: latency and throughput statistics (Section 6).

The paper reports two characteristics per run: average communication
latency in microseconds and average network throughput in flits delivered
per microsecond, with throughput called *sustainable* when source queues
stay small and bounded.  :class:`StatsCollector` gathers the raw events
and :class:`SimulationResult` exposes the derived figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["StatsCollector", "SimulationResult", "percentile"]


class StatsCollector:
    """Accumulates events during a run.

    Only packets *created* inside the measurement window contribute
    latency samples; all flit consumptions inside the window count toward
    throughput (standard warmup discipline).
    """

    def __init__(self, window_start: int, window_end: int):
        self.window_start = window_start
        self.window_end = window_end
        self.latencies_cycles: List[float] = []
        self.hops: List[int] = []
        self.queue_delays_cycles: List[float] = []
        self.latencies_by_size: dict[int, List[float]] = {}
        self.flits_delivered_in_window = 0
        self.packets_delivered_in_window = 0
        self.offered_flits_in_window = 0
        self.measured_created = 0
        self.queue_len_at_window_start: Optional[int] = None
        self.queue_len_at_window_end: Optional[int] = None
        # Packets discarded by fault recovery (runtime fault injection).
        # Deliberately not a SimulationResult field: the result schema is
        # digest-pinned by the determinism suite, and the full resilience
        # accounting lives in repro.resilience.stats.
        self.dropped_packets = 0

    def in_window(self, time: float) -> bool:
        return self.window_start <= time < self.window_end

    def record_created(self, create_time: float, size: int) -> None:
        if self.in_window(create_time):
            self.offered_flits_in_window += size
            self.measured_created += 1

    def record_packet_dropped(self) -> None:
        """Count a packet discarded by fault recovery."""
        self.dropped_packets += 1

    def record_flit_consumed(self, cycle: int) -> None:
        if self.in_window(cycle):
            self.flits_delivered_in_window += 1

    def record_packet_done(
        self,
        create_time: float,
        inject_cycle: Optional[int],
        finish_cycle: int,
        hops: int,
        size: Optional[int] = None,
    ) -> None:
        if self.in_window(finish_cycle):
            self.packets_delivered_in_window += 1
        if self.in_window(create_time):
            latency = finish_cycle - create_time
            self.latencies_cycles.append(latency)
            self.hops.append(hops)
            if size is not None:
                self.latencies_by_size.setdefault(size, []).append(latency)
            if inject_cycle is not None:
                self.queue_delays_cycles.append(inject_cycle - create_time)


def percentile(values: List[float], fraction: float) -> float:
    """The ``fraction`` percentile of ``values`` (nearest-rank).

    Args:
        values: samples; may be unsorted.  Empty input yields 0.0.
        fraction: in [0, 1], e.g. 0.95 for the 95th percentile.
    """
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1]: {fraction}")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    Attributes:
        offered_load: requested per-node injection rate (flits per node
            per cycle) of the workload.
        cycle_time_usec: conversion factor from cycles to microseconds.
        num_nodes: network size, for per-node normalizations.
        avg_latency_cycles: mean packet latency (creation to last flit
            consumed) over measured packets, in cycles.
        latency_samples: number of measured packets delivered.
        measured_created: packets created inside the window.
        delivered_flits: flits consumed inside the window.
        offered_flits: flits of messages created inside the window.
        measure_cycles: window length in cycles.
        avg_hops: mean hop count of measured packets.
        avg_queue_delay_cycles: mean source-queueing delay of measured
            packets.
        queue_start, queue_end: total source-queue length (packets) at
            the window boundaries — the boundedness signal for
            sustainability.
        deadlocked: the run was aborted by the deadlock detector.
        total_injected: packets injected over the whole run.
        total_delivered: packets fully consumed over the whole run.
    """

    offered_load: float
    cycle_time_usec: float
    num_nodes: int
    avg_latency_cycles: float
    latency_samples: int
    measured_created: int
    delivered_flits: int
    offered_flits: int
    measure_cycles: int
    avg_hops: float
    avg_queue_delay_cycles: float
    queue_start: int
    queue_end: int
    deadlocked: bool
    total_injected: int
    total_delivered: int
    #: Median measured latency (cycles); 0 when no samples.
    p50_latency_cycles: float = 0.0
    #: 95th-percentile measured latency (cycles).
    p95_latency_cycles: float = 0.0
    #: Worst measured latency (cycles).
    max_latency_cycles: float = 0.0
    #: Mean latency (cycles) per packet size, for bimodal workloads.
    latency_by_size_cycles: dict = field(default_factory=dict)

    @property
    def avg_latency_usec(self) -> float:
        """Average communication latency in microseconds."""
        return self.avg_latency_cycles * self.cycle_time_usec

    @property
    def p95_latency_usec(self) -> float:
        """95th-percentile communication latency in microseconds."""
        return self.p95_latency_cycles * self.cycle_time_usec

    @property
    def p50_latency_usec(self) -> float:
        """Median communication latency in microseconds."""
        return self.p50_latency_cycles * self.cycle_time_usec

    @property
    def throughput_flits_per_usec(self) -> float:
        """Network throughput in flits delivered per microsecond."""
        window_usec = self.measure_cycles * self.cycle_time_usec
        return self.delivered_flits / window_usec

    @property
    def throughput_fraction(self) -> float:
        """Delivered flits per node per cycle (fraction of capacity)."""
        return self.delivered_flits / (self.measure_cycles * self.num_nodes)

    @property
    def offered_flits_per_usec(self) -> float:
        """Offered load in flits per microsecond, network-wide."""
        window_usec = self.measure_cycles * self.cycle_time_usec
        return self.offered_flits / window_usec

    @property
    def acceptance_ratio(self) -> float:
        """Delivered over offered flits in the window (1.0 = keeping up)."""
        if self.offered_flits == 0:
            return 1.0
        return self.delivered_flits / self.offered_flits

    @property
    def queue_growth(self) -> int:
        """Source-queue growth across the window (packets)."""
        return self.queue_end - self.queue_start

    def is_sustainable(
        self, acceptance_floor: float = 0.85, queue_slack: float = 0.05
    ) -> bool:
        """The paper's criterion: source queues small and bounded.

        Queue growth across the measurement window is the primary signal
        (at saturation it grows linearly with the excess offered load);
        the acceptance ratio is a secondary guard against windows too
        short for the queues to build up.

        Args:
            acceptance_floor: minimum delivered/offered flit ratio.
            queue_slack: tolerated queue growth, as a fraction of the
                packets created in the window.
        """
        if self.deadlocked:
            return False
        if self.acceptance_ratio < acceptance_floor:
            return False
        allowed = max(4, queue_slack * max(1, self.measured_created))
        return self.queue_growth <= allowed

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "DEADLOCK" if self.deadlocked else (
            "sustainable" if self.is_sustainable() else "saturated"
        )
        return (
            f"load={self.offered_load:.3f} "
            f"thru={self.throughput_flits_per_usec:.1f} flits/us "
            f"lat={self.avg_latency_usec:.2f} us "
            f"accept={self.acceptance_ratio:.2f} [{status}]"
        )
