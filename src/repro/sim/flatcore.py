"""Flat integer-indexed engine core: the struct-of-arrays hot path.

:class:`FlatWormholeSimulator` re-implements the wormhole engine's hot
phases — ``_allocate``, ``_move``/``_move1``, ``_released``,
``_start_packets`` — over dense integer arrays compiled at construction
from the topology (:class:`~repro.sim.ids.ChannelIndex`), instead of
the object core's ``Channel``/``ChannelState`` graph and dict-keyed
lookups.  Three structural facts make the flat core fast *and*
bit-identical:

* **Ids replace objects.**  A packet's ``path`` holds channel ids;
  ownership is one list (``_owners``), candidate routes are tuples of
  ids, and per-channel wake lists and ranking keys are parallel lists.
  Every hot dict lookup becomes a list index.

* **Shared buffer counts are redundant.**  Wormhole ownership is
  exclusive, so a held channel's buffer count always equals the owner's
  own occupancy entry — the flat movers never store a shared count at
  all.  Cold consumers (``network_channel_states``, the obs layer)
  reconstruct the object view on demand.

* **Capacity-1 movement is a bit-parallel shift.**  With single-flit
  buffers on a single lane, a packet's occupancy is a bitmask; the
  reference front-first boundary pass moves exactly the maximal runs of
  flits not blocked at the front, which is a handful of int operations
  (see :meth:`FlatWormholeSimulator._move1`).

The flat core intentionally models a subset of engine features.  A
configuration it cannot model — an observability collector (which
samples live :class:`ChannelState` objects every cycle) or a fault
controller with a non-empty schedule (mid-run topology rebuilds) —
raises :class:`FlatCoreUnsupported`; :func:`make_simulator` catches
this and falls back to the object core, so callers can always request
``core="flat"`` safely.  Everything else — virtual channels, deep
buffers, preloads, uncacheable routing, idle fault controllers — runs
flat, and every golden-digest scenario reproduces its exact digest
under either core (CI-gated).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.routing.base import RoutingAlgorithm
from repro.routing.cache import RouteCache
from repro.sim.config import SimulationConfig
from repro.sim.engine import RoutingError, WormholeSimulator
from repro.sim.ids import ChannelIndex, compile_route_payload
from repro.sim.packet import Packet
from repro.sim.resources import ChannelState
from repro.sim.stats import StatsCollector
from repro.sim.trace import TraceRecorder
from repro.topology.channels import Channel, NodeId
from repro.traffic.workload import Workload

__all__ = [
    "FlatCoreUnsupported",
    "FlatPacket",
    "FlatRouteTable",
    "FlatWormholeSimulator",
    "flat_unsupported_reason",
    "make_simulator",
]


class FlatCoreUnsupported(RuntimeError):
    """The requested configuration needs a feature the flat core lacks."""


def flat_unsupported_reason(resilience=None, obs=None) -> Optional[str]:
    """Why a configuration cannot run on the flat core (``None`` = it can).

    The flat core supports everything the object core does except:

    * a bound :class:`~repro.obs.metrics.MetricsCollector` — it samples
      live ``ChannelState`` objects every cycle, which the flat core
      does not maintain;
    * a :class:`~repro.resilience.controller.FaultController` with a
      non-empty schedule — fault events rebuild routing state mid-run.
      An *empty*-schedule controller is fine (its hooks never fire and
      are required to be bit-invisible).
    """
    if obs is not None:
        return "an observability collector samples live channel states"
    if resilience is not None and len(resilience.schedule.events) > 0:
        return "a fault schedule rebuilds routing state mid-run"
    return None


class FlatPacket(Packet):
    """A :class:`Packet` whose ``path`` holds dense channel ids.

    Adds the destination's node index (``dest_id``) so the routing hot
    path never touches node tuples, and ``occ_bits`` — the occupancy
    bitmask used by the capacity-1 single-lane mover (bit *i* is the
    buffer fill of ``path[i]``).  Configurations outside that regime
    keep using the inherited ``occupancy`` list.
    """

    __slots__ = ("dest_id", "occ_bits")

    def __init__(
        self, pid: int, src: NodeId, dest: NodeId, size: int,
        create_time: float,
    ):
        super().__init__(pid, src, dest, size, create_time)
        self.dest_id = -1
        self.occ_bits = 0

    @property
    def flits_in_network(self) -> int:
        """Flits currently buffered in channels the packet holds."""
        if self.occupancy:
            return sum(self.occupancy)
        return self.occ_bits.bit_count()


class FlatRouteTable:
    """Compiled routing table over dense ids, with bench-style stats.

    For an algorithm that provably ignores the arrival channel the
    table is one dense list indexed by ``node_index * N + dest_index``
    (``None`` marks an uncompiled entry — an empty tuple is a valid
    "no route" answer).  In-channel-sensitive algorithms use an
    int-keyed dict instead: ``node * N + dest`` for injection arrivals,
    ``N*N + in_cid * N + dest`` otherwise.

    Misses chain through an optional shared raw
    :class:`~repro.routing.cache.RouteCache` (the prewarm layer's
    ``route_source``) before calling ``routing.route``; answers the
    source already held count as ``prefilled``, mirroring the object
    core's cache accounting so ``repro bench`` reports are comparable.
    """

    __slots__ = ("routing", "dense", "bykey", "hits", "misses", "prefilled",
                 "prefilled_entries", "filled", "_index", "_source")

    def __init__(
        self,
        routing: RoutingAlgorithm,
        index: ChannelIndex,
        source: Optional[RouteCache] = None,
    ):
        self.routing = routing
        self._index = index
        self.hits = 0
        self.misses = 0
        self.prefilled = 0
        self.prefilled_entries = 0
        self.filled = 0
        self._source = source
        num_nodes = index.num_nodes
        uses_in = getattr(routing, "uses_in_channel", True)
        self.dense: Optional[List[Optional[Tuple[int, ...]]]] = (
            None if uses_in else [None] * (num_nodes * num_nodes)
        )
        self.bykey: Optional[Dict[int, Tuple[int, ...]]] = (
            {} if uses_in else None
        )
        if source is not None:
            # Eagerly compile everything the shared table already holds
            # into id tuples — a prewarmed full table makes the run's
            # entire routing phase allocation-free list indexing.
            cid = index.cid
            node_id = index.node_id
            for key, channels in source.export_table().items():
                ids = tuple(cid[channel] for channel in channels)
                if self.dense is not None:
                    node, dest = key
                    self.dense[node_id[node] * num_nodes + node_id[dest]] = ids
                    self.filled += 1
                else:
                    in_channel, node, dest = key
                    assert self.bykey is not None
                    if in_channel is None:
                        flat_key = node_id[node] * num_nodes + node_id[dest]
                    else:
                        flat_key = (
                            num_nodes * num_nodes
                            + cid[in_channel] * num_nodes
                            + node_id[dest]
                        )
                    self.bykey[flat_key] = ids
            self.prefilled_entries = len(source)

    def prefill_payload(self, payload: dict) -> int:
        """Install a serialized route table (see :mod:`repro.sim.ids`).

        Only arrival-channel-blind algorithms have ``(node, dest)``
        tables; entries already compiled are kept.  Returns the number
        of entries added.
        """
        dense = self.dense
        if dense is None:
            raise ValueError(
                f"{self.routing.name} reads the arrival channel; a "
                "(node, dest) table payload does not apply"
            )
        added = 0
        for key, ids in compile_route_payload(self._index, payload).items():
            if dense[key] is None:
                dense[key] = ids
                added += 1
        self.filled += added
        self.prefilled_entries += added
        return added

    def fill_dense(self, key: int, node_idx: int, dest_idx: int) -> tuple:
        index = self._index
        node = index.nodes[node_idx]
        dest = index.nodes[dest_idx]
        source = self._source
        if source is not None:
            channels, warm = source.lookup(None, node, dest)
        else:
            channels = tuple(self.routing.route(None, node, dest))
            warm = False
        cid = index.cid
        resolved = tuple(cid[channel] for channel in channels)
        assert self.dense is not None
        self.dense[key] = resolved
        self.filled += 1
        if warm:
            self.prefilled += 1
        else:
            self.misses += 1
        return resolved

    def fill_keyed(
        self, key: int, front: int, node_idx: int, dest_idx: int
    ) -> tuple:
        index = self._index
        in_channel = index.channel_of[front] if front < index.inj_base else None
        node = index.nodes[node_idx]
        dest = index.nodes[dest_idx]
        source = self._source
        if source is not None:
            channels, warm = source.lookup(in_channel, node, dest)
        else:
            channels = tuple(self.routing.route(in_channel, node, dest))
            warm = False
        cid = index.cid
        resolved = tuple(cid[channel] for channel in channels)
        assert self.bykey is not None
        self.bykey[key] = resolved
        if warm:
            self.prefilled += 1
        else:
            self.misses += 1
        return resolved

    def __len__(self) -> int:
        if self.bykey is not None:
            return len(self.bykey)
        return self.filled

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered without computing a route."""
        total = self.hits + self.prefilled + self.misses
        return (self.hits + self.prefilled) / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"FlatRouteTable({self.routing.name}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"prefilled={self.prefilled})"
        )


class FlatWormholeSimulator(WormholeSimulator):
    """The wormhole engine on the flat integer-indexed core.

    Construction compiles the topology into a
    :class:`~repro.sim.ids.ChannelIndex` and replaces the per-channel
    ``ChannelState`` objects with parallel arrays; the inherited
    :meth:`~repro.sim.engine.WormholeSimulator.run` loop then drives
    the overridden flat phases.  Every override preserves the object
    core's exact event order, RNG draw order, and tie-breaks, so
    results, traces, and digests are bit-identical (golden-gated).

    Raises:
        FlatCoreUnsupported: when the configuration needs a feature the
            flat core does not model (see
            :func:`flat_unsupported_reason`); :func:`make_simulator`
            turns this into an object-core fallback.
    """

    core = "flat"

    def __init__(
        self,
        routing: RoutingAlgorithm,
        workload: Workload,
        config: Optional[SimulationConfig] = None,
        preload: Optional[List[Tuple[NodeId, NodeId, int, float]]] = None,
        trace: Optional[TraceRecorder] = None,
        resilience=None,
        obs=None,
        route_source: Optional[RouteCache] = None,
        route_table: Optional[dict] = None,
    ):
        reason = flat_unsupported_reason(resilience=resilience, obs=obs)
        if reason is not None:
            raise FlatCoreUnsupported(reason)
        super().__init__(
            routing, workload, config, preload=preload, trace=trace,
            resilience=resilience, obs=obs, route_source=route_source,
        )
        index = ChannelIndex(self.topology)
        self._index = index
        total = index.total_ids
        num_nodes = index.num_nodes
        # Parallel resource arrays (the struct-of-arrays core).  There
        # is no shared count array: wormhole ownership is exclusive, so
        # a held channel's fill is the owner's own occupancy entry.
        self._owners: List[Optional[FlatPacket]] = [None] * total
        self._wake_flat: List[list] = [[] for _ in range(total)]
        self._dest_ids = index.dest_node_id
        self._channel_of = index.channel_of
        self._node_of = index.node_of
        self._phys_of = index.phys_of
        self._inj_base = index.inj_base
        self._ej_base = index.ej_base
        self._capacity = self.config.buffer_depth
        # Bitmask occupancy applies exactly when run() picks _move1.
        self._bitocc = not self._multilane and self._capacity == 1
        # Injection ids and the inverse (injection node -> source index)
        # for _released; pid assignment order follows source order.
        node_id = index.node_id
        self._inj_ids = [
            index.inj_base + node_id[source.node] for source in self._sources
        ]
        src_of_node = [-1] * num_nodes
        for src_index, source in enumerate(self._sources):
            src_of_node[node_id[source.node]] = src_index
        self._src_of_node = src_of_node
        # One preallocated (ejection_id,) tuple per node: the most
        # common candidate set, allocation-free.
        ej_base = index.ej_base
        self._ej_tuples = [(ej_base + i,) for i in range(num_nodes)]
        # Output-policy ranking keys densified to ints: equal keys map
        # to equal ints and order is preserved, so min() over free
        # candidates (ties to the earliest) grants identically.
        ranking = getattr(self.config.output_policy, "ranking", None)
        self._rank_flat: Optional[List[int]] = None
        if ranking is not None:
            keys = [ranking(channel) for channel in index.channels]
            dense_rank = {key: pos for pos, key in enumerate(sorted(set(keys)))}
            self._rank_flat = [dense_rank[key] for key in keys]
        # Compiled routing table.  The object core's RouteCache (built
        # by super().__init__) is replaced wholesale; uncacheable
        # algorithms route live with id conversion at the call site.
        self._flat_routes: Optional[FlatRouteTable] = None
        if getattr(routing, "cacheable", True):
            self._flat_routes = FlatRouteTable(
                routing, index, source=route_source
            )
        self._route_cache = None
        if route_table is not None and self._flat_routes is not None:
            self._flat_routes.prefill_payload(route_table)
        # Object-state mirror for cold consumers, built on first use.
        self._state_list: Optional[List[ChannelState]] = None

    # ------------------------------------------------------------------
    # Cold-path object views

    def _states_by_id(self) -> List[ChannelState]:
        states = self._state_list
        if states is None:
            index = self._index
            states = [
                self._net_states[channel] for channel in index.channels
            ]
            states += [self._inj_states[node] for node in index.nodes]
            states += [self._ej_states[node] for node in index.nodes]
            self._state_list = states
        return states

    def _sync_states(self) -> None:
        """Project the flat arrays back onto the ChannelState mirror."""
        states = self._states_by_id()
        for state in states:
            state.count = 0
            state.owner = None
        bitocc = self._bitocc
        for packet in self._active:
            if bitocc:
                bits = packet.occ_bits
                for pos, ident in enumerate(packet.path):
                    state = states[ident]
                    state.owner = packet
                    state.count = (bits >> pos) & 1
            else:
                for ident, fill in zip(packet.path, packet.occupancy):
                    state = states[ident]
                    state.owner = packet
                    state.count = fill

    @property
    def network_channel_states(self) -> Dict[Channel, ChannelState]:
        """The per-channel resource table, synchronized on demand.

        The flat core does not maintain ``ChannelState`` objects during
        the run; reading this property reconstructs counts and owners
        from the live flat arrays (read-only, like the object core's).
        """
        self._sync_states()
        return self._net_states

    def occupancy_snapshot(self) -> int:
        """Total flits currently buffered in the network (for tests)."""
        if self._bitocc:
            return sum(p.occ_bits.bit_count() for p in self._active)
        return sum(sum(p.occupancy) for p in self._active)

    def _free_space(self, channel: Channel) -> int:
        ident = self._index.cid[channel]
        packet = self._owners[ident]
        if packet is None:
            return self._capacity
        pos = packet.path.index(ident)
        if self._bitocc:
            return self._capacity - ((packet.occ_bits >> pos) & 1)
        return self._capacity - packet.occupancy[pos]

    @property
    def route_cache(self) -> Optional[FlatRouteTable]:
        """The compiled routing table, or ``None`` for uncacheable
        algorithms (reported by ``repro bench``)."""
        return self._flat_routes

    # ------------------------------------------------------------------
    # Phase 0: injection-channel allocation

    def _start_packets(self) -> None:
        pending = self._inj_candidates
        if not pending:
            return
        cycle = self.cycle
        trace = self.trace
        sources = self._sources
        queues = self._queues
        inj_ids = self._inj_ids
        owners = self._owners
        active = self._active
        node_id = self._index.node_id
        bitocc = self._bitocc
        for index in sorted(pending):
            queue = queues[index]
            if not queue:
                continue
            inj = inj_ids[index]
            if owners[inj] is not None:
                continue
            dest, size, create_time = queue.popleft()
            self._queued_total -= 1
            source = sources[index]
            packet = FlatPacket(
                self._next_pid, source.node, dest, size, create_time
            )
            packet.dest_id = node_id[dest]
            self._next_pid += 1
            owners[inj] = packet
            packet.path.append(inj)
            if not bitocc:
                packet.occupancy.append(0)
            active.append(packet)
            self._total_injected += 1
            self._last_progress = cycle
            if trace is not None:
                trace.record(cycle, "injected", packet.pid, (source.node, dest))
        pending.clear()

    # ------------------------------------------------------------------
    # Phase 1: routing and channel allocation

    def _flat_candidates(self, packet: FlatPacket, front: int) -> tuple:
        """Candidate ids for one header (cold: once per router visit)."""
        dest_idx = packet.dest_id
        node_idx = self._dest_ids[front]
        if node_idx == dest_idx:
            return self._ej_tuples[node_idx]
        table = self._flat_routes
        num_nodes = self._index.num_nodes
        if table is None:
            in_channel = (
                self._channel_of[front] if front < self._inj_base else None
            )
            node = self._index.nodes[node_idx]
            cid = self._index.cid
            candidates = tuple(
                cid[channel]
                for channel in self._active_routing.route(
                    in_channel, node, packet.dest
                )
            )
        else:
            dense = table.dense
            if dense is not None:
                key = node_idx * num_nodes + dest_idx
                cached = dense[key]
                if cached is not None:
                    table.hits += 1
                    candidates = cached
                else:
                    candidates = table.fill_dense(key, node_idx, dest_idx)
            else:
                if front >= self._inj_base:
                    key = node_idx * num_nodes + dest_idx
                else:
                    key = (
                        num_nodes * num_nodes + front * num_nodes + dest_idx
                    )
                assert table.bykey is not None
                cached = table.bykey.get(key)
                if cached is not None:
                    table.hits += 1
                    candidates = cached
                else:
                    candidates = table.fill_keyed(
                        key, front, node_idx, dest_idx
                    )
        if not candidates and self._strict_routes:
            self._no_route(packet, front, node_idx)
        return candidates

    def _no_route(self, packet: FlatPacket, front: int, node_idx: int) -> None:
        """Raise the object core's exact no-route error (cold path)."""
        in_channel = (
            self._channel_of[front] if front < self._inj_base else None
        )
        node = self._index.nodes[node_idx]
        raise RoutingError(
            f"{self.routing.name} offered no route for {packet!r} at "
            f"{node} (arrived via {in_channel})"
        )

    def _candidates_for(self, packet: Packet) -> tuple:
        """Flat candidates (ids, not states) for one waiting header."""
        return self._flat_candidates(packet, packet.path[-1])

    def _allocate(self) -> None:
        # Identical control flow to the object core's _allocate (see
        # engine.py for the ordering rationale); only the per-candidate
        # representation changed: ids + parallel arrays instead of
        # ChannelState objects.
        from repro.sim.engine import _arrival_key, _merge_waiters, _pid_key

        waiters = self._waiters
        policy = self.config.input_policy
        new = self._new_waiters
        park = self._park_enabled
        woken = self._woken
        obs = self._obs
        if woken:
            if len(woken) > 1:
                woken.sort(key=_arrival_key)
            if new:
                if len(new) > 1:
                    new.sort(key=_pid_key)
                woken.extend(new)
                new.clear()
            if waiters:
                waiters = _merge_waiters(waiters, woken)
            else:
                waiters = list(woken)
            self._waiters = waiters
            woken.clear()
        elif new:
            if park and len(new) > 1:
                new.sort(key=_pid_key)
            waiters.extend(new)
            new.clear()
        if not waiters:
            return
        context = self._context
        delay = self.config.routing_delay_cycles
        cycle = self.cycle
        if policy.stateless:
            order = waiters
        else:
            order = sorted(
                waiters,
                key=lambda p: (*policy.priority(p.waiting_since, context), p.pid),
            )
        trace = self.trace
        output_policy = self.config.output_policy
        ranks = self._rank_flat
        owners = self._owners
        wake_flat = self._wake_flat
        ej_base = self._ej_base
        channel_of = self._channel_of
        node_of = self._node_of
        bitocc = self._bitocc
        dest_ids = self._dest_ids
        ej_tuples = self._ej_tuples
        num_nodes = self._index.num_nodes
        strict = self._strict_routes
        rt = self._flat_routes
        rt_dense = rt.dense if rt is not None else None
        flat_candidates = self._flat_candidates
        still_waiting: List[Packet] = []
        append_waiting = still_waiting.append
        for packet in order:
            if cycle - packet.waiting_since < delay:
                append_waiting(packet)
                continue
            candidates = packet.pending_candidates
            if candidates is None:
                # The two overwhelmingly common cases are inlined: the
                # header is at its destination (ejection singleton) or
                # the dense table already holds its routing state.
                front = packet.path[-1]
                node_idx = dest_ids[front]
                if node_idx == packet.dest_id:
                    candidates = ej_tuples[node_idx]
                else:
                    if rt_dense is not None:
                        candidates = rt_dense[
                            node_idx * num_nodes + packet.dest_id
                        ]
                        if candidates is not None:
                            rt.hits += 1
                        else:
                            candidates = flat_candidates(packet, front)
                    else:
                        candidates = flat_candidates(packet, front)
                    if not candidates:
                        if strict:
                            self._no_route(packet, front, node_idx)
                        # Only reachable with a fault controller bound.
                        self._recover(packet, in_allocation=True)
                        continue
                packet.pending_candidates = candidates
            if len(candidates) == 1:
                chosen = candidates[0]
                if owners[chosen] is not None:
                    if park:
                        token = packet.park_token + 1
                        packet.park_token = token
                        packet.parked = True
                        wake_flat[chosen].append((packet, token))
                        if obs is not None:
                            obs.park_events += 1
                    else:
                        append_waiting(packet)
                    continue
            else:
                free = [c for c in candidates if owners[c] is None]
                if not free:
                    if park:
                        token = packet.park_token + 1
                        packet.park_token = token
                        packet.parked = True
                        for c in candidates:
                            wake_flat[c].append((packet, token))
                        if obs is not None:
                            obs.park_events += 1
                    else:
                        append_waiting(packet)
                    continue
                if len(free) == 1:
                    chosen = free[0]
                elif ranks is not None:
                    chosen = min(free, key=ranks.__getitem__)
                else:
                    by_channel = {channel_of[c]: c for c in free}
                    pick = output_policy.select(list(by_channel), context)
                    chosen = by_channel[pick]
            owners[chosen] = packet
            packet.path.append(chosen)
            if not bitocc:
                packet.occupancy.append(0)
            packet.header_present = False
            packet.pending_candidates = None
            packet.stalled = False
            if chosen >= ej_base:
                packet.route_complete = True
            else:
                packet.hops += 1
            self._last_progress = cycle
            if trace is not None:
                if chosen >= ej_base:
                    trace.record(
                        cycle, "eject-granted", packet.pid, node_of[chosen]
                    )
                else:
                    trace.record(
                        cycle, "granted", packet.pid, channel_of[chosen]
                    )
        self._waiters = still_waiting

    # ------------------------------------------------------------------
    # Phase 2: flit movement

    def _move(self, packet: FlatPacket, stats: StatsCollector) -> bool:
        # The general mover (deep buffers and/or virtual channels):
        # occupancy lists over ids, physical-link arbitration over
        # dense link ids.  Mirrors engine._move boundary for boundary.
        path = packet.path
        occ = packet.occupancy
        cycle = self.cycle
        moves = 0
        if packet.route_complete and occ[-1] > 0:
            occ[-1] -= 1
            packet.flits_consumed += 1
            if self._in_window:
                stats.flits_delivered_in_window += 1
            moves = 1
        front_index = len(path) - 1
        multilane = self._multilane
        capacity = self._capacity
        if multilane:
            phy_used = self._phy_used
            phys_of = self._phys_of
            inj_base = self._inj_base
        i = front_index
        while i:
            below = occ[i - 1]
            if below and occ[i] < capacity:
                if multilane:
                    ident = path[i]
                    if ident < inj_base:
                        physical = phys_of[ident]
                        if physical in phy_used:
                            i -= 1
                            continue
                        phy_used.add(physical)
                occ[i - 1] = below - 1
                occ[i] += 1
                moves += 1
                if (
                    i == front_index
                    and not packet.header_present
                    and not packet.route_complete
                ):
                    self._header_arrived(packet)
            i -= 1
        if packet.remaining_to_inject > 0 and occ[0] < capacity:
            occ[0] += 1
            packet.remaining_to_inject -= 1
            moves += 1
            if packet.inject_cycle is None:
                packet.inject_cycle = cycle
                self._header_arrived(packet)
        owners = self._owners
        released = self._released
        while len(path) > 1 and occ[0] == 0:
            rear = path[0]
            if rear >= self._inj_base and packet.remaining_to_inject > 0:
                break
            owners[rear] = None
            released(rear)
            del path[0]
            del occ[0]
        if moves:
            self.flit_moves += moves
            return True
        if not packet.route_complete and not multilane:
            packet.stalled = True
        return False

    def _move1(self, packet: FlatPacket, stats: StatsCollector) -> bool:
        """Bit-parallel mover for single-flit buffers on a single lane.

        The packet's occupancy is the bitmask ``occ_bits`` (bit *i* =
        fill of ``path[i]``).  The reference front-first boundary pass
        advances exactly the maximal runs of flits that are not blocked
        at the front: the run containing the front slot (if occupied)
        cannot move, and every other maximal run has an empty slot
        directly above it and shifts up by one.  With ``movers`` = the
        occupied bits below the highest empty slot, that whole pass is
        ``bits += movers`` — the shifted runs land exactly on the bits
        vacated plus the hole above each run.
        """
        path = packet.path
        bits = packet.occ_bits
        held = len(path)
        front = held - 1
        moves = 0
        if packet.route_complete and bits >> front:
            bits ^= 1 << front
            packet.flits_consumed += 1
            if self._in_window:
                stats.flits_delivered_in_window += 1
            moves = 1
        if front and bits:
            # Highest empty slot h-1; bits h..front are the (immobile)
            # front-blocked run; everything below position h moves up.
            inv = ~bits & ((1 << (front + 1)) - 1)
            movers = bits & ((1 << inv.bit_length()) - 1)
            if movers:
                bits += movers
                moves += movers.bit_count()
                if (
                    movers >> (front - 1)
                    and not packet.header_present
                    and not packet.route_complete
                ):
                    self._header_arrived(packet)
        if packet.remaining_to_inject > 0 and not bits & 1:
            bits |= 1
            packet.remaining_to_inject -= 1
            moves += 1
            if packet.inject_cycle is None:
                packet.inject_cycle = self.cycle
                self._header_arrived(packet)
        if not bits & 1 and held > 1:
            owners = self._owners
            released = self._released
            inj_base = self._inj_base
            while not bits & 1 and held > 1:
                rear = path[0]
                if rear >= inj_base and packet.remaining_to_inject > 0:
                    break
                owners[rear] = None
                released(rear)
                del path[0]
                held -= 1
                bits >>= 1
        packet.occ_bits = bits
        if moves:
            self.flit_moves += moves
            return True
        if not packet.route_complete:
            packet.stalled = True
        return False

    def _released(self, ident: int) -> None:
        inj_base = self._inj_base
        if inj_base <= ident < self._ej_base:
            self._inj_candidates.add(self._src_of_node[ident - inj_base])
            return
        wake = self._wake_flat[ident]
        if wake:
            woken = self._woken
            obs = self._obs
            for entry in wake:
                parked = entry[0]
                if parked.parked and parked.park_token == entry[1]:
                    parked.parked = False
                    woken.append(parked)
                    if obs is not None:
                        obs.wake_events += 1
            wake.clear()

    def _finish(self, packet: FlatPacket, stats: StatsCollector) -> None:
        owners = self._owners
        released = self._released
        for ident in packet.path:
            owners[ident] = None
            released(ident)
        packet.path.clear()
        if self._bitocc:
            packet.occ_bits = 0
        else:
            packet.occupancy.clear()
        self._total_delivered += 1
        if self.trace is not None:
            self.trace.record(self.cycle, "delivered", packet.pid, packet.dest)
        if self._resilience is not None:
            self._resilience.on_delivered(packet, self.cycle)
        if self._obs is not None:
            self._obs.on_packet_delivered(packet, self.cycle)
        stats.record_packet_done(
            packet.create_time, packet.inject_cycle, self.cycle, packet.hops,
            size=packet.size,
        )

    def _recover(self, packet: FlatPacket, in_allocation: bool = False) -> None:
        # Reachable only with a fault controller bound (and, on the
        # flat core, only via an empty candidate set — fault events are
        # gated to the object core).  Mirrors engine._recover.
        ctrl = self._resilience
        assert ctrl is not None
        cycle = self.cycle
        decision = ctrl.casualty(packet, cycle)
        trace = self.trace
        if trace is not None:
            if decision.action == "retry":
                trace.record(
                    cycle,
                    "retransmitted",
                    packet.pid,
                    (packet.src, packet.dest, decision.delay),
                )
            elif decision.action == "drop":
                trace.record(
                    cycle, "dropped", packet.pid, (packet.src, packet.dest)
                )
        owners = self._owners
        released = self._released
        for ident in packet.path:
            owners[ident] = None
            released(ident)
        packet.path.clear()
        if self._bitocc:
            packet.occ_bits = 0
        else:
            packet.occupancy.clear()
        packet.pending_candidates = None
        packet.parked = False
        packet.park_token += 1
        packet.header_present = False
        packet.stalled = True
        try:
            self._active.remove(packet)
        except ValueError:
            pass
        if not in_allocation:
            for waitlist in (self._waiters, self._new_waiters, self._woken):
                try:
                    waitlist.remove(packet)
                except ValueError:
                    pass
        if decision.action == "drop":
            if self._stats is not None:
                self._stats.record_packet_dropped()
        elif decision.action == "abort":
            self._res_abort = True


def make_simulator(
    routing: RoutingAlgorithm,
    workload: Workload,
    config: Optional[SimulationConfig] = None,
    *,
    core: str = "object",
    preload: Optional[List[Tuple[NodeId, NodeId, int, float]]] = None,
    trace: Optional[TraceRecorder] = None,
    resilience=None,
    obs=None,
    route_source: Optional[RouteCache] = None,
    route_table: Optional[dict] = None,
) -> Union[WormholeSimulator, FlatWormholeSimulator]:
    """Build a simulator on the requested core, falling back safely.

    Args:
        core: ``"object"`` for the reference
            :class:`~repro.sim.engine.WormholeSimulator`; ``"flat"``
            for the compiled :class:`FlatWormholeSimulator`, falling
            back to the object core when the configuration needs an
            unsupported feature (see :func:`flat_unsupported_reason`).
            The returned simulator's ``core`` attribute reports which
            core was actually built.
        route_table: optional serialized route-table payload
            (:func:`repro.analysis.prewarm.serialize_route_table`);
            compiled directly into the flat core's arrays, or installed
            into a fresh raw route source for the object core.

    Other arguments match :class:`WormholeSimulator`.
    """
    if core not in ("object", "flat"):
        raise ValueError(f"unknown engine core {core!r} (object or flat)")
    if core == "flat":
        try:
            return FlatWormholeSimulator(
                routing, workload, config, preload=preload, trace=trace,
                resilience=resilience, obs=obs, route_source=route_source,
                route_table=route_table,
            )
        except FlatCoreUnsupported:
            pass
    if route_table is not None and getattr(routing, "cacheable", True):
        if route_source is None:
            from repro.analysis.prewarm import deserialize_route_table

            route_source = RouteCache(routing)
            route_source.prefill(
                deserialize_route_table(routing.topology, route_table)
            )
    return WormholeSimulator(
        routing, workload, config, preload=preload, trace=trace,
        resilience=resilience, obs=obs, route_source=route_source,
    )
