"""Dense integer encoding of one topology's simulation resources.

The flat engine core (:mod:`repro.sim.flatcore`) replaces per-channel
Python objects with parallel arrays indexed by a *channel id*.  This
module owns the id layout, derived purely from the topology's canonical
iteration order so every process reconstructs the same encoding:

* network channels get ids ``0 .. C-1`` in ``topology.channels()`` order
  (the same order :func:`repro.analysis.prewarm.serialize_route_table`
  uses, so a serialized route table's channel indices *are* flat ids);
* injection channels get ids ``C + node_index`` and ejection channels
  ``C + N + node_index``, with ``node_index`` taken from
  ``topology.nodes()`` order — a channel's kind is derivable from its
  id range alone.

Physical links (for virtual-channel lane arbitration) are numbered in
first-lane-seen order, mirroring the per-``(src, dst)`` grouping the
object core keys its used-set on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId

__all__ = ["ChannelIndex", "compile_route_payload"]


class ChannelIndex:
    """The id tables for one topology (immutable after construction).

    Attributes:
        nodes: topology nodes in canonical order (``node_id`` inverse).
        channels: network channels in canonical order (``cid`` inverse).
        node_id: node -> dense node index.
        cid: network channel -> dense channel id.
        num_nodes, num_channels: table sizes (``N``, ``C``).
        inj_base: first injection id (``C``); node ``i`` injects on
            ``inj_base + i``.
        ej_base: first ejection id (``C + N``); node ``i`` ejects on
            ``ej_base + i``.
        total_ids: ``C + 2N``, the length of every parallel array.
        dest_node_id: id -> node index a flit is at after crossing the
            channel (a network channel's ``dst``; the owning node for
            injection and ejection channels).
        channel_of: id -> the topology :class:`Channel`, or ``None`` for
            injection/ejection ids.
        node_of: id -> the node the id is anchored at (``dst`` for
            network channels; the served node for injection/ejection).
        phys_of: network channel id -> dense physical-link id (lanes of
            one ``(src, dst)`` link share it).
        num_physical: distinct physical links.
        multilane: whether any channel has a nonzero lane.
    """

    __slots__ = (
        "nodes", "channels", "node_id", "cid", "num_nodes", "num_channels",
        "inj_base", "ej_base", "total_ids", "dest_node_id", "channel_of",
        "node_of", "phys_of", "num_physical", "multilane",
    )

    def __init__(self, topology: Topology) -> None:
        nodes: List[NodeId] = list(topology.nodes())
        channels: List[Channel] = list(topology.channels())
        self.nodes = nodes
        self.channels = channels
        self.node_id: Dict[NodeId, int] = {
            node: index for index, node in enumerate(nodes)
        }
        self.cid: Dict[Channel, int] = {
            channel: index for index, channel in enumerate(channels)
        }
        num_channels = len(channels)
        num_nodes = len(nodes)
        self.num_channels = num_channels
        self.num_nodes = num_nodes
        self.inj_base = num_channels
        self.ej_base = num_channels + num_nodes
        self.total_ids = num_channels + 2 * num_nodes
        node_id = self.node_id
        node_range = list(range(num_nodes))
        self.dest_node_id: List[int] = [
            node_id[channel.dst] for channel in channels
        ] + node_range + node_range
        self.channel_of: List[Optional[Channel]] = (
            list(channels) + [None] * (2 * num_nodes)
        )
        self.node_of: List[NodeId] = [
            channel.dst for channel in channels
        ] + nodes + nodes
        physical: Dict[Tuple[NodeId, NodeId], int] = {}
        phys_of: List[int] = []
        for channel in channels:
            key = (channel.src, channel.dst)
            link = physical.get(key)
            if link is None:
                link = len(physical)
                physical[key] = link
            phys_of.append(link)
        self.phys_of = phys_of
        self.num_physical = len(physical)
        self.multilane = any(channel.lane != 0 for channel in channels)

    def kind_of(self, ident: int) -> str:
        """The resource kind of one id (diagnostics; not a hot path)."""
        if ident < self.inj_base:
            return "network"
        if ident < self.ej_base:
            return "injection"
        return "ejection"

    def __repr__(self) -> str:
        return (
            f"ChannelIndex(C={self.num_channels}, N={self.num_nodes}, "
            f"multilane={self.multilane})"
        )


def compile_route_payload(
    index: ChannelIndex, payload: dict
) -> Dict[int, Tuple[int, ...]]:
    """Decode a serialized route table straight into flat-id tuples.

    ``payload`` is the dict produced by
    :func:`repro.analysis.prewarm.serialize_route_table`, whose node and
    channel indices already follow the canonical iteration order this
    module encodes — so the flat core consumes the artifact without
    materializing a single :class:`Channel`.  Keys are
    ``node_index * N + dest_index``.
    """
    if payload.get("format") != 1:
        raise ValueError(
            f"unsupported route-table format {payload.get('format')!r}"
        )
    flat = payload["entries"]
    num_nodes = index.num_nodes
    table: Dict[int, Tuple[int, ...]] = {}
    pos = 0
    end = len(flat)
    while pos < end:
        key = flat[pos] * num_nodes + flat[pos + 1]
        count = flat[pos + 2]
        pos += 3
        table[key] = tuple(flat[pos:pos + count])
        pos += count
    return table
