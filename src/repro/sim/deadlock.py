"""Deadlock demonstrations (Figures 1 and 4).

The paper motivates the turn model with Figure 1 — four packets turning
left into a circular wait — and warns with Figure 4 that prohibiting just
any one turn per abstract cycle is not enough.  This module stages both
failures in the simulator so the deadlock detector can be seen to fire,
and shows that a proper turn-model algorithm survives the identical
workload.

These are *dynamic* demonstrations; the static counterpart is the
Dally-Seitz channel-dependency check in :mod:`repro.core.channel_graph`,
which rejects the same routing relations a priori.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.restrictions import figure4_restriction, fully_adaptive
from repro.routing.base import RoutingAlgorithm
from repro.routing.turn_table import TurnRestrictionRouting
from repro.sim.config import SimulationConfig
from repro.sim.engine import WormholeSimulator
from repro.sim.stats import SimulationResult
from repro.topology.mesh import Mesh, Mesh2D
from repro.traffic.patterns import UniformTraffic
from repro.traffic.workload import SizeDistribution, Workload

__all__ = [
    "RoutableUniformTraffic",
    "unrestricted_adaptive_routing",
    "figure4_routing",
    "run_deadlock_demo",
    "southeast_shift_pattern",
    "run_figure4_demo",
]


def unrestricted_adaptive_routing(topology: Mesh) -> TurnRestrictionRouting:
    """Minimal adaptive routing with *no* prohibited turns (Figure 1).

    Maximally adaptive and unsafe: all left-turn and right-turn cycles
    remain, so packets can enter the circular wait of Figure 1.
    """
    return TurnRestrictionRouting(
        topology, fully_adaptive(topology.n_dims), minimal=True,
        name="unrestricted-adaptive",
    )


def figure4_routing(topology: Mesh) -> TurnRestrictionRouting:
    """Adaptive routing under Figure 4's faulty prohibition.

    Nonminimal mode is required: prohibiting east-to-south together with
    south-to-east leaves a packet that needs both moves without any
    minimal path, so the faulty algorithm must detour (another symptom of
    how badly chosen the pair is).  The remaining cycles still allow
    deadlock, which is the point of the demonstration.
    """
    return TurnRestrictionRouting(
        topology, figure4_restriction(), minimal=False, name="figure-4-faulty"
    )


class RoutableUniformTraffic(UniformTraffic):
    """Uniform traffic restricted to pairs the algorithm can route at all.

    Figure 4's faulty prohibition does not just allow deadlock — on a
    finite mesh it disconnects some corner destinations outright (a
    packet needing both east and south moves cannot make its final hop at
    the mesh edge).  The demo filters those pairs out so the run
    exercises the *deadlock* failure, not the connectivity one.
    """

    name = "uniform-routable"

    def __init__(self, routing: RoutingAlgorithm):
        super().__init__(routing.topology)
        self._routable = {
            src: [
                dst
                for dst in self.topology.nodes()
                if dst != src and routing.route(None, src, dst)
            ]
            for src in self.topology.nodes()
        }

    def destination(self, src, rng):
        choices = self._routable[src]
        if not choices:
            return None
        return choices[rng.randrange(len(choices))]

    def destination_distribution(self, src):
        choices = self._routable[src]
        weight = 1.0 / len(choices) if choices else 0.0
        return [(dst, weight) for dst in choices]


def run_deadlock_demo(
    routing: Union[RoutingAlgorithm, None] = None,
    mesh_side: int = 4,
    offered_load: float = 0.5,
    packet_flits: int = 16,
    max_cycles: int = 20_000,
    detector_threshold: int = 500,
    seed: int = 3,
) -> SimulationResult:
    """Drive a routing algorithm into (or through) heavy random traffic.

    With the default unrestricted adaptive routing the run ends with
    ``result.deadlocked == True`` within a few hundred cycles; with any of
    the turn-model algorithms the same workload completes deadlock free.

    Args:
        routing: algorithm under test; defaults to the unsafe
            unrestricted adaptive routing on a fresh mesh.
        mesh_side: side of the square mesh (used when ``routing`` is
            ``None``).
        offered_load: injection rate, deliberately high.
        packet_flits: fixed packet size — long enough that a packet spans
            several routers, the precondition for a circular wait.
        max_cycles: simulation horizon.
        detector_threshold: stall cycles before deadlock is declared.
        seed: workload seed (the demo is deterministic given the seed).

    Returns:
        The run's result; check ``result.deadlocked``.
    """
    if routing is None:
        routing = unrestricted_adaptive_routing(Mesh2D(mesh_side, mesh_side))
    topology = routing.topology
    workload = Workload(
        pattern=RoutableUniformTraffic(routing),
        sizes=SizeDistribution.fixed(packet_flits),
        offered_load=offered_load,
        seed=seed,
    )
    config = SimulationConfig(
        warmup_cycles=0,
        measure_cycles=max_cycles,
        drain_cycles=0,
        deadlock_threshold=detector_threshold,
    )
    return WormholeSimulator(routing, workload, config).run()


def southeast_shift_pattern(routing: RoutingAlgorithm, shift: int = 1):
    """Every node sends ``shift`` hops east and ``shift`` hops south.

    Against Figure 4's faulty prohibition this is adversarial: with both
    east-to-south and south-to-east prohibited, a southeast-bound packet
    must detour through the remaining six turns — exactly the turns whose
    composition recreates the two abstract cycles (Figure 4c) — so
    dependency loops form quickly.  Pairs the faulty algorithm cannot
    route at all (near the mesh edge) are dropped.
    """
    from repro.traffic.patterns import PermutationTraffic

    topology = routing.topology
    k_x, k_y = topology.shape

    def permute(node):
        x, y = node
        dest = ((x + shift) % k_x, (y - shift) % k_y)
        if dest == node or not routing.route(None, node, dest):
            return node
        return dest

    return PermutationTraffic(topology, permute, "southeast-shift")


def run_figure4_demo(
    mesh_side: int = 5,
    offered_load: float = 0.8,
    packet_flits: int = 24,
    max_cycles: int = 12_000,
    detector_threshold: int = 500,
    seed: int = 0,
) -> SimulationResult:
    """Deadlock Figure 4's faulty algorithm with southeast-shift traffic.

    Returns a result with ``deadlocked == True`` for the default
    parameters; running any valid turn-model algorithm (e.g. west-first)
    on the same workload completes deadlock free — see the companion
    tests.
    """
    routing = figure4_routing(Mesh2D(mesh_side, mesh_side))
    workload = Workload(
        pattern=southeast_shift_pattern(routing),
        sizes=SizeDistribution.fixed(packet_flits),
        offered_load=offered_load,
        seed=seed,
    )
    config = SimulationConfig(
        warmup_cycles=0,
        measure_cycles=max_cycles,
        drain_cycles=0,
        deadlock_threshold=detector_threshold,
    )
    return WormholeSimulator(routing, workload, config).run()
