"""Channel states: the network resources packets hold and contend for.

Each unidirectional channel has a flit buffer at its receiving end — the
paper's routers buffer a single flit per input channel (Section 6) — and,
under wormhole flow control, an owner: the packet whose header was granted
the channel, which holds it until its tail flit moves on.

Besides the network channels of the topology, every node has an injection
channel (processor to router) and an ejection channel (router to
processor), matching the paper's "pair of unidirectional channels connects
... each router to its local processor".
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.topology.channels import Channel, NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.packet import Packet

__all__ = ["ChannelState", "NETWORK", "INJECTION", "EJECTION"]

#: Channel kinds.
NETWORK = "network"
INJECTION = "injection"
EJECTION = "ejection"


class ChannelState:
    """Run-time state of one channel: its buffer fill and its owner.

    Attributes:
        kind: ``NETWORK``, ``INJECTION``, or ``EJECTION``.
        channel: the topology channel (``None`` for injection/ejection).
        node: for injection/ejection channels, the node they serve.
        capacity: buffer depth in flits (the paper uses 1).
        count: flits currently buffered.
        owner: packet holding the channel, or ``None`` if free.
        wake: ``(packet, park_token)`` entries of parked packets to wake
            when this channel is released (engine-managed; entries whose
            token is stale are ignored).
        dest_node: the node a flit is at after crossing this channel,
            precomputed for the routing hot path.
        rank: the output-selection sort key of this channel under a pure
            ranking policy (engine-assigned; ``None`` otherwise).
    """

    __slots__ = ("kind", "channel", "node", "capacity", "count", "owner",
                 "wake", "dest_node", "rank")

    def __init__(
        self,
        kind: str,
        capacity: int,
        channel: Optional[Channel] = None,
        node: Optional[NodeId] = None,
    ):
        if capacity < 1:
            raise ValueError(f"buffer capacity must be at least 1, got {capacity}")
        if kind == NETWORK and channel is None:
            raise ValueError("network channel states need a topology channel")
        if kind in (INJECTION, EJECTION) and node is None:
            raise ValueError(f"{kind} channel states need a node")
        self.kind = kind
        self.channel = channel
        self.node = node
        self.capacity = capacity
        self.count = 0
        self.owner: Optional["Packet"] = None
        self.wake: list = []
        self.dest_node: NodeId = channel.dst if kind == NETWORK else node  # type: ignore[union-attr,assignment]
        self.rank: Optional[tuple] = None

    @property
    def free_space(self) -> int:
        """Free flit slots in the buffer."""
        return self.capacity - self.count

    @property
    def is_free(self) -> bool:
        """Whether the channel can be allocated to a new packet."""
        return self.owner is None

    def destination_node(self) -> NodeId:
        """The node a flit is at after crossing this channel."""
        return self.dest_node

    def __repr__(self) -> str:
        where = self.channel if self.kind == NETWORK else self.node
        owner = f" owner=#{self.owner.pid}" if self.owner else ""
        return f"ChannelState({self.kind} {where}, {self.count}/{self.capacity}{owner})"
