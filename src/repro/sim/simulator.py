"""One-call convenience API over the wormhole simulator.

``simulate(...)`` wires together a topology, a routing algorithm, a traffic
pattern, and a workload, runs the engine, and returns the
:class:`~repro.sim.stats.SimulationResult`.  This is the entry point the
examples and the benchmark harness use; power users can assemble
:class:`~repro.sim.engine.WormholeSimulator` directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from repro.routing.base import RoutingAlgorithm
from repro.routing.cache import RouteCache
from repro.routing.registry import make_routing
from repro.sim.config import SimulationConfig
from repro.sim.engine import WormholeSimulator
from repro.sim.stats import SimulationResult
from repro.topology.base import Topology
from repro.traffic.patterns import TrafficPattern
from repro.traffic.permutations import make_pattern
from repro.traffic.workload import PAPER_SIZES, SizeDistribution, Workload

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.obs.metrics import MetricsCollector

__all__ = ["simulate"]


def simulate(
    topology: Topology,
    routing: Union[str, RoutingAlgorithm],
    pattern: Union[str, TrafficPattern],
    offered_load: float,
    sizes: SizeDistribution = PAPER_SIZES,
    config: Optional[SimulationConfig] = None,
    seed: int = 1,
    obs: Optional["MetricsCollector"] = None,
    route_source: Optional[RouteCache] = None,
    core: str = "object",
) -> SimulationResult:
    """Simulate one (routing, pattern, load) point and return its result.

    Args:
        topology: the network to simulate.
        routing: a routing algorithm instance, or a registry name such as
            ``"xy"``, ``"negative-first"``, or ``"p-cube"``.
        pattern: a traffic pattern instance, or a name such as
            ``"uniform"``, ``"transpose"``, or ``"reverse-flip"``.
        offered_load: requested injection rate in flits per node per
            cycle (fraction of channel bandwidth).
        sizes: packet-size distribution; defaults to the paper's
            10-or-200-flit bimodal mix.
        config: simulator configuration; defaults reproduce Section 6.
        seed: workload RNG seed.
        obs: optional :class:`~repro.obs.metrics.MetricsCollector`;
            bit-invisible sampling of channel utilization, latency, and
            throughput (read its ``summary()`` after the call).
        route_source: optional shared raw route cache for the same
            algorithm (:mod:`repro.analysis.prewarm`); bit-invisible to
            the result, it only skips recomputing known routes.
        core: engine core — ``"object"`` (reference) or ``"flat"``
            (compiled integer-indexed hot path, bit-identical; see
            :mod:`repro.sim.flatcore`).  ``"flat"`` falls back to the
            object core when an unsupported feature (an obs collector)
            is requested.

    Returns:
        The run's :class:`SimulationResult`.
    """
    if isinstance(routing, str):
        routing = make_routing(routing, topology)
    if isinstance(pattern, str):
        pattern = make_pattern(pattern, topology)
    workload = Workload(
        pattern=pattern, sizes=sizes, offered_load=offered_load, seed=seed
    )
    if core == "object":
        simulator: WormholeSimulator = WormholeSimulator(
            routing, workload, config, obs=obs, route_source=route_source
        )
    else:
        from repro.sim.flatcore import make_simulator

        simulator = make_simulator(
            routing, workload, config, core=core, obs=obs,
            route_source=route_source,
        )
    return simulator.run()
