"""Simulation configuration.

Defaults reproduce the Section 6 setup: one-flit input buffers, equal
channel bandwidths of 20 flits/usec (one cycle = one flit time = 0.05
usec), local first-come-first-served input selection, the xy output
selection policy, and minimal routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.routing.selection import (
    FCFSInputSelection,
    InputSelectionPolicy,
    OutputSelectionPolicy,
    XYSelection,
)

__all__ = ["SimulationConfig", "FLITS_PER_USEC"]

#: Channel bandwidth of the paper's networks, in flits per microsecond.
FLITS_PER_USEC = 20.0


@dataclass
class SimulationConfig:
    """Knobs for one simulation run.

    Attributes:
        buffer_depth: flit buffer per input channel (paper: 1).
        warmup_cycles: cycles discarded before measurement begins.
        measure_cycles: length of the measurement window.
        drain_cycles: extra cycles after the window so packets created
            inside it can finish and contribute latency samples.
        output_policy: output selection policy (paper: xy).
        input_policy: input selection policy (paper: local FCFS).
        routing_delay_cycles: cycles a router takes to make a routing
            decision for a header, at least 1 (the default, matching the
            paper's single-flit-time node delay).  Section 7 notes that
            adaptive routing "can require more complex control logic for
            route selection ... and this may increase node delay"; raise
            this to model slower route selection (the node-delay ablation
            benchmark sweeps it).
        deadlock_threshold: cycles without any flit movement, while
            packets are in flight, before the run is declared deadlocked.
        flits_per_usec: channel bandwidth used to convert cycles to
            microseconds.
        seed: RNG seed for the selection policies' randomness (the
            workload carries its own seed).
        max_packets: optional hard cap on injected packets, for bounded
            unit tests; ``None`` means unlimited.
    """

    buffer_depth: int = 1
    warmup_cycles: int = 2_000
    measure_cycles: int = 10_000
    drain_cycles: int = 4_000
    output_policy: OutputSelectionPolicy = field(default_factory=XYSelection)
    input_policy: InputSelectionPolicy = field(default_factory=FCFSInputSelection)
    routing_delay_cycles: int = 1
    deadlock_threshold: int = 2_000
    flits_per_usec: float = FLITS_PER_USEC
    seed: int = 1
    max_packets: int | None = None

    def __post_init__(self) -> None:
        if self.buffer_depth < 1:
            raise ValueError(f"buffer depth must be >= 1: {self.buffer_depth}")
        if min(self.warmup_cycles, self.measure_cycles, self.drain_cycles) < 0:
            raise ValueError("cycle counts must be non-negative")
        if self.measure_cycles == 0:
            raise ValueError("measurement window must be non-empty")
        if self.routing_delay_cycles < 1:
            raise ValueError(
                f"routing delay must be at least 1 cycle: {self.routing_delay_cycles}"
            )
        if self.flits_per_usec <= 0:
            raise ValueError(f"bandwidth must be positive: {self.flits_per_usec}")

    @property
    def total_cycles(self) -> int:
        """Total cycles simulated."""
        return self.warmup_cycles + self.measure_cycles + self.drain_cycles

    @property
    def cycle_time_usec(self) -> float:
        """Duration of one cycle (one flit time) in microseconds."""
        return 1.0 / self.flits_per_usec
