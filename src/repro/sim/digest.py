"""Canonical digests of simulation outcomes.

Engine optimizations in this repository are required to be *bit-identical*:
for the same topology, routing, workload, seed, and configuration, the
optimized hot path must produce exactly the same
:class:`~repro.sim.stats.SimulationResult` and the same trace event
sequence as the reference path.  This module defines the canonical
serialization both the golden-digest regression tests
(``tests/sim/test_determinism.py``) and the benchmark harness
(``repro bench``) hash to enforce that contract.

The serialization is plain JSON with sorted keys; floats go through
``repr`` (via ``json``), which is exact for Python floats, so any change
in any field — including a low-order bit of an average — changes the
digest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Optional

from repro.sim.stats import SimulationResult
from repro.sim.trace import TraceRecorder

__all__ = ["result_to_canonical", "result_digest", "trace_digest", "run_digest"]


def _jsonable(value):
    """Make a value JSON-serializable without losing information."""
    if isinstance(value, dict):
        # JSON object keys must be strings; keep sort order stable.
        return {str(k): _jsonable(v) for k, v in sorted(value.items(), key=repr)}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def result_to_canonical(result: SimulationResult) -> str:
    """The canonical JSON serialization of a result (all fields)."""
    return json.dumps(_jsonable(asdict(result)), sort_keys=True)


def result_digest(result: SimulationResult) -> str:
    """SHA-256 hex digest of the canonical result serialization."""
    payload = result_to_canonical(result).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def trace_digest(trace: TraceRecorder) -> str:
    """SHA-256 hex digest of the full ordered trace event sequence."""
    lines = [
        f"{event.cycle}|{event.kind}|{event.pid}|{event.detail!r}"
        for event in trace.events
    ]
    payload = "\n".join(lines).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def run_digest(result: SimulationResult, trace: Optional[TraceRecorder] = None) -> str:
    """Joint digest of a run: the result plus (optionally) its trace."""
    parts = [result_to_canonical(result)]
    if trace is not None:
        parts.append(trace_digest(trace))
    payload = "\n#\n".join(parts).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()
