"""Packets in flight.

Wormhole routing divides messages into packets and packets into flits; the
header flits lead the packet through the network and the remaining flits
follow in a pipeline (Section 1).  The paper's workload sends one-packet
messages, so the simulator's unit of bookkeeping is the packet.

Rather than materializing a Python object per flit, a packet records the
chain of channels it currently occupies (``path``) and how many of its
flits sit in each channel's buffer (``occupancy``).  Wormhole flow control
moves flits only forward along this chain, one flit per channel per cycle,
so counts are a lossless representation; it is also what makes the
simulator fast enough for 256-node networks in pure Python.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.topology.channels import NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.resources import ChannelState

__all__ = ["Packet"]


class Packet:
    """One packet travelling from ``src`` to ``dest``.

    Attributes:
        pid: unique id, in injection order.
        src, dest: endpoint nodes.
        size: length in flits.
        create_time: simulation time (cycles, fractional) the message was
            generated at its source processor.
        inject_cycle: cycle the header flit entered the injection buffer.
        path: channel states currently held, source end first.
        occupancy: flits of this packet buffered in each held channel.
        remaining_to_inject: flits still waiting at the source.
        flits_consumed: flits delivered to the destination processor.
        header_present: the header flit sits in ``path[-1]``'s buffer and
            the packet needs (or is waiting for) its next channel.
        waiting_since: cycle the header arrived at the current router —
            the key for local first-come-first-served arbitration.
        route_complete: the ejection channel has been allocated; no
            further routing decisions remain.
        stalled: no internal movement is possible until the next grant;
            lets the engine skip the packet's movement pass.
        parked: the header is blocked and the packet has left the waiter
            list; a candidate channel's release will wake it.
        park_token: generation counter distinguishing the current parking
            from stale wake-list entries left by earlier ones.
        pending_candidates: cached routing candidates for the current
            router, computed once per router visit.
        hops: network channels traversed by the header so far.
    """

    __slots__ = (
        "pid",
        "src",
        "dest",
        "size",
        "create_time",
        "inject_cycle",
        "path",
        "occupancy",
        "remaining_to_inject",
        "flits_consumed",
        "header_present",
        "waiting_since",
        "route_complete",
        "stalled",
        "parked",
        "park_token",
        "pending_candidates",
        "hops",
    )

    def __init__(
        self,
        pid: int,
        src: NodeId,
        dest: NodeId,
        size: int,
        create_time: float,
    ):
        self.pid = pid
        self.src = src
        self.dest = dest
        self.size = size
        self.create_time = create_time
        self.inject_cycle: Optional[int] = None
        self.path: List["ChannelState"] = []
        self.occupancy: List[int] = []
        self.remaining_to_inject = size
        self.flits_consumed = 0
        self.header_present = False
        self.waiting_since = 0
        self.route_complete = False
        self.stalled = False
        self.parked = False
        self.park_token = 0
        self.pending_candidates = None
        self.hops = 0

    @property
    def done(self) -> bool:
        """Whether every flit has been consumed at the destination."""
        return self.flits_consumed >= self.size

    @property
    def flits_in_network(self) -> int:
        """Flits currently buffered in channels the packet holds."""
        return sum(self.occupancy)

    def __repr__(self) -> str:
        return (
            f"Packet(#{self.pid}, {self.src}->{self.dest}, size={self.size}, "
            f"consumed={self.flits_consumed})"
        )
