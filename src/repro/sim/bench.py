"""Engine benchmark harness: cycles/sec on fixed scenarios (``repro bench``).

The ROADMAP's "as fast as the hardware allows" needs a number attached
to it.  This module times :class:`~repro.sim.engine.WormholeSimulator`
on a fixed set of paper-scale scenarios — a 16x16 mesh under west-first
routing and a binary 8-cube (256 nodes each), both at low load and at
saturation — and reports, per scenario:

* **cycles/sec** — simulated cycles per wall-clock second, the headline
  engine-speed metric tracked across PRs (``BENCH_engine.json``);
* **flit-moves/sec** — flit transfers per second, a work metric that
  does not reward the idle fast-forward for skipping dead time;
* route-cache occupancy and hit rate, and the executed-vs-simulated
  cycle ratio (how much the fast-forward actually skipped);
* the canonical result digest, so two bench runs on different engine
  versions can be checked for bit-identity at a glance.

Scenario definitions are frozen: changing them invalidates every
recorded baseline, so add new scenarios instead of editing existing
ones.  Run from the CLI::

    repro bench                   # full scenarios, writes BENCH_engine.json
    repro bench --quick           # CI-sized runs
    repro bench --baseline old.json   # print speedups against a recording
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.routing.registry import make_routing
from repro.sim.config import SimulationConfig
from repro.sim.digest import result_digest
from repro.sim.engine import WormholeSimulator
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh2D
from repro.traffic.permutations import make_pattern
from repro.traffic.workload import SizeDistribution, Workload

__all__ = ["BenchScenario", "BENCH_SCENARIOS", "run_bench", "render_report", "main"]

#: Packet sizes used by every bench scenario (mean 14 flits — bimodal
#: like the paper's workload but sized for benchmark turnaround).
_BENCH_SIZES = ((4, 0.5), (24, 0.5))

#: Offered loads for the "low" and "saturation" operating points.
_LOW_LOAD = 0.05
_SAT_LOAD = 0.45


@dataclass(frozen=True)
class BenchScenario:
    """One frozen benchmark point.

    Attributes:
        name: stable identifier (keys ``BENCH_engine.json``).
        description: one-line summary for the report.
        build: ``build(config) -> WormholeSimulator``.
    """

    name: str
    description: str
    build: Callable[[SimulationConfig], WormholeSimulator]


def _simulator(topology, routing_name: str, load: float,
               config: SimulationConfig, seed: int) -> WormholeSimulator:
    routing = make_routing(routing_name, topology)
    workload = Workload(
        pattern=make_pattern("uniform", topology),
        sizes=SizeDistribution(_BENCH_SIZES),
        offered_load=load,
        seed=seed,
    )
    return WormholeSimulator(routing, workload, config)


BENCH_SCENARIOS: Dict[str, BenchScenario] = {
    scenario.name: scenario
    for scenario in (
        BenchScenario(
            "mesh16-west-first-low",
            "16x16 mesh, west-first, uniform, load 0.05",
            lambda config: _simulator(Mesh2D(16, 16), "west-first",
                                      _LOW_LOAD, config, seed=101),
        ),
        BenchScenario(
            "mesh16-west-first-sat",
            "16x16 mesh, west-first, uniform, load 0.45 (saturation)",
            lambda config: _simulator(Mesh2D(16, 16), "west-first",
                                      _SAT_LOAD, config, seed=102),
        ),
        BenchScenario(
            "cube8-ecube-low",
            "binary 8-cube, e-cube, uniform, load 0.05",
            lambda config: _simulator(Hypercube(8), "e-cube",
                                      _LOW_LOAD, config, seed=103),
        ),
        BenchScenario(
            "cube8-pcube-sat",
            "binary 8-cube, p-cube, uniform, load 0.45 (saturation)",
            lambda config: _simulator(Hypercube(8), "p-cube",
                                      _SAT_LOAD, config, seed=104),
        ),
    )
}


def _bench_config(quick: bool) -> SimulationConfig:
    if quick:
        return SimulationConfig(warmup_cycles=100, measure_cycles=600,
                                drain_cycles=100)
    return SimulationConfig(warmup_cycles=400, measure_cycles=2400,
                            drain_cycles=400)


def _run_one(scenario: BenchScenario, config: SimulationConfig,
             repeat: int) -> dict:
    best: Optional[dict] = None
    for _ in range(max(1, repeat)):
        sim = scenario.build(config)
        start = time.perf_counter()
        result = sim.run()
        wall = time.perf_counter() - start
        cycles = sim.cycle + 1
        record = {
            "description": scenario.description,
            "wall_seconds": wall,
            "cycles_simulated": cycles,
            "cycles_executed": sim.cycles_executed,
            "cycles_per_sec": cycles / wall if wall > 0 else float("inf"),
            "flit_moves": sim.flit_moves,
            "flit_moves_per_sec": sim.flit_moves / wall if wall > 0 else 0.0,
            "packets_delivered": result.total_delivered,
            "deadlocked": result.deadlocked,
            "result_digest": result_digest(result),
        }
        cache = sim.route_cache
        if cache is not None:
            record["route_cache"] = {
                "entries": len(cache),
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": round(cache.hit_rate, 6),
            }
        if best is None or record["wall_seconds"] < best["wall_seconds"]:
            best = record
    assert best is not None
    return best


def run_bench(names: Optional[Iterable[str]] = None, quick: bool = False,
              repeat: int = 1,
              progress: Optional[Callable[[str], None]] = None) -> dict:
    """Run the named scenarios (default: all) and return the payload.

    The payload maps each scenario name to its measurements plus a
    ``meta`` block (mode, interpreter, platform); it serializes directly
    to ``BENCH_engine.json``.
    """
    selected: List[BenchScenario] = []
    for name in (names or BENCH_SCENARIOS):
        try:
            selected.append(BENCH_SCENARIOS[name])
        except KeyError:
            known = ", ".join(sorted(BENCH_SCENARIOS))
            raise KeyError(f"unknown bench scenario {name!r}; known: {known}")
    config = _bench_config(quick)
    payload: dict = {
        "meta": {
            "mode": "quick" if quick else "full",
            "total_cycles": config.total_cycles,
            "repeat": max(1, repeat),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "scenarios": {},
    }
    for scenario in selected:
        if progress is not None:
            progress(f"bench {scenario.name} ({scenario.description}) ...")
        payload["scenarios"][scenario.name] = _run_one(scenario, config, repeat)
    return payload


def apply_baseline(payload: dict, baseline: dict) -> None:
    """Annotate each scenario with its speedup over a recorded baseline."""
    base_scenarios = baseline.get("scenarios", baseline)
    for name, record in payload["scenarios"].items():
        base = base_scenarios.get(name)
        if not base or not base.get("cycles_per_sec"):
            continue
        record["baseline_cycles_per_sec"] = base["cycles_per_sec"]
        record["speedup_vs_baseline"] = (
            record["cycles_per_sec"] / base["cycles_per_sec"]
        )


def render_report(payload: dict) -> str:
    """Human-readable table of one bench payload."""
    lines = [
        f"engine bench ({payload['meta']['mode']}, "
        f"{payload['meta']['total_cycles']} cycles/scenario, "
        f"python {payload['meta']['python']})",
        f"{'scenario':26s} {'cycles/s':>10s} {'fmoves/s':>11s} "
        f"{'executed':>9s} {'cache hit':>9s} {'delivered':>9s}",
    ]
    for name, r in payload["scenarios"].items():
        executed = f"{r['cycles_executed']}/{r['cycles_simulated']}"
        cache = r.get("route_cache")
        hit = f"{cache['hit_rate']:.1%}" if cache else "-"
        line = (
            f"{name:26s} {r['cycles_per_sec']:10.0f} "
            f"{r['flit_moves_per_sec']:11.0f} {executed:>9s} "
            f"{hit:>9s} {r['packets_delivered']:9d}"
        )
        if "speedup_vs_baseline" in r:
            line += f"   x{r['speedup_vs_baseline']:.2f} vs baseline"
        lines.append(line)
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python benchmarks/bench_engine.py``)."""
    import argparse

    parser = argparse.ArgumentParser(description="wormhole engine benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized runs (800 cycles/scenario)")
    parser.add_argument("--scenario", nargs="+", default=None,
                        choices=sorted(BENCH_SCENARIOS),
                        help="subset of scenarios to run")
    parser.add_argument("--repeat", type=int, default=1,
                        help="repetitions per scenario (best wall time wins)")
    parser.add_argument("--baseline", default=None,
                        help="previous BENCH_engine.json to compute speedups")
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output path ('-' to skip writing)")
    args = parser.parse_args(argv)

    payload = run_bench(args.scenario, quick=args.quick, repeat=args.repeat,
                        progress=lambda msg: print(msg, file=sys.stderr))
    if args.baseline:
        with open(args.baseline) as fh:
            apply_baseline(payload, json.load(fh))
    print(render_report(payload))
    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[saved to {args.out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
