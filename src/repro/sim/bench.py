"""Engine benchmark harness: cycles/sec on fixed scenarios (``repro bench``).

The ROADMAP's "as fast as the hardware allows" needs a number attached
to it.  This module times :class:`~repro.sim.engine.WormholeSimulator`
on a fixed set of paper-scale scenarios — a 16x16 mesh under west-first
routing and a binary 8-cube (256 nodes each), both at low load and at
saturation — and reports, per scenario:

* **cycles/sec** — simulated cycles per wall-clock second, the headline
  engine-speed metric tracked across PRs (``BENCH_engine.json``);
* **flit-moves/sec** — flit transfers per second, a work metric that
  does not reward the idle fast-forward for skipping dead time;
* route-cache occupancy and hit rate, and the executed-vs-simulated
  cycle ratio (how much the fast-forward actually skipped);
* the canonical result digest, so two bench runs on different engine
  versions can be checked for bit-identity at a glance.

Scenario definitions are frozen: changing them invalidates every
recorded baseline, so add new scenarios instead of editing existing
ones.  Run from the CLI::

    repro bench                   # full scenarios, writes BENCH_engine.json
    repro bench --quick           # CI-sized runs
    repro bench --baseline old.json   # print speedups against a recording
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.routing.registry import make_routing
from repro.sim.config import SimulationConfig
from repro.sim.digest import result_digest
from repro.sim.engine import WormholeSimulator
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh2D
from repro.traffic.permutations import make_pattern
from repro.traffic.workload import SizeDistribution, Workload

__all__ = ["BenchScenario", "BENCH_SCENARIOS", "run_bench", "render_report", "main"]

#: Packet sizes used by every bench scenario (mean 14 flits — bimodal
#: like the paper's workload but sized for benchmark turnaround).
_BENCH_SIZES = ((4, 0.5), (24, 0.5))

#: Offered loads for the "low" and "saturation" operating points.
_LOW_LOAD = 0.05
_SAT_LOAD = 0.45


@dataclass(frozen=True)
class BenchScenario:
    """One frozen benchmark point.

    Attributes:
        name: stable identifier (keys ``BENCH_engine.json``).
        description: one-line summary for the report.
        build: ``build(config) -> WormholeSimulator``.
        core: which engine core the scenario exercises (``object`` or
            ``flat``); flat scenarios share their object twin's seed and
            workload, so ``run_bench`` cross-checks their digests.
        twin: the same-workload scenario on the other core, if any.
    """

    name: str
    description: str
    build: Callable[[SimulationConfig], WormholeSimulator]
    core: str = "object"
    twin: Optional[str] = None


def _simulator(topology, routing_name: str, load: float,
               config: SimulationConfig, seed: int) -> WormholeSimulator:
    routing = make_routing(routing_name, topology)
    workload = Workload(
        pattern=make_pattern("uniform", topology),
        sizes=SizeDistribution(_BENCH_SIZES),
        offered_load=load,
        seed=seed,
    )
    return WormholeSimulator(routing, workload, config)


def _flat_simulator(topology, routing_name: str, load: float,
                    config: SimulationConfig, seed: int):
    # Construction — compiling the topology and the full prewarmed
    # route table into the flat arrays — is deliberately outside the
    # timed region, like a warm sweep's shared precomputation.
    from repro.analysis.prewarm import build_route_table, serialize_route_table
    from repro.sim.flatcore import make_simulator

    routing = make_routing(routing_name, topology)
    workload = Workload(
        pattern=make_pattern("uniform", topology),
        sizes=SizeDistribution(_BENCH_SIZES),
        offered_load=load,
        seed=seed,
    )
    table = serialize_route_table(topology, build_route_table(routing))
    return make_simulator(routing, workload, config, core="flat",
                          route_table=table)


BENCH_SCENARIOS: Dict[str, BenchScenario] = {
    scenario.name: scenario
    for scenario in (
        BenchScenario(
            "mesh16-west-first-low",
            "16x16 mesh, west-first, uniform, load 0.05",
            lambda config: _simulator(Mesh2D(16, 16), "west-first",
                                      _LOW_LOAD, config, seed=101),
            twin="mesh16-west-first-low-flat",
        ),
        BenchScenario(
            "mesh16-west-first-sat",
            "16x16 mesh, west-first, uniform, load 0.45 (saturation)",
            lambda config: _simulator(Mesh2D(16, 16), "west-first",
                                      _SAT_LOAD, config, seed=102),
            twin="mesh16-west-first-sat-flat",
        ),
        BenchScenario(
            "cube8-ecube-low",
            "binary 8-cube, e-cube, uniform, load 0.05",
            lambda config: _simulator(Hypercube(8), "e-cube",
                                      _LOW_LOAD, config, seed=103),
            twin="cube8-ecube-low-flat",
        ),
        BenchScenario(
            "cube8-pcube-sat",
            "binary 8-cube, p-cube, uniform, load 0.45 (saturation)",
            lambda config: _simulator(Hypercube(8), "p-cube",
                                      _SAT_LOAD, config, seed=104),
            twin="cube8-pcube-sat-flat",
        ),
        BenchScenario(
            "mesh16-west-first-low-flat",
            "16x16 mesh, west-first, uniform, load 0.05 (flat core)",
            lambda config: _flat_simulator(Mesh2D(16, 16), "west-first",
                                           _LOW_LOAD, config, seed=101),
            core="flat",
            twin="mesh16-west-first-low",
        ),
        BenchScenario(
            "mesh16-west-first-sat-flat",
            "16x16 mesh, west-first, uniform, load 0.45 (flat core)",
            lambda config: _flat_simulator(Mesh2D(16, 16), "west-first",
                                           _SAT_LOAD, config, seed=102),
            core="flat",
            twin="mesh16-west-first-sat",
        ),
        BenchScenario(
            "cube8-ecube-low-flat",
            "binary 8-cube, e-cube, uniform, load 0.05 (flat core)",
            lambda config: _flat_simulator(Hypercube(8), "e-cube",
                                           _LOW_LOAD, config, seed=103),
            core="flat",
            twin="cube8-ecube-low",
        ),
        BenchScenario(
            "cube8-pcube-sat-flat",
            "binary 8-cube, p-cube, uniform, load 0.45 (flat core)",
            lambda config: _flat_simulator(Hypercube(8), "p-cube",
                                           _SAT_LOAD, config, seed=104),
            core="flat",
            twin="cube8-pcube-sat",
        ),
    )
}


def _bench_config(quick: bool) -> SimulationConfig:
    if quick:
        return SimulationConfig(warmup_cycles=100, measure_cycles=600,
                                drain_cycles=100)
    return SimulationConfig(warmup_cycles=400, measure_cycles=2400,
                            drain_cycles=400)


def _profile_one(scenario: BenchScenario, config: SimulationConfig,
                 top: int = 25) -> List[dict]:
    """One extra (untimed) run under cProfile; top functions by cumtime."""
    import cProfile
    import pstats

    sim = scenario.build(config)
    profiler = cProfile.Profile()
    profiler.enable()
    sim.run()
    profiler.disable()
    stats = pstats.Stats(profiler)
    rows = []
    for func, (cc, nc, tottime, cumtime, _callers) in stats.stats.items():
        filename, line, name = func
        rows.append({
            "function": name,
            "file": filename,
            "line": line,
            "ncalls": nc,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        })
    rows.sort(key=lambda r: (-r["cumtime"], r["file"], r["line"]))
    return rows[:top]


def _run_one(scenario: BenchScenario, config: SimulationConfig,
             repeat: int, profile: bool = False) -> dict:
    best: Optional[dict] = None
    for _ in range(max(1, repeat)):
        sim = scenario.build(config)
        start = time.perf_counter()
        result = sim.run()
        wall = time.perf_counter() - start
        cycles = sim.cycle + 1
        record = {
            "description": scenario.description,
            "core": sim.core,
            "wall_seconds": wall,
            "cycles_simulated": cycles,
            "cycles_executed": sim.cycles_executed,
            "cycles_per_sec": cycles / wall if wall > 0 else float("inf"),
            "flit_moves": sim.flit_moves,
            "flit_moves_per_sec": sim.flit_moves / wall if wall > 0 else 0.0,
            "packets_delivered": result.total_delivered,
            "deadlocked": result.deadlocked,
            "result_digest": result_digest(result),
        }
        cache = sim.route_cache
        if cache is not None:
            record["route_cache"] = {
                "entries": len(cache),
                "hits": cache.hits,
                "misses": cache.misses,
                "prefilled": cache.prefilled,
                "prefilled_entries": cache.prefilled_entries,
                "hit_rate": round(cache.hit_rate, 6),
            }
        if best is None or record["wall_seconds"] < best["wall_seconds"]:
            best = record
    assert best is not None
    if profile:
        best["profile"] = _profile_one(scenario, config)
    return best


def run_bench(names: Optional[Iterable[str]] = None, quick: bool = False,
              repeat: int = 1,
              progress: Optional[Callable[[str], None]] = None,
              core: Optional[str] = None, profile: bool = False) -> dict:
    """Run the named scenarios (default: all) and return the payload.

    The payload maps each scenario name to its measurements plus a
    ``meta`` block (mode, interpreter, platform); it serializes directly
    to ``BENCH_engine.json``.

    Args:
        core: restrict to scenarios of one engine core (``object`` or
            ``flat``); default runs both.
        profile: attach the top-25 cumulative-time functions (one extra
            untimed cProfile run per scenario) to each record.

    When a scenario and its other-core twin both ran, their result
    digests are cross-checked; a mismatch raises — a flat-core run that
    is not bit-identical must never produce a silent benchmark number.
    """
    selected: List[BenchScenario] = []
    for name in (names or BENCH_SCENARIOS):
        try:
            selected.append(BENCH_SCENARIOS[name])
        except KeyError:
            known = ", ".join(sorted(BENCH_SCENARIOS))
            raise KeyError(f"unknown bench scenario {name!r}; known: {known}")
    if core is not None:
        selected = [s for s in selected if s.core == core]
    config = _bench_config(quick)
    payload: dict = {
        "meta": {
            "mode": "quick" if quick else "full",
            "total_cycles": config.total_cycles,
            "repeat": max(1, repeat),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "scenarios": {},
    }
    for scenario in selected:
        if progress is not None:
            progress(f"bench {scenario.name} ({scenario.description}) ...")
        payload["scenarios"][scenario.name] = _run_one(
            scenario, config, repeat, profile=profile
        )
    scenarios = payload["scenarios"]
    for scenario in selected:
        twin = scenario.twin
        if twin is None or twin not in scenarios:
            continue
        mine = scenarios[scenario.name]["result_digest"]
        theirs = scenarios[twin]["result_digest"]
        if mine != theirs:
            raise RuntimeError(
                f"core digest mismatch: {scenario.name} produced {mine} "
                f"but {twin} produced {theirs} — the flat core is not "
                "bit-identical on this workload"
            )
    return payload


def apply_baseline(payload: dict, baseline: dict) -> None:
    """Annotate each scenario with its speedup over a recorded baseline."""
    base_scenarios = baseline.get("scenarios", baseline)
    for name, record in payload["scenarios"].items():
        base = base_scenarios.get(name)
        if not base or not base.get("cycles_per_sec"):
            continue
        record["baseline_cycles_per_sec"] = base["cycles_per_sec"]
        record["speedup_vs_baseline"] = (
            record["cycles_per_sec"] / base["cycles_per_sec"]
        )


def render_report(payload: dict) -> str:
    """Human-readable table of one bench payload."""
    lines = [
        f"engine bench ({payload['meta']['mode']}, "
        f"{payload['meta']['total_cycles']} cycles/scenario, "
        f"python {payload['meta']['python']})",
        f"{'scenario':31s} {'core':>6s} {'cycles/s':>10s} {'fmoves/s':>11s} "
        f"{'executed':>9s} {'cache hit':>9s} {'delivered':>9s}",
    ]
    for name, r in payload["scenarios"].items():
        executed = f"{r['cycles_executed']}/{r['cycles_simulated']}"
        cache = r.get("route_cache")
        hit = f"{cache['hit_rate']:.1%}" if cache else "-"
        line = (
            f"{name:31s} {r.get('core', 'object'):>6s} "
            f"{r['cycles_per_sec']:10.0f} "
            f"{r['flit_moves_per_sec']:11.0f} {executed:>9s} "
            f"{hit:>9s} {r['packets_delivered']:9d}"
        )
        if "speedup_vs_baseline" in r:
            line += f"   x{r['speedup_vs_baseline']:.2f} vs baseline"
        lines.append(line)
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python benchmarks/bench_engine.py``)."""
    import argparse

    parser = argparse.ArgumentParser(description="wormhole engine benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized runs (800 cycles/scenario)")
    parser.add_argument("--scenario", nargs="+", default=None,
                        choices=sorted(BENCH_SCENARIOS),
                        help="subset of scenarios to run")
    parser.add_argument("--repeat", type=int, default=1,
                        help="repetitions per scenario (best wall time wins)")
    parser.add_argument("--core", choices=("object", "flat"), default=None,
                        help="restrict to one engine core (default: both)")
    parser.add_argument("--profile", action="store_true",
                        help="attach top-25 cProfile functions per scenario")
    parser.add_argument("--baseline", default=None,
                        help="previous BENCH_engine.json to compute speedups")
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output path ('-' to skip writing)")
    args = parser.parse_args(argv)

    payload = run_bench(args.scenario, quick=args.quick, repeat=args.repeat,
                        progress=lambda msg: print(msg, file=sys.stderr),
                        core=args.core, profile=args.profile)
    if args.baseline:
        with open(args.baseline) as fh:
            apply_baseline(payload, json.load(fh))
    print(render_report(payload))
    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[saved to {args.out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
