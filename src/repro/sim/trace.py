"""Event tracing for the simulator.

A :class:`TraceRecorder` passed to :class:`~repro.sim.engine
.WormholeSimulator` records the packet-level events of a run — creation,
injection, every channel grant, completion, deadlock, and (under runtime
fault injection) faults, drops, and retransmissions — with a hard cap so
a saturated run cannot exhaust memory.  Traces make routing behavior
inspectable ("which path did packet 17 actually take?"), power the
path-replay assertions in the test suite, and serialize to JSON Lines
(:meth:`TraceRecorder.to_jsonl`) so fault runs are replayable offline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import IO, List, Union

from repro.topology.channels import Channel

__all__ = ["TraceEvent", "TraceRecorder"]

#: Event kinds.
CREATED = "created"
INJECTED = "injected"
GRANTED = "granted"
EJECT_GRANTED = "eject-granted"
DELIVERED = "delivered"
DEADLOCK = "deadlock"
#: A scheduled link transition was applied; detail is (fail|heal, channel).
FAULT = "fault"
#: A casualty was discarded for good; detail is (src, dest).
DROPPED = "dropped"
#: A casualty was queued for source retransmission; detail is
#: (src, dest, backoff delay in cycles).
RETRANSMITTED = "retransmitted"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes:
        cycle: simulation cycle of the event.
        kind: one of ``created``, ``injected``, ``granted``,
            ``eject-granted``, ``delivered``, ``deadlock``, ``fault``,
            ``dropped``, ``retransmitted``.
        pid: packet id (-1 for network-wide events).
        detail: event-specific payload — the granted channel, the
            (source, destination) pair, etc.
    """

    cycle: int
    kind: str
    pid: int
    detail: object = None

    def __str__(self) -> str:
        return f"[{self.cycle:6d}] #{self.pid} {self.kind} {self.detail or ''}"


def _encode_detail(detail: object) -> object:
    """A JSON-ready encoding of an event detail; inverse of
    :func:`_decode_detail`.

    Details are scalars, nodes/endpoint tuples, channels, or tuples
    mixing those, so tuples and channels get tagged dict encodings and
    everything else passes through as-is.
    """
    if isinstance(detail, Channel):
        from repro.resilience.schedule import channel_to_dict

        return {"__kind__": "channel", **channel_to_dict(detail)}
    if isinstance(detail, tuple):
        return {
            "__kind__": "tuple",
            "items": [_encode_detail(item) for item in detail],
        }
    return detail


def _decode_detail(payload: object) -> object:
    """Rebuild a detail saved by :func:`_encode_detail`."""
    if isinstance(payload, dict):
        kind = payload.get("__kind__")
        if kind == "channel":
            from repro.resilience.schedule import channel_from_dict

            return channel_from_dict(payload)
        if kind == "tuple":
            return tuple(_decode_detail(item) for item in payload["items"])
    if isinstance(payload, list):
        return tuple(_decode_detail(item) for item in payload)
    return payload


class TraceRecorder:
    """Collects trace events up to a cap.

    Args:
        max_events: recording stops (and ``truncated`` is set) once this
            many events are stored.
    """

    def __init__(self, max_events: int = 100_000):
        if max_events < 1:
            raise ValueError(f"max_events must be positive: {max_events}")
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.truncated = False

    def record(self, cycle: int, kind: str, pid: int, detail=None) -> None:
        """Store one event (drops silently once the cap is hit)."""
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append(TraceEvent(cycle, kind, pid, detail))

    def for_packet(self, pid: int) -> List[TraceEvent]:
        """The events of one packet, in order."""
        return [event for event in self.events if event.pid == pid]

    def path_of(self, pid: int) -> list:
        """The channels granted to a packet, in traversal order."""
        return [
            event.detail
            for event in self.events
            if event.pid == pid and event.kind == GRANTED
        ]

    def kinds(self) -> List[str]:
        """The sequence of event kinds (handy for assertions)."""
        return [event.kind for event in self.events]

    def __len__(self) -> int:
        return len(self.events)

    # -- serialization -------------------------------------------------

    def to_jsonl(self, path: Union[str, "IO[str]"]) -> None:
        """Write the trace as JSON Lines; inverse of :meth:`from_jsonl`.

        One event per line plus a leading header line recording the cap
        and truncation flag, so an offline replay knows whether it is
        looking at a complete run.

        Args:
            path: a file path, or an open text stream.
        """
        if hasattr(path, "write"):
            self._write_jsonl(path)  # type: ignore[arg-type]
            return
        with open(path, "w", encoding="utf-8") as handle:
            self._write_jsonl(handle)

    def _write_jsonl(self, handle: "IO[str]") -> None:
        header = {
            "__kind__": "trace-header",
            "max_events": self.max_events,
            "truncated": self.truncated,
            "events": len(self.events),
        }
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for event in self.events:
            record = {
                "cycle": event.cycle,
                "kind": event.kind,
                "pid": event.pid,
                "detail": _encode_detail(event.detail),
            }
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    @classmethod
    def from_jsonl(cls, path: Union[str, "IO[str]"]) -> "TraceRecorder":
        """Rebuild a recorder saved by :meth:`to_jsonl`.

        Round-trips events exactly (channels and tuples included), plus
        the cap and truncation flag.
        """
        if hasattr(path, "read"):
            lines = list(path)  # type: ignore[arg-type]
        else:
            with open(path, encoding="utf-8") as handle:
                lines = list(handle)
        rows = [json.loads(line) for line in lines if line.strip()]
        if not rows or rows[0].get("__kind__") != "trace-header":
            raise ValueError("not a trace JSONL file (missing header line)")
        header = rows[0]
        recorder = cls(max_events=int(header["max_events"]))
        for row in rows[1:]:
            recorder.events.append(
                TraceEvent(
                    cycle=int(row["cycle"]),
                    kind=str(row["kind"]),
                    pid=int(row["pid"]),
                    detail=_decode_detail(row["detail"]),
                )
            )
        recorder.truncated = bool(header["truncated"])
        return recorder
