"""Event tracing for the simulator.

A :class:`TraceRecorder` passed to :class:`~repro.sim.engine
.WormholeSimulator` records the packet-level events of a run — creation,
injection, every channel grant, completion, and deadlock — with a hard
cap so a saturated run cannot exhaust memory.  Traces make routing
behavior inspectable ("which path did packet 17 actually take?") and
power the path-replay assertions in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["TraceEvent", "TraceRecorder"]

#: Event kinds.
CREATED = "created"
INJECTED = "injected"
GRANTED = "granted"
EJECT_GRANTED = "eject-granted"
DELIVERED = "delivered"
DEADLOCK = "deadlock"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes:
        cycle: simulation cycle of the event.
        kind: one of ``created``, ``injected``, ``granted``,
            ``eject-granted``, ``delivered``, ``deadlock``.
        pid: packet id (-1 for network-wide events).
        detail: event-specific payload — the granted channel, the
            (source, destination) pair, etc.
    """

    cycle: int
    kind: str
    pid: int
    detail: object = None

    def __str__(self) -> str:
        return f"[{self.cycle:6d}] #{self.pid} {self.kind} {self.detail or ''}"


class TraceRecorder:
    """Collects trace events up to a cap.

    Args:
        max_events: recording stops (and ``truncated`` is set) once this
            many events are stored.
    """

    def __init__(self, max_events: int = 100_000):
        if max_events < 1:
            raise ValueError(f"max_events must be positive: {max_events}")
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.truncated = False

    def record(self, cycle: int, kind: str, pid: int, detail=None) -> None:
        """Store one event (drops silently once the cap is hit)."""
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append(TraceEvent(cycle, kind, pid, detail))

    def for_packet(self, pid: int) -> List[TraceEvent]:
        """The events of one packet, in order."""
        return [event for event in self.events if event.pid == pid]

    def path_of(self, pid: int) -> list:
        """The channels granted to a packet, in traversal order."""
        return [
            event.detail
            for event in self.events
            if event.pid == pid and event.kind == GRANTED
        ]

    def kinds(self) -> List[str]:
        """The sequence of event kinds (handy for assertions)."""
        return [event.kind for event in self.events]

    def __len__(self) -> int:
        return len(self.events)
