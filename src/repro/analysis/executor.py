"""Parallel sweep execution with on-disk result caching.

Every paper figure and benchmark is a grid of independent
``(routing, pattern, load)`` simulation points — an embarrassingly
parallel workload that the serial :func:`repro.analysis.sweep.sweep_loads`
loop leaves on the table.  This module supplies the execution engine the
rest of the harness routes through:

* :class:`ExperimentSpec` — a frozen, picklable, content-hashable
  description of one simulation point (topology spec string, routing
  name, pattern name, load, packet sizes, config, seed).  Because it is
  all primitives, it crosses process boundaries and hashes stably.
* :class:`PointSpec` — one executor job: a spec plus the series label
  and index that route its result back into a sweep.
* :class:`ResultCache` — an on-disk store keyed by the spec's content
  hash, so re-running a figure only simulates the missing points.
* :class:`SweepExecutor` — fans points out over a *persistent*
  :mod:`concurrent.futures` process pool (``jobs > 1``, kept alive
  across ``run_points`` calls) or runs them in-process (``jobs == 1``,
  the deterministic default for tests), with progress/metrics surfaced
  through :class:`ExecutorHooks`.

Sweep grids repeat the same few ``(topology, algorithm)`` pairs across
many loads, so the executor amortizes construction through
:mod:`repro.analysis.prewarm`: points are batched by pair, each batch
reuses one warm context (shared topology/routing objects plus an
accumulated raw route table), and prewarmable pairs get their full
route table precomputed once and shared with workers — by fork
inheritance when the pool has not started yet, or as a compact
serialized artifact shipped with the batch otherwise.

Per-point results are bit-identical between the serial, parallel, and
warmed paths because each point is simulated from its spec alone: same
seeds, same config, and the only shared state is immutable objects and
memoized pure routing decisions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO, Tuple, Union

from repro.analysis.prewarm import (
    WarmContext,
    get_warm_context,
    load_route_table,
    prewarm_route_table,
    serialize_route_table,
)
from repro.obs.spec import ObsSpec
from repro.routing.base import RoutingAlgorithm
from repro.routing.cache import RouteCache
from repro.routing.registry import canonical_name, make_routing
from repro.routing.selection import make_input_policy, make_output_policy
from repro.sim.config import FLITS_PER_USEC, SimulationConfig
from repro.sim.simulator import simulate
from repro.sim.stats import SimulationResult
from repro.topology.base import Topology
from repro.topology.spec import parse_topology, topology_spec
from repro.traffic.patterns import TrafficPattern
from repro.traffic.permutations import make_pattern
from repro.traffic.workload import PAPER_SIZES, SizeDistribution

__all__ = [
    "SPEC_VERSION",
    "ConfigSpec",
    "ResilienceSpec",
    "ExperimentSpec",
    "PointSpec",
    "PointOutcome",
    "ResolvedSpec",
    "RunResult",
    "resolve_spec",
    "run_spec",
    "ExecutorHooks",
    "ExecutorMetrics",
    "ProgressPrinter",
    "ResultCache",
    "SweepExecutor",
]

#: Version tag mixed into every content hash.  Bump it when simulator
#: semantics change in a way that invalidates archived results.
SPEC_VERSION = 1


@dataclass(frozen=True)
class ConfigSpec:
    """A :class:`SimulationConfig` flattened to hashable primitives.

    Selection policies are carried by registry name rather than by
    instance so the spec can be pickled to workers and content-hashed.
    Field defaults mirror :class:`SimulationConfig`'s.
    """

    buffer_depth: int = 1
    warmup_cycles: int = 2_000
    measure_cycles: int = 10_000
    drain_cycles: int = 4_000
    output_policy: str = "xy"
    input_policy: str = "fcfs"
    routing_delay_cycles: int = 1
    deadlock_threshold: int = 2_000
    flits_per_usec: float = FLITS_PER_USEC
    seed: int = 1
    max_packets: Optional[int] = None

    @classmethod
    def from_config(cls, config: Optional[SimulationConfig]) -> "ConfigSpec":
        """Flatten a config; ``None`` yields the defaults.

        Raises:
            ValueError: if a selection policy is not a registered one
                (custom policy instances cannot be carried by name).
        """
        if config is None:
            return cls()
        output_name = config.output_policy.name
        input_name = config.input_policy.name
        # Verify the names round-trip to the same policy types, so a
        # custom instance that borrowed a stock name is not silently
        # swapped for the stock behavior in a worker process.
        if type(make_output_policy(output_name)) is not type(config.output_policy):
            raise ValueError(
                f"output policy {output_name!r} is not the registered one"
            )
        if type(make_input_policy(input_name)) is not type(config.input_policy):
            raise ValueError(
                f"input policy {input_name!r} is not the registered one"
            )
        return cls(
            buffer_depth=config.buffer_depth,
            warmup_cycles=config.warmup_cycles,
            measure_cycles=config.measure_cycles,
            drain_cycles=config.drain_cycles,
            output_policy=output_name,
            input_policy=input_name,
            routing_delay_cycles=config.routing_delay_cycles,
            deadlock_threshold=config.deadlock_threshold,
            flits_per_usec=config.flits_per_usec,
            seed=config.seed,
            max_packets=config.max_packets,
        )

    def to_config(self) -> SimulationConfig:
        """Rebuild the equivalent :class:`SimulationConfig`."""
        return SimulationConfig(
            buffer_depth=self.buffer_depth,
            warmup_cycles=self.warmup_cycles,
            measure_cycles=self.measure_cycles,
            drain_cycles=self.drain_cycles,
            output_policy=make_output_policy(self.output_policy),
            input_policy=make_input_policy(self.input_policy),
            routing_delay_cycles=self.routing_delay_cycles,
            deadlock_threshold=self.deadlock_threshold,
            flits_per_usec=self.flits_per_usec,
            seed=self.seed,
            max_packets=self.max_packets,
        )

    @property
    def total_cycles(self) -> int:
        """Cycles one simulation of this config runs."""
        return self.warmup_cycles + self.measure_cycles + self.drain_cycles


@dataclass(frozen=True)
class ResilienceSpec:
    """Runtime fault injection for one point, as pure data.

    Describes the :class:`~repro.resilience.FaultController` a run
    builds: how many links fail (seed-derived, inside ``window``), the
    recovery policy for casualties, and whether degraded configurations
    are re-certified deadlock-free.  Lives here — not in
    :mod:`repro.resilience` — because it is part of the executor's
    picklable, content-hashable spec vocabulary; the live controller is
    built lazily at run time.

    Attributes:
        fault_count: distinct channels to fail.
        fault_seed: RNG seed the fault schedule derives from.
        policy: recovery policy name (``drop``, ``retransmit``,
            ``abort``).
        heal_after: cycles until each fault heals (``None`` = permanent).
        recertify: re-prove each degraded configuration deadlock-free
            (the CLI's ``--no-recertify`` clears this).
        require_connected: resample the fault set (bounded) so the fully
            degraded topology stays strongly connected.
        window: half-open cycle range faults strike in; ``None`` uses
            the run's measurement window.
        retransmit_base_delay, retransmit_delay_cap,
        retransmit_max_attempts: backoff shape for the ``retransmit``
            policy (ignored by the others).
    """

    fault_count: int = 0
    fault_seed: int = 1
    policy: str = "drop"
    heal_after: Optional[int] = None
    recertify: bool = True
    require_connected: bool = True
    window: Optional[Tuple[int, int]] = None
    retransmit_base_delay: int = 8
    retransmit_delay_cap: int = 512
    retransmit_max_attempts: int = 8

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy", self.policy.strip().lower())
        if self.window is not None:
            object.__setattr__(
                self, "window", tuple(int(edge) for edge in self.window)
            )
        if self.fault_count < 0:
            raise ValueError(f"fault_count must be >= 0: {self.fault_count}")


@dataclass(frozen=True)
class ExperimentSpec:
    """One simulation point as pure data.

    Attributes:
        topology: topology spec string (``"mesh:16x16"``, ``"cube:8"``).
        routing: routing algorithm registry name.
        pattern: traffic pattern registry name.
        load: offered load in flits per node per cycle.
        sizes: packet-size distribution as ``(size, probability)`` pairs.
        config: simulator configuration as primitives.
        seed: workload RNG seed.
        resilience: optional runtime fault injection.  ``None`` (the
            default) is omitted from the serialized form entirely, so
            every pre-existing spec hash — and every archived cache
            entry — is unchanged by the field's existence.
        obs: optional observability collection
            (:class:`~repro.obs.spec.ObsSpec`).  Omitted from the
            serialized form when ``None``, exactly like ``resilience``,
            so enabling metrics never perturbs existing hashes — and
            because collection is bit-invisible, an obs-enabled run's
            *result* is identical to the plain run's.

    Names are canonicalized on construction, so specs built from alias
    spellings (``"negative_first"``) hash identically to the canonical
    form.
    """

    topology: str
    routing: str
    pattern: str
    load: float
    sizes: Tuple[Tuple[int, float], ...] = PAPER_SIZES.choices
    config: ConfigSpec = field(default_factory=ConfigSpec)
    seed: int = 1
    resilience: Optional[ResilienceSpec] = None
    obs: Optional[ObsSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "topology", self.topology.strip().lower())
        object.__setattr__(self, "routing", canonical_name(self.routing))
        object.__setattr__(self, "pattern", canonical_name(self.pattern))
        object.__setattr__(
            self, "sizes", tuple((int(s), float(p)) for s, p in self.sizes)
        )
        object.__setattr__(self, "load", float(self.load))

    def size_distribution(self) -> SizeDistribution:
        """The :class:`SizeDistribution` these sizes describe."""
        return SizeDistribution(self.sizes)

    def to_dict(self) -> dict:
        """A JSON-ready dict; inverse of :meth:`from_dict`.

        ``None`` resilience and obs fields are dropped from the
        payload, keeping the serialization — and therefore every
        content hash and cache key minted before these fields existed —
        byte-identical for plain specs.
        """
        payload = dataclasses.asdict(self)
        payload["sizes"] = [list(pair) for pair in self.sizes]
        if self.resilience is None:
            del payload["resilience"]
        else:
            window = payload["resilience"]["window"]
            if window is not None:
                payload["resilience"]["window"] = list(window)
        if self.obs is None:
            del payload["obs"]
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        """Rebuild a spec saved by :meth:`to_dict`."""
        payload = dict(data)
        payload["sizes"] = tuple(tuple(pair) for pair in payload["sizes"])
        payload["config"] = ConfigSpec(**payload["config"])
        resilience = payload.get("resilience")
        if resilience is not None:
            payload["resilience"] = ResilienceSpec(**resilience)
        obs = payload.get("obs")
        if obs is not None:
            payload["obs"] = ObsSpec(**obs)
        return cls(**payload)

    def canonical_json(self) -> str:
        """A canonical serialization: stable key order, no whitespace."""
        payload = {"version": SPEC_VERSION, "spec": self.to_dict()}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """SHA-256 of the canonical serialization.

        Stable across processes and interpreter runs (no ``PYTHONHASHSEED``
        dependence), so it is safe as a cache key.
        """
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def resolve(self, warm: Optional[WarmContext] = None) -> "ResolvedSpec":
        """Instantiate the live objects this spec names.

        Args:
            warm: optional warm context for this spec's ``(topology,
                routing)`` pair; its shared topology, routing, pattern,
                and raw route table are reused instead of rebuilt.  The
                objects are immutable (and routing decisions pure), so
                resolution through a warm context is bit-identical to a
                cold one.

        Raises:
            ValueError: if ``warm`` belongs to a different pair.
        """
        if warm is not None:
            if warm.key != (self.topology, self.routing):
                raise ValueError(
                    f"warm context {warm.key!r} does not match spec "
                    f"({self.topology!r}, {self.routing!r})"
                )
            return ResolvedSpec(
                spec=self,
                topology=warm.topology,
                routing=warm.routing,
                pattern=warm.pattern(self.pattern),
                sizes=self.size_distribution(),
                config=self.config.to_config(),
                route_source=warm.route_source,
            )
        topology = parse_topology(self.topology)
        return ResolvedSpec(
            spec=self,
            topology=topology,
            routing=make_routing(self.routing, topology),
            pattern=make_pattern(self.pattern, topology),
            sizes=self.size_distribution(),
            config=self.config.to_config(),
        )

    def run(self) -> SimulationResult:
        """Simulate this point and return its result."""
        return self.run_full().result

    def run_detailed(self) -> Tuple[SimulationResult, Optional[dict]]:
        """Simulate this point, returning the result and (for points
        with a resilience spec) the fault run's stats summary.

        Retained for callers that predate :meth:`run_full`, which also
        surfaces the obs metrics summary.
        """
        full = self.run_full()
        return full.result, full.resilience

    def run_full(self, warm: Optional[WarmContext] = None) -> "RunResult":
        """Simulate this point and return everything it produced.

        Fault-free points take exactly the historical :func:`simulate`
        path; the resilience machinery is imported — and the controller
        built — only when the spec asks for it.  Likewise the metrics
        collector exists only when ``obs`` is set, and its presence is
        bit-invisible to the result.

        Args:
            warm: optional warm context (see :meth:`resolve`).  Ignored
                for points with a resilience spec — fault injection
                degrades routing mid-run, so those points always build
                cold, private state.
        """
        if self.resilience is not None:
            warm = None
        resolved = self.resolve(warm)
        collector = None
        if self.obs is not None:
            from repro.obs.metrics import MetricsCollector

            collector = MetricsCollector(self.obs)
        if self.resilience is None:
            result = simulate(
                resolved.topology,
                resolved.routing,
                resolved.pattern,
                offered_load=self.load,
                sizes=resolved.sizes,
                config=resolved.config,
                seed=self.seed,
                obs=collector,
                route_source=resolved.route_source,
            )
            return RunResult(
                spec=self,
                result=result,
                metrics=collector.summary() if collector is not None else None,
            )
        from repro.resilience.controller import build_controller
        from repro.sim.engine import WormholeSimulator
        from repro.traffic.workload import Workload

        controller = build_controller(
            resolved.topology, self.routing, self.resilience, resolved.config
        )
        workload = Workload(
            pattern=resolved.pattern,
            sizes=resolved.sizes,
            offered_load=self.load,
            seed=self.seed,
        )
        simulator = WormholeSimulator(
            resolved.routing,
            workload,
            resolved.config,
            resilience=controller,
            obs=collector,
        )
        result = simulator.run()
        return RunResult(
            spec=self,
            result=result,
            resilience=controller.stats.summary(),
            metrics=collector.summary() if collector is not None else None,
        )


@dataclass(frozen=True)
class ResolvedSpec:
    """The live objects an :class:`ExperimentSpec` names.

    ``route_source`` is the warm context's shared raw route table when
    the spec was resolved through one (``None`` on a cold resolve); the
    engine consults it before recomputing any routing decision.
    """

    spec: ExperimentSpec
    topology: Topology
    routing: RoutingAlgorithm
    pattern: TrafficPattern
    sizes: SizeDistribution
    config: SimulationConfig
    route_source: Optional[RouteCache] = None


def resolve_spec(spec: ExperimentSpec) -> ResolvedSpec:
    """Instantiate the topology, routing, pattern, sizes, and config.

    The functional spelling of :meth:`ExperimentSpec.resolve`, exported
    through :mod:`repro.api` for programmatic users who want the live
    objects without running the simulation.
    """
    return spec.resolve()


def run_spec(spec: ExperimentSpec) -> SimulationResult:
    """Simulate one spec in-process and return its result."""
    return spec.run()


@dataclass(frozen=True)
class RunResult:
    """Everything one simulated point produced.

    The return type of :meth:`ExperimentSpec.run_full` and of the
    :func:`repro.api.run` facade: the headline
    :class:`~repro.sim.stats.SimulationResult` plus the optional
    sidecars — the resilience ledger for faulted runs and the obs
    metrics summary for instrumented ones — and, when the point went
    through an executor, its cache provenance.

    Attributes:
        spec: the spec that was run.
        result: the simulation result.
        resilience: fault-run ledger summary; ``None`` for plain runs.
        metrics: obs metrics summary
            (:meth:`repro.obs.metrics.MetricsCollector.summary`);
            ``None`` when collection was off.
        cached: whether the result came from a result cache.
        wall_time_s: seconds the simulation took (0.0 for cache hits).
    """

    spec: ExperimentSpec
    result: SimulationResult
    resilience: Optional[dict] = None
    metrics: Optional[dict] = None
    cached: bool = False
    wall_time_s: float = 0.0


@dataclass(frozen=True)
class PointSpec:
    """One executor job: a spec plus routing metadata.

    Attributes:
        spec: the simulation point to run.
        series: label of the sweep series the point belongs to (usually
            the algorithm name); informational, not hashed.
        index: position within its series; informational, not hashed.
    """

    spec: ExperimentSpec
    series: str = ""
    index: int = 0


@dataclass(frozen=True)
class PointOutcome:
    """One completed point.

    Attributes:
        point: the job that ran.
        result: the simulation result (from the cache or a fresh run).
        wall_time_s: seconds the simulation took; 0.0 for cache hits.
        cached: whether the result came from the cache.
        resilience: the fault run's stats summary (delivered/dropped
            fractions, detours, recovery latency); ``None`` for points
            without a resilience spec.
        metrics: the obs metrics summary; ``None`` for points without
            an obs spec (and for cache entries stored before metrics
            existed).
    """

    point: PointSpec
    result: SimulationResult
    wall_time_s: float
    cached: bool
    resilience: Optional[dict] = None
    metrics: Optional[dict] = None


@dataclass
class ExecutorMetrics:
    """Counters one :meth:`SweepExecutor.run_points` call accumulates.

    ``warm_points`` counts simulations resolved through a warm context,
    ``batches`` the parallel jobs dispatched (each carries a chunk of
    same-key points), and ``prewarmed_keys`` the ``(topology, routing)``
    pairs whose full route table was precomputed up front.
    """

    points_total: int = 0
    points_completed: int = 0
    cache_hits: int = 0
    simulated: int = 0
    cycles_simulated: int = 0
    wall_time_s: float = 0.0
    warm_points: int = 0
    batches: int = 0
    prewarmed_keys: int = 0


class ExecutorHooks:
    """Progress callbacks; subclass and override what you need.

    The executor calls these from the coordinating process only (never
    from workers), in completion order — which under ``jobs > 1`` is not
    submission order.
    """

    def on_run_start(self, total_points: int) -> None:
        """Called once before any point runs."""

    def on_point_start(self, point: PointSpec) -> None:
        """Called when a point is dispatched (not for cache hits)."""

    def on_point_done(self, outcome: PointOutcome) -> None:
        """Called as each point completes (cache hits included)."""

    def on_run_end(self, metrics: ExecutorMetrics) -> None:
        """Called once after every point has completed."""


class ProgressPrinter(ExecutorHooks):
    """Hooks that narrate progress, one line per completed point."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        import sys

        self.stream = stream if stream is not None else sys.stderr
        self._total = 0
        self._done = 0

    def on_run_start(self, total_points: int) -> None:
        self._total = total_points
        self._done = 0

    def on_point_done(self, outcome: PointOutcome) -> None:
        self._done += 1
        spec = outcome.point.spec
        source = "cache" if outcome.cached else f"{outcome.wall_time_s:.1f}s"
        print(
            f"[{self._done}/{self._total}] {spec.routing} {spec.pattern} "
            f"load={spec.load:g} ({source})",
            file=self.stream,
            flush=True,
        )

    def on_run_end(self, metrics: ExecutorMetrics) -> None:
        print(
            f"done: {metrics.points_completed} points "
            f"({metrics.cache_hits} cached, {metrics.simulated} simulated, "
            f"{metrics.cycles_simulated} cycles) "
            f"in {metrics.wall_time_s:.1f}s",
            file=self.stream,
            flush=True,
        )


class ResultCache:
    """On-disk result store keyed by spec content hash.

    One JSON file per point, named ``<hash>.json``, holding both the
    spec (for auditability and collision detection) and the result.
    Writes are atomic (temp file + rename), so a cache directory shared
    by concurrent runs stays consistent.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, spec: ExperimentSpec) -> Path:
        """Where this spec's result lives (whether or not it exists)."""
        return self.root / f"{spec.content_hash()}.json"

    def load(self, spec: ExperimentSpec) -> Optional[SimulationResult]:
        """The cached result, or ``None`` on a miss or a corrupt entry."""
        loaded = self.load_with_extras(spec)
        return loaded[0] if loaded is not None else None

    def load_with_extras(
        self, spec: ExperimentSpec
    ) -> Optional[Tuple[SimulationResult, Optional[dict]]]:
        """The cached (result, resilience summary), or ``None`` on a
        miss or a corrupt entry.  The summary is ``None`` for entries
        stored without one (fault-free points, and all pre-resilience
        archives).  :meth:`load_entry` additionally surfaces the obs
        metrics summary."""
        entry = self.load_entry(spec)
        if entry is None:
            return None
        return entry[0], entry[1]

    def load_entry(
        self, spec: ExperimentSpec
    ) -> Optional[Tuple[SimulationResult, Optional[dict], Optional[dict]]]:
        """The cached (result, resilience summary, obs metrics summary),
        or ``None`` on a miss or a corrupt entry.  Either summary is
        ``None`` when the entry was stored without it."""
        from repro.analysis.results_io import result_from_dict

        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("spec") != spec.to_dict():
            return None
        try:
            result = result_from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None
        extras = payload.get("resilience")
        metrics = payload.get("obs")
        return (
            result,
            extras if isinstance(extras, dict) else None,
            metrics if isinstance(metrics, dict) else None,
        )

    def store(
        self,
        spec: ExperimentSpec,
        result: SimulationResult,
        extras: Optional[dict] = None,
        metrics: Optional[dict] = None,
    ) -> None:
        """Persist one result (plus any resilience summary and obs
        metrics summary) atomically."""
        from repro.analysis.results_io import result_to_dict

        path = self.path_for(spec)
        payload = {
            "version": SPEC_VERSION,
            "spec": spec.to_dict(),
            "result": result_to_dict(result),
        }
        if extras is not None:
            payload["resilience"] = extras
        if metrics is not None:
            payload["obs"] = metrics
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, path)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


#: One completed simulation as the executor's wire format:
#: (result, resilience summary, obs metrics summary, seconds).
_JobResult = Tuple[SimulationResult, Optional[dict], Optional[dict], float]


def _warm_context_for(spec: ExperimentSpec) -> Optional[WarmContext]:
    """This process's warm context for a spec, or ``None`` when the
    point must run cold (resilience points degrade routing mid-run)."""
    if spec.resilience is not None:
        return None
    return get_warm_context(spec.topology, spec.routing)


def _run_point_job(
    spec: ExperimentSpec,
    warm: Optional[WarmContext] = None,
) -> _JobResult:
    """Worker entry point: simulate one spec, timing it.

    Module-level so it pickles under every multiprocessing start method.
    Returns (result, resilience summary, obs metrics summary, seconds).
    """
    started = time.perf_counter()
    full = spec.run_full(warm=warm)
    return full.result, full.resilience, full.metrics, (
        time.perf_counter() - started
    )


def _run_batch_job(
    specs: List[ExperimentSpec],
    use_warm: bool,
    table_payload: Optional[dict],
) -> List[_JobResult]:
    """Worker entry point: simulate a chunk of same-key specs in order.

    With ``use_warm`` set, every spec resolves through this worker
    process's warm context for the chunk's ``(topology, routing)`` pair;
    ``table_payload`` (a serialized full route table from the parent's
    precomputation) is installed into that context first, so even the
    worker's first point never recomputes a route.
    """
    results: List[_JobResult] = []
    for spec in specs:
        warm = _warm_context_for(spec) if use_warm else None
        if warm is not None and table_payload is not None:
            load_route_table(warm, table_payload)
            table_payload = None  # same key for the whole chunk
        results.append(_run_point_job(spec, warm))
    return results


#: Same-key point count below which the full route table is not worth
#: precomputing (a lone point fills what it needs lazily anyway).
PREWARM_MIN_POINTS = 2


class SweepExecutor:
    """Runs simulation points, optionally in parallel and cached.

    Args:
        jobs: worker processes; ``1`` (the default) runs every point
            in-process with no pool, which is the deterministic path
            tests use.  ``None`` means one worker per CPU
            (``os.cpu_count()``).  Worker processes persist across
            ``run_points`` calls, so their warm contexts keep paying
            off; call :meth:`close` (or use the executor as a context
            manager) to release them.
        cache_dir: directory for the on-disk result cache; ``None``
            disables caching.
        hooks: progress callbacks; defaults to silent.
        manifest_dir: directory to write one structured run manifest
            per completed point (spec hash, git describe, timings,
            certification verdict, resilience ledger, metric
            summaries — see :mod:`repro.obs.manifest`); ``None``
            disables manifests.  Cache hits write manifests too,
            marked ``cached``.
        require_certification: statically certify every unique
            ``(topology, routing)`` pair before launching its points —
            deadlock freedom, connectivity, and livelock freedom per
            :mod:`repro.verify` — and refuse the run (raising
            :class:`repro.verify.CertificationError` with the refuting
            witness) if any pair fails.  A refuted algorithm would wedge
            or wander the simulator anyway; the gate converts hours of
            wasted sweep into an immediate, explained failure.
        warm: reuse warmed state (shared topology/routing objects and
            accumulated route tables) for points sharing a
            ``(topology, routing)`` key, and batch parallel work by key
            to maximize that reuse.  Bit-identical either way — the
            flag exists so benches and tests can measure/pin the cold
            path.

    Results are identical for any ``jobs`` value and either ``warm``
    setting: each point is fully determined by its spec.  The executor
    only changes where and when points run.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        hooks: Optional[ExecutorHooks] = None,
        require_certification: bool = False,
        manifest_dir: Optional[Union[str, Path]] = None,
        warm: bool = True,
    ) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.warm = warm
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.hooks = hooks if hooks is not None else ExecutorHooks()
        self.last_metrics: Optional[ExecutorMetrics] = None
        self.require_certification = require_certification
        self.manifest_dir = Path(manifest_dir) if manifest_dir else None
        # git describe is stable for the process lifetime; resolve it
        # once rather than forking git per manifest.
        self._git_version: Optional[str] = None
        self._git_resolved = False
        self._certified: set = set()
        # Persistent worker pool (jobs > 1), created on first parallel
        # run and kept across calls.  _inherited_keys tracks which warm
        # keys were prewarmed in this process before the pool forked —
        # those tables reach workers by fork inheritance, everything
        # later ships serialized.
        self._pool: Optional[ProcessPoolExecutor] = None
        self._inherited_keys: set = set()

    # -- worker-pool lifecycle ----------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        pool, self._pool = self._pool, None
        self._inherited_keys = set()
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            pool = self._pool
        except AttributeError:
            return
        if pool is not None:
            pool.shutdown(wait=False)

    # -- certification gate -------------------------------------------

    def _certify_points(self, points: Sequence[PointSpec]) -> None:
        """Certify each unique ``(topology, routing)`` pair once.

        No-op unless ``require_certification`` is set.  Certified pairs
        are remembered for the executor's lifetime, so sweeps over many
        loads pay the (sub-second) static check once per algorithm.

        Raises:
            repro.verify.CertificationError: when a pair fails any
                static check; the message carries the witnesses.
        """
        if not self.require_certification:
            return
        from repro.verify import certify

        for point in points:
            key = (point.spec.topology, point.spec.routing)
            if key in self._certified:
                continue
            topology = parse_topology(point.spec.topology)
            routing = make_routing(point.spec.routing, topology)
            certify(topology, routing, topology_label=point.spec.topology)
            self._certified.add(key)

    # -- core ---------------------------------------------------------

    def run_points(self, points: Sequence[PointSpec]) -> List[PointOutcome]:
        """Run every point and return outcomes in input order.

        With ``require_certification`` set, every unique
        ``(topology, routing)`` pair is statically certified before any
        point runs.
        """
        self._certify_points(points)
        started = time.perf_counter()
        metrics = ExecutorMetrics(points_total=len(points))
        self.hooks.on_run_start(len(points))
        outcomes: List[Optional[PointOutcome]] = [None] * len(points)

        if self.jobs == 1:
            for i, point in enumerate(points):
                outcomes[i] = self._execute_one(point, metrics)
        else:
            missing: List[int] = []
            for i, point in enumerate(points):
                outcome = self._from_cache(point, metrics)
                if outcome is not None:
                    outcomes[i] = outcome
                else:
                    missing.append(i)
            if missing:
                self._run_parallel(points, missing, outcomes, metrics)

        self._finish(metrics, started)
        return [outcome for outcome in outcomes if outcome is not None]

    def _finish(self, metrics: ExecutorMetrics, started: float) -> None:
        metrics.wall_time_s = time.perf_counter() - started
        self.last_metrics = metrics
        self.hooks.on_run_end(metrics)

    def _write_manifest(self, outcome: PointOutcome) -> None:
        """Persist one point's structured run manifest (if enabled)."""
        if self.manifest_dir is None:
            return
        from repro.obs.manifest import build_manifest, git_describe, write_manifest

        if not self._git_resolved:
            self._git_version = git_describe()
            self._git_resolved = True
        point = outcome.point
        certification = {
            "required": self.require_certification,
            "certified": (
                (point.spec.topology, point.spec.routing) in self._certified
            ),
        }
        manifest = build_manifest(
            spec=point.spec,
            result=outcome.result,
            wall_time_s=outcome.wall_time_s,
            cached=outcome.cached,
            resilience=outcome.resilience,
            metrics=outcome.metrics,
            certification=certification,
            series=point.series,
            index=point.index,
            git_version=self._git_version,
            executor={"jobs": self.jobs, "warm": self.warm},
        )
        write_manifest(manifest, self.manifest_dir)

    def _from_cache(
        self, point: PointSpec, metrics: ExecutorMetrics
    ) -> Optional[PointOutcome]:
        cached = (
            self.cache.load_entry(point.spec)
            if self.cache is not None
            else None
        )
        if cached is None:
            return None
        result, extras, obs_metrics = cached
        outcome = PointOutcome(
            point, result, 0.0, True, resilience=extras, metrics=obs_metrics
        )
        metrics.cache_hits += 1
        metrics.points_completed += 1
        self._write_manifest(outcome)
        self.hooks.on_point_done(outcome)
        return outcome

    def _complete_fresh(
        self,
        point: PointSpec,
        result: SimulationResult,
        wall_time: float,
        metrics: ExecutorMetrics,
        extras: Optional[dict] = None,
        obs_metrics: Optional[dict] = None,
    ) -> PointOutcome:
        if self.cache is not None:
            self.cache.store(point.spec, result, extras=extras, metrics=obs_metrics)
        outcome = PointOutcome(
            point, result, wall_time, False,
            resilience=extras, metrics=obs_metrics,
        )
        metrics.simulated += 1
        metrics.points_completed += 1
        metrics.cycles_simulated += point.spec.config.total_cycles
        self._write_manifest(outcome)
        self.hooks.on_point_done(outcome)
        return outcome

    def _execute_one(
        self, point: PointSpec, metrics: ExecutorMetrics
    ) -> PointOutcome:
        """Cache-check then simulate one point in-process."""
        outcome = self._from_cache(point, metrics)
        if outcome is not None:
            return outcome
        self.hooks.on_point_start(point)
        warm = _warm_context_for(point.spec) if self.warm else None
        if warm is not None:
            metrics.warm_points += 1
        result, extras, obs_metrics, wall_time = _run_point_job(
            point.spec, warm
        )
        return self._complete_fresh(
            point, result, wall_time, metrics, extras, obs_metrics
        )

    def _prewarm_groups(
        self,
        points: Sequence[PointSpec],
        groups: Dict[Tuple[str, str], List[int]],
        metrics: ExecutorMetrics,
    ) -> Dict[Tuple[str, str], Optional[dict]]:
        """Precompute route tables for the grid's warm keys.

        Builds the full ``(node, dest)`` table once per prewarmable key
        with enough points to repay it, in this (parent) process's warm
        context.  Returns the serialized artifact each batch must ship
        to its worker — ``None`` for keys the workers will inherit by
        fork (the pool has not started yet, so forked children see the
        parent's contexts) and for keys not worth precomputing (their
        shared tables still fill lazily inside each worker).
        """
        payloads: Dict[Tuple[str, str], Optional[dict]] = {}
        fork_inherits = (
            self._pool is None
            and multiprocessing.get_start_method() == "fork"
        )
        for key, indices in groups.items():
            payloads[key] = None
            specs = [points[i].spec for i in indices]
            plain = [spec for spec in specs if spec.resilience is None]
            if len(plain) < PREWARM_MIN_POINTS:
                continue
            context = _warm_context_for(plain[0])
            if context is None or not context.prewarmable:
                continue
            prewarm_route_table(context)
            metrics.prewarmed_keys += 1
            if fork_inherits:
                self._inherited_keys.add(key)
            if key not in self._inherited_keys:
                assert context.route_source is not None
                payloads[key] = serialize_route_table(
                    context.topology, context.route_source.export_table()
                )
        return payloads

    def _run_parallel(
        self,
        points: Sequence[PointSpec],
        missing: Sequence[int],
        outcomes: List[Optional[PointOutcome]],
        metrics: ExecutorMetrics,
    ) -> None:
        """Fan the missing points out over the persistent pool.

        Points are grouped by ``(topology, routing)`` key and each group
        is split into at most ``jobs`` strided chunks (striding
        interleaves cheap low-load and expensive saturated points), so
        a worker runs same-key points back to back against one warm
        context — the batched, reuse-maximizing schedule.  With
        ``warm`` off, every point is its own single-spec batch (the
        legacy cold schedule).
        """
        groups: Dict[Tuple[str, str], List[int]] = {}
        for i in missing:
            spec = points[i].spec
            groups.setdefault((spec.topology, spec.routing), []).append(i)
        payloads: Dict[Tuple[str, str], Optional[dict]] = {}
        if self.warm:
            payloads = self._prewarm_groups(points, groups, metrics)
        pool = self._ensure_pool()
        futures = {}
        for key, indices in groups.items():
            if self.warm:
                chunk_count = min(self.jobs, len(indices))
            else:
                chunk_count = len(indices)
            chunks = [indices[c::chunk_count] for c in range(chunk_count)]
            for chunk in chunks:
                for i in chunk:
                    self.hooks.on_point_start(points[i])
                future = pool.submit(
                    _run_batch_job,
                    [points[i].spec for i in chunk],
                    self.warm,
                    payloads.get(key),
                )
                futures[future] = chunk
                metrics.batches += 1
        try:
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    chunk = futures[future]
                    for i, job_result in zip(chunk, future.result()):
                        result, extras, obs_metrics, wall_time = job_result
                        if self.warm and points[i].spec.resilience is None:
                            metrics.warm_points += 1
                        outcomes[i] = self._complete_fresh(
                            points[i], result, wall_time, metrics, extras,
                            obs_metrics,
                        )
        except BrokenProcessPool:
            # A dead worker poisons the whole pool; drop it so the next
            # run_points call starts a fresh one.
            self.close()
            raise

    # -- conveniences -------------------------------------------------

    def run_specs(
        self, specs: Sequence[ExperimentSpec]
    ) -> List[SimulationResult]:
        """Run bare specs and return their results in input order."""
        points = [PointSpec(spec=s, index=i) for i, s in enumerate(specs)]
        return [outcome.result for outcome in self.run_points(points)]

    def sweep(
        self,
        topology: Union[str, Topology],
        algorithm: str,
        pattern: str,
        loads: Sequence[float],
        config: Optional[SimulationConfig] = None,
        sizes: SizeDistribution = PAPER_SIZES,
        seed: int = 1,
        stop_after_saturation: int = 1,
        obs: Optional[ObsSpec] = None,
    ):
        """Measure one latency-throughput curve through the executor.

        The executor analogue of :func:`repro.analysis.sweep.sweep_loads`
        with the same truncation semantics: the sweep stops
        ``stop_after_saturation`` consecutive unsustainable points past
        saturation.  With ``jobs == 1`` later points are never simulated
        (lazy, exactly like the serial loop); with ``jobs > 1`` all
        loads are dispatched up front and the curve is truncated
        afterwards — per-point values are identical either way.

        With ``obs`` set, every point collects metrics (bit-invisible
        to its result); pair with ``manifest_dir`` to persist them.

        Returns:
            The measured :class:`~repro.analysis.sweep.SweepSeries`.
        """
        from repro.analysis.sweep import (
            SweepPoint,
            SweepSeries,
            truncate_at_saturation,
        )

        spec_string = (
            topology if isinstance(topology, str) else topology_spec(topology)
        )
        base = ExperimentSpec(
            topology=spec_string,
            routing=algorithm,
            pattern=pattern,
            load=0.0,
            sizes=sizes.choices,
            config=ConfigSpec.from_config(config),
            seed=seed,
            obs=obs,
        )
        # Resolve once for the display names the series carries (the
        # registry may label an algorithm differently than its key).
        resolved = dataclasses.replace(base, load=float(loads[0])).resolve()
        series_name = resolved.routing.name
        pattern_name = resolved.pattern.name

        points = [
            PointSpec(
                spec=dataclasses.replace(base, load=load),
                series=series_name,
                index=i,
            )
            for i, load in enumerate(loads)
        ]

        if self.jobs == 1:
            # Lazy serial path: stop dispatching once saturated, so the
            # points past the cut are never simulated (exactly the old
            # serial loop's cost profile).
            self._certify_points(points)
            started = time.perf_counter()
            metrics = ExecutorMetrics(points_total=len(points))
            self.hooks.on_run_start(len(points))
            sweep_points: List[SweepPoint] = []
            past_saturation = 0
            for point in points:
                outcome = self._execute_one(point, metrics)
                sweep_point = SweepPoint.from_result(outcome.result)
                sweep_points.append(sweep_point)
                if not sweep_point.sustainable:
                    past_saturation += 1
                    if past_saturation >= stop_after_saturation:
                        break
                else:
                    past_saturation = 0
            self._finish(metrics, started)
        else:
            outcomes = self.run_points(points)
            sweep_points = truncate_at_saturation(
                [SweepPoint.from_result(o.result) for o in outcomes],
                stop_after_saturation,
            )
        return SweepSeries(series_name, pattern_name, sweep_points)
