"""Fault-tolerance analysis: connectivity under failed channels.

The paper argues nonminimal routing "provides better fault tolerance"
(Section 1) — a minimal algorithm loses a source-destination pair as soon
as every shortest path it permits crosses a failed channel, while a
nonminimal algorithm survives any fault pattern that leaves a
permitted-turn path intact.  :func:`routable_fraction` quantifies this:
the fraction of ordered pairs an algorithm can still route in a faulty
network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.restrictions import TurnRestriction
from repro.routing.base import RoutingAlgorithm
from repro.routing.turn_table import TurnRestrictionRouting
from repro.topology.base import Topology
from repro.topology.faults import FaultyTopology, random_channel_faults

__all__ = ["routable_fraction", "FaultSweepPoint", "fault_tolerance_sweep"]


def routable_fraction(topology: Topology, algorithm: RoutingAlgorithm) -> float:
    """Fraction of ordered pairs the algorithm can route to completion.

    A pair counts as routable when, starting from injection, every state
    the algorithm can reach still offers a next hop until the destination
    (no dead ends) — checked by exhaustive walk over the (channel, node)
    state graph.
    """
    nodes = list(topology.nodes())
    total = 0
    routable = 0
    for src in nodes:
        for dst in nodes:
            if src == dst:
                continue
            total += 1
            if _delivers(topology, algorithm, src, dst):
                routable += 1
    return routable / total if total else 1.0


def _delivers(topology, algorithm, src, dst) -> bool:
    frontier = [(None, src)]
    seen = set()
    while frontier:
        in_ch, node = frontier.pop()
        if node == dst:
            continue
        if (in_ch, node) in seen:
            continue
        seen.add((in_ch, node))
        candidates = algorithm.route(in_ch, node, dst)
        if not candidates:
            return False
        for ch in candidates:
            frontier.append((ch, ch.dst))
    return True


@dataclass(frozen=True)
class FaultSweepPoint:
    """Connectivity at one fault count."""

    failed_channels: int
    minimal_fraction: float
    nonminimal_fraction: float


def fault_tolerance_sweep(
    topology: Topology,
    restriction: TurnRestriction,
    fault_counts: Sequence[int],
    seed: int = 0,
) -> List[FaultSweepPoint]:
    """Compare minimal vs nonminimal connectivity as channels fail.

    For each fault count, fail that many channels at random (the same
    fault set for both modes) and measure each mode's routable fraction.

    Args:
        topology: the healthy network.
        restriction: the turn restriction both routers obey.
        fault_counts: numbers of failed channels to evaluate.
        seed: RNG seed for the fault sets.

    Returns:
        One point per fault count.
    """
    points = []
    for count in fault_counts:
        faulty = random_channel_faults(topology, count, seed=seed + count)
        minimal = TurnRestrictionRouting(faulty, restriction, minimal=True)
        nonminimal = TurnRestrictionRouting(faulty, restriction, minimal=False)
        points.append(
            FaultSweepPoint(
                failed_channels=count,
                minimal_fraction=routable_fraction(faulty, minimal),
                nonminimal_fraction=routable_fraction(faulty, nonminimal),
            )
        )
    return points
