"""JSON persistence for measurement results.

Sweeps at paper scale take minutes; these helpers archive their outputs
so reports can be regenerated, compared across runs, and version
controlled (EXPERIMENTS.md's numbers come from such an archive).  All
round-trips are lossless for the fields the reports use.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Tuple, Union

from repro.analysis.sweep import SweepPoint, SweepSeries
from repro.sim.stats import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.figures import FigureResult

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "series_to_dict",
    "series_from_dict",
    "figure_to_dict",
    "figure_from_dict",
    "sweep_run_to_dict",
    "sweep_run_from_dict",
    "save_json",
    "load_figure",
]


def result_to_dict(result: SimulationResult) -> dict:
    """A SimulationResult as a plain JSON-ready dict."""
    return dataclasses.asdict(result)


def result_from_dict(data: dict) -> SimulationResult:
    """Rebuild a SimulationResult saved by :func:`result_to_dict`."""
    fields = {f.name for f in dataclasses.fields(SimulationResult)}
    unknown = set(data) - fields
    if unknown:
        raise ValueError(f"unknown SimulationResult fields: {sorted(unknown)}")
    payload = dict(data)
    by_size = payload.get("latency_by_size_cycles")
    if by_size is not None:
        payload["latency_by_size_cycles"] = {
            int(size): value for size, value in by_size.items()
        }
    return SimulationResult(**payload)


def series_to_dict(series: SweepSeries) -> dict:
    """A SweepSeries as a plain dict."""
    return {
        "algorithm": series.algorithm,
        "pattern": series.pattern,
        "points": [dataclasses.asdict(point) for point in series.points],
    }


def series_from_dict(data: dict) -> SweepSeries:
    """Rebuild a SweepSeries saved by :func:`series_to_dict`."""
    return SweepSeries(
        algorithm=data["algorithm"],
        pattern=data["pattern"],
        points=[SweepPoint(**point) for point in data["points"]],
    )


def figure_to_dict(figure) -> dict:
    """A FigureResult as a plain dict."""
    return {
        "figure": figure.figure,
        "title": figure.title,
        "baseline": figure.baseline,
        "series": [series_to_dict(series) for series in figure.series],
    }


def figure_from_dict(data: dict) -> "FigureResult":
    """Rebuild a FigureResult saved by :func:`figure_to_dict`."""
    from repro.experiments.figures import FigureResult

    return FigureResult(
        figure=data["figure"],
        title=data["title"],
        baseline=data["baseline"],
        series=[series_from_dict(series) for series in data["series"]],
    )


def sweep_run_to_dict(
    series_list: "List[SweepSeries]", **metadata: Any
) -> dict:
    """A multi-algorithm sweep run (``repro sweep`` output) as a dict.

    Args:
        series_list: the measured :class:`SweepSeries` objects.
        **metadata: run parameters worth archiving (topology spec,
            pattern, loads, seed, ...); stored verbatim.
    """
    return {
        "kind": "sweep-run",
        "metadata": dict(metadata),
        "series": [series_to_dict(series) for series in series_list],
    }


def sweep_run_from_dict(
    data: dict,
) -> Tuple[List[SweepSeries], Dict[str, Any]]:
    """Rebuild ``(series_list, metadata)`` from :func:`sweep_run_to_dict`."""
    if data.get("kind") != "sweep-run":
        raise ValueError(f"not a sweep-run payload: kind={data.get('kind')!r}")
    series_list = [series_from_dict(series) for series in data["series"]]
    return series_list, dict(data.get("metadata", {}))


def save_json(obj: object, path: Union[str, Path]) -> None:
    """Serialize a result/series/figure (or a prepared dict) to a file."""
    from repro.experiments.figures import FigureResult

    if isinstance(obj, SimulationResult):
        payload = result_to_dict(obj)
    elif isinstance(obj, SweepSeries):
        payload = series_to_dict(obj)
    elif isinstance(obj, FigureResult):
        payload = figure_to_dict(obj)
    elif isinstance(obj, dict):
        payload = obj
    else:
        raise TypeError(f"cannot serialize {type(obj).__name__}")
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_figure(path: Union[str, Path]) -> "FigureResult":
    """Load a FigureResult archived with :func:`save_json`."""
    return figure_from_dict(json.loads(Path(path).read_text()))
