"""Text rendering of sweep results: the rows and series the paper plots.

No plotting libraries are assumed; figures are emitted as aligned text
tables (one row per sampled load) and a comparison summary of sustainable
throughputs, which is the quantity the paper's prose compares ("twice
that of the nonadaptive algorithms", "four times ...").
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.analysis.sweep import SweepSeries

__all__ = ["render_series_table", "render_comparison", "format_table"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned text table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered_rows)
    return "\n".join(out)


def render_series_table(series: SweepSeries) -> str:
    """One latency-vs-throughput curve as a text table."""
    headers = [
        "offered(fl/node/cyc)",
        "throughput(fl/us)",
        "latency(us)",
        "accept",
        "status",
    ]
    rows = []
    for p in series.points:
        status = "DEADLOCK" if p.deadlocked else (
            "ok" if p.sustainable else "saturated"
        )
        rows.append([
            f"{p.offered_load:.3f}",
            f"{p.throughput_flits_per_usec:.1f}",
            f"{p.avg_latency_usec:.2f}",
            f"{p.acceptance_ratio:.2f}",
            status,
        ])
    title = f"{series.algorithm} / {series.pattern}"
    return f"{title}\n{format_table(headers, rows)}"


def render_comparison(
    series_list: Sequence[SweepSeries], baseline: str
) -> str:
    """Sustainable-throughput comparison against a baseline algorithm.

    Args:
        series_list: measured curves (same pattern, same topology).
        baseline: the algorithm name to normalize against (the paper's
            nonadaptive xy or e-cube).
    """
    by_name = {s.algorithm: s for s in series_list}
    if baseline not in by_name:
        known = ", ".join(sorted(by_name))
        raise ValueError(f"baseline {baseline!r} not among series: {known}")
    base = by_name[baseline].sustainable_throughput
    headers = ["algorithm", "sustainable(fl/us)", f"vs {baseline}"]
    rows = []
    for series in series_list:
        sustained = series.sustainable_throughput
        ratio = sustained / base if base > 0 else float("inf")
        rows.append([series.algorithm, f"{sustained:.1f}", f"{ratio:.2f}x"])
    return format_table(headers, rows)
