"""Measurement harness: load sweeps, saturation search, text reports."""

from repro.analysis.channel_load import (
    ChannelLoadReport,
    channel_loads,
    load_report,
)
from repro.analysis.executor import (
    ConfigSpec,
    ExecutorHooks,
    ExecutorMetrics,
    ExperimentSpec,
    PointOutcome,
    PointSpec,
    ProgressPrinter,
    ResolvedSpec,
    ResultCache,
    SweepExecutor,
    resolve_spec,
    run_spec,
)
from repro.analysis.fault_tolerance import (
    FaultSweepPoint,
    fault_tolerance_sweep,
    routable_fraction,
)
from repro.analysis.results_io import (
    figure_from_dict,
    figure_to_dict,
    load_figure,
    result_from_dict,
    result_to_dict,
    save_json,
    series_from_dict,
    series_to_dict,
    sweep_run_from_dict,
    sweep_run_to_dict,
)
from repro.analysis.report import format_table, render_comparison, render_series_table
from repro.analysis.sustainable import find_sustainable_load
from repro.analysis.sweep import (
    SweepPoint,
    SweepSeries,
    default_loads,
    sweep_loads,
    truncate_at_saturation,
)

__all__ = [
    "ConfigSpec",
    "ExperimentSpec",
    "PointSpec",
    "PointOutcome",
    "ResolvedSpec",
    "resolve_spec",
    "run_spec",
    "SweepExecutor",
    "ResultCache",
    "ExecutorHooks",
    "ExecutorMetrics",
    "ProgressPrinter",
    "truncate_at_saturation",
    "ChannelLoadReport",
    "channel_loads",
    "load_report",
    "FaultSweepPoint",
    "fault_tolerance_sweep",
    "routable_fraction",
    "SweepPoint",
    "SweepSeries",
    "sweep_loads",
    "default_loads",
    "find_sustainable_load",
    "render_series_table",
    "render_comparison",
    "format_table",
    "result_to_dict",
    "result_from_dict",
    "series_to_dict",
    "series_from_dict",
    "figure_to_dict",
    "figure_from_dict",
    "sweep_run_to_dict",
    "sweep_run_from_dict",
    "save_json",
    "load_figure",
]
