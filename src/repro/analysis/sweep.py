"""Injection-rate sweeps: the latency-versus-throughput curves.

Each of the paper's performance figures (13-16) plots average latency
against achieved throughput for several routing algorithms as the offered
load rises.  :func:`sweep_loads` produces one such series per algorithm;
:class:`SweepPoint` holds one (load, throughput, latency) sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from repro.routing.base import RoutingAlgorithm
from repro.routing.registry import make_routing
from repro.sim.config import SimulationConfig
from repro.sim.simulator import simulate
from repro.sim.stats import SimulationResult
from repro.topology.base import Topology
from repro.topology.spec import parse_topology, topology_spec
from repro.traffic.patterns import TrafficPattern
from repro.traffic.permutations import make_pattern
from repro.traffic.workload import PAPER_SIZES, SizeDistribution

if TYPE_CHECKING:
    from repro.analysis.executor import SweepExecutor

__all__ = [
    "SweepPoint",
    "SweepSeries",
    "sweep_loads",
    "default_loads",
    "truncate_at_saturation",
]


@dataclass(frozen=True)
class SweepPoint:
    """One sample of a latency-throughput curve."""

    offered_load: float
    throughput_flits_per_usec: float
    avg_latency_usec: float
    sustainable: bool
    deadlocked: bool
    acceptance_ratio: float
    avg_hops: float

    @classmethod
    def from_result(cls, result: SimulationResult) -> "SweepPoint":
        return cls(
            offered_load=result.offered_load,
            throughput_flits_per_usec=result.throughput_flits_per_usec,
            avg_latency_usec=result.avg_latency_usec,
            sustainable=result.is_sustainable(),
            deadlocked=result.deadlocked,
            acceptance_ratio=result.acceptance_ratio,
            avg_hops=result.avg_hops,
        )


@dataclass
class SweepSeries:
    """A full curve for one routing algorithm."""

    algorithm: str
    pattern: str
    points: List[SweepPoint]

    @property
    def sustainable_throughput(self) -> float:
        """The highest throughput measured at a sustainable load.

        This is the paper's "maximum sustainable throughput": beyond it
        source queues grow without bound.
        """
        sustained = [
            p.throughput_flits_per_usec for p in self.points if p.sustainable
        ]
        return max(sustained) if sustained else 0.0

    @property
    def saturation_throughput(self) -> float:
        """The highest throughput measured anywhere on the curve."""
        if not self.points:
            return 0.0
        return max(p.throughput_flits_per_usec for p in self.points)

    def latency_at(self, load: float) -> Optional[float]:
        """Latency measured at the given offered load, if sampled."""
        for point in self.points:
            if abs(point.offered_load - load) < 1e-12:
                return point.avg_latency_usec
        return None


def default_loads(
    start: float = 0.05, stop: float = 0.6, count: int = 8
) -> List[float]:
    """An evenly spaced grid of offered loads (flits/node/cycle)."""
    if count < 2:
        raise ValueError(f"need at least two load points, got {count}")
    step = (stop - start) / (count - 1)
    return [round(start + i * step, 6) for i in range(count)]


def truncate_at_saturation(
    points: Sequence[SweepPoint], stop_after_saturation: int = 1
) -> List[SweepPoint]:
    """Cut a fully sampled curve where the serial sweep would have stopped.

    The serial sweep stops after ``stop_after_saturation`` consecutive
    unsustainable points; a parallel sweep samples every load up front
    and applies this rule afterwards, so both paths return identical
    series.
    """
    kept: List[SweepPoint] = []
    past_saturation = 0
    for point in points:
        kept.append(point)
        if not point.sustainable:
            past_saturation += 1
            if past_saturation >= stop_after_saturation:
                break
        else:
            past_saturation = 0
    return kept


def sweep_loads(
    topology: Union[str, Topology],
    algorithm: Union[str, RoutingAlgorithm],
    pattern: Union[str, TrafficPattern],
    loads: Sequence[float],
    config: Optional[SimulationConfig] = None,
    sizes: SizeDistribution = PAPER_SIZES,
    seed: int = 1,
    stop_after_saturation: int = 1,
    executor: Optional["SweepExecutor"] = None,
) -> SweepSeries:
    """Measure one latency-throughput curve.

    When ``algorithm`` and ``pattern`` are registry names (and the
    topology has a spec string), the sweep routes through a
    :class:`~repro.analysis.executor.SweepExecutor` — by default an
    in-process serial one, so tests stay deterministic; pass an executor
    with ``jobs > 1`` and/or a cache directory to fan points out over
    worker processes and reuse earlier results.  Instances fall back to
    the direct in-process loop (they cannot be pickled to workers or
    content-hashed for the cache).

    Args:
        topology: the network (instance or spec string like
            ``"mesh:16x16"``).
        algorithm: routing algorithm (instance or registry name).
        pattern: traffic pattern (instance or name).
        loads: offered loads to sample, ascending.
        config: simulator configuration shared by every point.
        sizes: packet size distribution.
        seed: workload seed (same for every point, so curves differ only
            in load).
        stop_after_saturation: how many consecutive unsustainable points
            to sample past saturation before stopping the sweep (they
            chart the latency blow-up; more adds detail but costs time).
        executor: the execution engine to route through; ``None`` uses a
            serial, uncached one.

    Returns:
        The measured series.
    """
    from repro.analysis.executor import ConfigSpec, SweepExecutor

    if isinstance(algorithm, str) and isinstance(pattern, str):
        try:
            # Raises for custom policies / unspec-able topologies, which
            # cannot cross a process boundary; fall through to the
            # direct loop for those.
            ConfigSpec.from_config(config)
            spec_string = (
                topology
                if isinstance(topology, str)
                else topology_spec(topology)
            )
        except (TypeError, ValueError):
            pass
        else:
            if executor is None:
                executor = SweepExecutor()
            return executor.sweep(
                spec_string,
                algorithm,
                pattern,
                loads,
                config=config,
                sizes=sizes,
                seed=seed,
                stop_after_saturation=stop_after_saturation,
            )

    if isinstance(topology, str):
        topology = parse_topology(topology)
    if isinstance(algorithm, str):
        algorithm = make_routing(algorithm, topology)
    if isinstance(pattern, str):
        pattern = make_pattern(pattern, topology)
    points: List[SweepPoint] = []
    past_saturation = 0
    for load in loads:
        result = simulate(
            topology,
            algorithm,
            pattern,
            offered_load=load,
            sizes=sizes,
            config=config,
            seed=seed,
        )
        point = SweepPoint.from_result(result)
        points.append(point)
        if not point.sustainable:
            past_saturation += 1
            if past_saturation >= stop_after_saturation:
                break
        else:
            past_saturation = 0
    return SweepSeries(algorithm.name, pattern.name, points)
