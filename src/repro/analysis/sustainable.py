"""Sustainable-throughput estimation.

The paper calls a throughput *sustainable* when the number of packets
queued at their source processors stays small and bounded.  Beyond the
coarse grid of a sweep, :func:`find_sustainable_load` refines the boundary
by bisection on the offered load.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.routing.base import RoutingAlgorithm
from repro.sim.config import SimulationConfig
from repro.sim.simulator import simulate
from repro.sim.stats import SimulationResult
from repro.topology.base import Topology
from repro.traffic.patterns import TrafficPattern
from repro.traffic.workload import PAPER_SIZES, SizeDistribution

__all__ = ["find_sustainable_load"]


def find_sustainable_load(
    topology: Topology,
    algorithm: Union[str, RoutingAlgorithm],
    pattern: Union[str, TrafficPattern],
    low: float = 0.01,
    high: float = 1.0,
    tolerance: float = 0.02,
    config: Optional[SimulationConfig] = None,
    sizes: SizeDistribution = PAPER_SIZES,
    seed: int = 1,
) -> tuple[float, float]:
    """Bisect for the largest sustainable offered load.

    Args:
        topology, algorithm, pattern: as for :func:`repro.sim.simulate`.
        low: a load assumed sustainable (checked; if not, (0, 0) is
            returned).
        high: a load assumed unsustainable (checked; if it sustains, it
            is returned directly).
        tolerance: bisection stops when the bracket is this narrow.
        config, sizes, seed: forwarded to the simulator.

    Returns:
        ``(load, throughput)``: the highest sustainable offered load found
        and the throughput (flits/usec) measured there.
    """
    if not low < high:
        raise ValueError(f"need low < high, got {low} >= {high}")

    def probe(load: float) -> SimulationResult:
        return simulate(
            topology, algorithm, pattern,
            offered_load=load, sizes=sizes, config=config, seed=seed,
        )

    low_result = probe(low)
    if not low_result.is_sustainable():
        return 0.0, 0.0
    high_result = probe(high)
    if high_result.is_sustainable():
        return high, high_result.throughput_flits_per_usec
    best_load, best_throughput = low, low_result.throughput_flits_per_usec
    while high - low > tolerance:
        mid = (low + high) / 2
        result = probe(mid)
        if result.is_sustainable():
            low = mid
            best_load = mid
            best_throughput = result.throughput_flits_per_usec
        else:
            high = mid
    return best_load, best_throughput
