"""Sweep benchmark harness: points/sec on a paper-scale grid (``repro bench --sweep``).

Where :mod:`repro.sim.bench` times a single engine run, this module
times the *executor*: a full (algorithm x load) grid on a 16x16 mesh,
executed three ways in the same process so the comparison is honest:

* **serial** — every point resolved from scratch in-process, no warm
  state, no pool: the pre-optimization in-process behavior.
* **cold_spawn** — one *fresh spawned worker process per point*
  (``maxtasksperchild=1``), so every point cold-starts its worker:
  boots an interpreter, re-imports the package, re-parses the
  topology, and rebuilds the routing structures.  This is the
  per-point process model — "run each point in its own process" —
  that the warm pool replaces.
* **warm_pool** — :class:`~repro.analysis.executor.SweepExecutor`
  with its persistent warm worker pool, shared route tables, and
  key-batched scheduling, at the executor's own default worker count.

Every mode must produce bit-identical results: the harness digests each
point's :class:`~repro.sim.stats.SimulationResult` and raises if the
combined digest differs between modes, so a speedup that costs
correctness fails the bench outright.  The headline ``points_per_sec``
is the warm mode's; ``speedup_warm_vs_cold`` is the number the ISSUE's
acceptance gate tracks (warm must stay >= 2x cold).

Scenario definitions are frozen, exactly like the engine bench:
changing one invalidates every recorded ``BENCH_sweep.json`` baseline,
so add scenarios instead of editing them.  Run from the CLI::

    repro bench --sweep                # writes BENCH_sweep.json
    repro bench --sweep --quick        # CI-sized grid
"""

from __future__ import annotations

import json
import multiprocessing
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.analysis.executor import (
    ConfigSpec,
    ExperimentSpec,
    PointSpec,
    SweepExecutor,
    _run_point_job,
)
from repro.sim.digest import result_digest

__all__ = [
    "SweepBenchScenario",
    "SWEEP_BENCH_SCENARIOS",
    "run_sweep_bench",
    "render_sweep_report",
    "main",
]

#: Packet sizes for every sweep-bench scenario (mean 14 flits, bimodal
#: like the paper's workload but sized for benchmark turnaround).
_BENCH_SIZES: Tuple[Tuple[int, float], ...] = ((4, 0.5), (24, 0.5))


@dataclass(frozen=True)
class SweepBenchScenario:
    """One frozen sweep-benchmark grid.

    Attributes:
        name: stable identifier (keys ``BENCH_sweep.json``).
        description: one-line summary for the report.
        topology: topology spec string.
        algorithms: routing registry names, one sweep series each.
        pattern: traffic pattern registry name.
        loads: offered loads per algorithm in full mode.
        quick_loads: the reduced grid ``--quick`` runs.
        seed: workload RNG seed shared by every point.
    """

    name: str
    description: str
    topology: str
    algorithms: Tuple[str, ...]
    pattern: str
    loads: Tuple[float, ...]
    quick_loads: Tuple[float, ...]
    seed: int = 1


SWEEP_BENCH_SCENARIOS: Dict[str, SweepBenchScenario] = {
    scenario.name: scenario
    for scenario in (
        SweepBenchScenario(
            "mesh16-grid",
            "16x16 mesh, six turn-model algorithms, uniform, "
            "loads 0.05-0.40",
            topology="mesh:16x16",
            algorithms=("xy", "yx", "west-first", "north-last",
                        "negative-first", "abopl"),
            pattern="uniform",
            loads=(0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40),
            quick_loads=(0.05, 0.30),
            seed=7,
        ),
    )
}


def _sweep_config() -> ConfigSpec:
    """The per-point simulation config every sweep-bench point uses.

    Deliberately short: this bench measures the *executor* — scheduling,
    worker cold-start amortization, shared-state reuse — so per-point
    simulation time is kept small enough that those overheads dominate,
    exactly the regime the warm pool exists for.  Engine speed has its
    own bench (:mod:`repro.sim.bench`).  Quick mode shrinks the load
    ladder instead, keeping every point's digest mode-independent.
    """
    return ConfigSpec(warmup_cycles=50, measure_cycles=150, drain_cycles=50)


def _scenario_points(
    scenario: SweepBenchScenario, quick: bool
) -> List[PointSpec]:
    """The grid as executor points, series-per-algorithm in grid order."""
    config = _sweep_config()
    loads = scenario.quick_loads if quick else scenario.loads
    points: List[PointSpec] = []
    for algorithm in scenario.algorithms:
        for index, load in enumerate(loads):
            spec = ExperimentSpec(
                topology=scenario.topology,
                routing=algorithm,
                pattern=scenario.pattern,
                load=load,
                sizes=_BENCH_SIZES,
                config=config,
                seed=scenario.seed,
            )
            points.append(PointSpec(spec=spec, series=algorithm, index=index))
    return points


def _combined_digest(digests: Iterable[str]) -> str:
    """One digest over the grid's per-point digests, in grid order."""
    import hashlib

    joined = "\n".join(digests).encode("ascii")
    return hashlib.sha256(joined).hexdigest()


def _cold_point_digest(spec: ExperimentSpec) -> str:
    """Spawn-pool worker: run one point fully cold, return its digest.

    Module-level so it pickles under the spawn start method; only the
    digest crosses back, keeping IPC out of the measurement as much as
    possible.
    """
    result, _, _, _ = _run_point_job(spec)
    return result_digest(result)


def _mode_record(wall: float, count: int) -> dict:
    return {
        "wall_seconds": wall,
        "points_per_sec": count / wall if wall > 0 else float("inf"),
    }


def _run_serial(specs: List[ExperimentSpec]) -> Tuple[List[str], float]:
    started = time.perf_counter()
    digests = [_cold_point_digest(spec) for spec in specs]
    return digests, time.perf_counter() - started


def _run_cold_spawn(specs: List[ExperimentSpec]) -> Tuple[List[str], float]:
    """Per-point cold-start workers: one fresh spawn process per point.

    ``processes=1`` keeps the chain strictly sequential — the next
    point's interpreter boot cannot hide behind the previous point's
    simulation — which is exactly the "cold-start every worker" cost
    the warm pool amortizes away.
    """
    context = multiprocessing.get_context("spawn")
    started = time.perf_counter()
    with context.Pool(processes=1, maxtasksperchild=1) as pool:
        # chunksize=1: Pool.map otherwise groups several points into one
        # "task", letting a single worker outlive maxtasksperchild's
        # intent and skip most of the cold starts being measured.
        digests = pool.map(_cold_point_digest, specs, chunksize=1)
    return list(digests), time.perf_counter() - started


def _run_warm_pool(
    points: List[PointSpec], jobs: Optional[int]
) -> Tuple[List[str], float, dict]:
    started = time.perf_counter()
    with SweepExecutor(jobs=jobs, warm=True) as executor:
        outcomes = executor.run_points(points)
        wall = time.perf_counter() - started
        metrics = executor.last_metrics
        resolved_jobs = executor.jobs
    digests = [result_digest(outcome.result) for outcome in outcomes]
    executor_stats = {
        "jobs": resolved_jobs,
        "warm_points": metrics.warm_points if metrics else 0,
        "prewarmed_keys": metrics.prewarmed_keys if metrics else 0,
        "batches": metrics.batches if metrics else 0,
    }
    return digests, wall, executor_stats


def _run_one(
    scenario: SweepBenchScenario, quick: bool, jobs: Optional[int]
) -> dict:
    points = _scenario_points(scenario, quick)
    specs = [point.spec for point in points]
    loads = scenario.quick_loads if quick else scenario.loads

    serial_digests, serial_wall = _run_serial(specs)
    cold_digests, cold_wall = _run_cold_spawn(specs)
    warm_digests, warm_wall, executor_stats = _run_warm_pool(points, jobs)

    combined = {
        "serial": _combined_digest(serial_digests),
        "cold_spawn": _combined_digest(cold_digests),
        "warm_pool": _combined_digest(warm_digests),
    }
    if len(set(combined.values())) != 1:
        raise RuntimeError(
            f"sweep bench {scenario.name!r}: execution modes disagree on "
            f"results — digests {combined!r}"
        )

    count = len(points)
    warm = _mode_record(warm_wall, count)
    warm["executor"] = executor_stats
    modes = {
        "serial": _mode_record(serial_wall, count),
        "cold_spawn": _mode_record(cold_wall, count),
        "warm_pool": warm,
    }
    cold_pps = modes["cold_spawn"]["points_per_sec"]
    serial_pps = modes["serial"]["points_per_sec"]
    warm_pps = warm["points_per_sec"]
    return {
        "description": scenario.description,
        "topology": scenario.topology,
        "algorithms": list(scenario.algorithms),
        "pattern": scenario.pattern,
        "loads": list(loads),
        "points_total": count,
        "modes": modes,
        # Headline numbers track the optimized (warm) path; the digest
        # is shared by construction (the mismatch check above).
        "wall_seconds": warm["wall_seconds"],
        "points_per_sec": warm_pps,
        "result_digest": combined["warm_pool"],
        "speedup_warm_vs_cold": warm_pps / cold_pps if cold_pps else 0.0,
        "speedup_warm_vs_serial": warm_pps / serial_pps if serial_pps else 0.0,
    }


def run_sweep_bench(
    names: Optional[Iterable[str]] = None,
    quick: bool = False,
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the named sweep scenarios (default: all); returns the payload.

    The payload maps scenario names to measurements plus a ``meta``
    block; it serializes directly to ``BENCH_sweep.json``.  ``jobs``
    is the warm executor's worker count; ``None`` uses the executor's
    own default (one per CPU), so the bench measures the product
    configuration.

    Raises:
        RuntimeError: if any scenario's serial, cold-spawn, and
            warm-pool digests disagree.
    """
    selected: List[SweepBenchScenario] = []
    for name in (names or SWEEP_BENCH_SCENARIOS):
        try:
            selected.append(SWEEP_BENCH_SCENARIOS[name])
        except KeyError:
            known = ", ".join(sorted(SWEEP_BENCH_SCENARIOS))
            raise KeyError(
                f"unknown sweep bench scenario {name!r}; known: {known}"
            )
    effective_jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    config = _sweep_config()
    payload: dict = {
        "meta": {
            "mode": "quick" if quick else "full",
            "total_cycles": config.total_cycles,
            "jobs": effective_jobs,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "scenarios": {},
    }
    for scenario in selected:
        if progress is not None:
            progress(
                f"sweep bench {scenario.name} ({scenario.description}) ..."
            )
        payload["scenarios"][scenario.name] = _run_one(scenario, quick, jobs)
    return payload


def apply_baseline(payload: dict, baseline: dict) -> None:
    """Annotate each scenario with its speedup over a recorded baseline."""
    base_scenarios = baseline.get("scenarios", baseline)
    for name, record in payload["scenarios"].items():
        base = base_scenarios.get(name)
        if not base or not base.get("points_per_sec"):
            continue
        record["baseline_points_per_sec"] = base["points_per_sec"]
        record["speedup_vs_baseline"] = (
            record["points_per_sec"] / base["points_per_sec"]
        )


def render_sweep_report(payload: dict) -> str:
    """Human-readable table of one sweep-bench payload."""
    meta = payload["meta"]
    lines = [
        f"sweep bench ({meta['mode']}, {meta['total_cycles']} cycles/point, "
        f"{meta['jobs']} jobs, python {meta['python']})",
        f"{'scenario':14s} {'points':>6s} {'serial p/s':>10s} "
        f"{'cold p/s':>10s} {'warm p/s':>10s} {'warm/cold':>9s}",
    ]
    for name, r in payload["scenarios"].items():
        modes = r["modes"]
        line = (
            f"{name:14s} {r['points_total']:6d} "
            f"{modes['serial']['points_per_sec']:10.2f} "
            f"{modes['cold_spawn']['points_per_sec']:10.2f} "
            f"{modes['warm_pool']['points_per_sec']:10.2f} "
            f"{r['speedup_warm_vs_cold']:8.2f}x"
        )
        if "speedup_vs_baseline" in r:
            line += f"   x{r['speedup_vs_baseline']:.2f} vs baseline"
        lines.append(line)
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python benchmarks/bench_sweep.py``)."""
    import argparse

    parser = argparse.ArgumentParser(description="sweep executor benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized grid (reduced load ladder)")
    parser.add_argument("--scenario", nargs="+", default=None,
                        choices=sorted(SWEEP_BENCH_SCENARIOS),
                        help="subset of scenarios to run")
    parser.add_argument("--jobs", type=int, default=None,
                        help="warm-pool worker processes "
                             "(default: one per CPU)")
    parser.add_argument("--baseline", default=None,
                        help="previous BENCH_sweep.json to compute speedups")
    parser.add_argument("--out", default="BENCH_sweep.json",
                        help="output path ('-' to skip writing)")
    args = parser.parse_args(argv)

    payload = run_sweep_bench(
        args.scenario, quick=args.quick, jobs=args.jobs,
        progress=lambda msg: print(msg, file=sys.stderr),
    )
    if args.baseline:
        with open(args.baseline) as fh:
            apply_baseline(payload, json.load(fh))
    print(render_sweep_report(payload))
    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[saved to {args.out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
