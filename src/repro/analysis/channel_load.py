"""Static channel-load analysis.

Propagates each source-destination flow through the routing relation,
splitting equally over the offered candidates at every hop, and
accumulates the expected load on every channel.  The most loaded channel
bounds the network's saturation throughput: a channel carrying ``L``
units of flow saturates when each active source injects ``1/L`` flits per
cycle.  The bound is ideal — wormhole blocking keeps real networks below
it, adaptive algorithms closer than nonadaptive ones — which is exactly
what comparing it with the simulator's measured plateaus shows.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.routing.base import RoutingAlgorithm
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId
from repro.traffic.patterns import TrafficPattern

__all__ = ["ChannelLoadReport", "channel_loads", "load_report"]


@dataclass(frozen=True)
class ChannelLoadReport:
    """Summary of a static load analysis.

    Attributes:
        max_load: flow units on the most loaded channel (one unit = one
            active source's full rate).
        mean_load: mean over channels carrying any flow.
        loaded_channels: channels carrying any flow.
        total_channels: channels in the network.
        active_sources: sources generating traffic under the pattern.
        saturation_bound: ideal per-active-source injection rate
            (flits/node/cycle) at which the hottest channel reaches unit
            utilization: ``1 / max_load``.
    """

    max_load: float
    mean_load: float
    loaded_channels: int
    total_channels: int
    active_sources: int

    @property
    def saturation_bound(self) -> float:
        if self.max_load <= 0:
            return float("inf")
        return 1.0 / self.max_load

    def __str__(self) -> str:
        return (
            f"max load {self.max_load:.2f} (saturation bound "
            f"{self.saturation_bound:.3f} flits/node/cycle), mean "
            f"{self.mean_load:.2f} over {self.loaded_channels}/"
            f"{self.total_channels} channels"
        )


def channel_loads(
    topology: Topology,
    algorithm: RoutingAlgorithm,
    pattern: TrafficPattern,
) -> Dict[Channel, float]:
    """Expected load per channel under equal-split adaptive flow.

    Each active source emits one unit of flow per destination weight; at
    every router the incoming flow divides equally among the candidates
    the algorithm offers.  Deterministic algorithms reduce to pure path
    accumulation.
    """
    loads: Dict[Channel, float] = defaultdict(float)
    for src in topology.nodes():
        for dest, weight in pattern.destination_distribution(src):
            if dest == src or weight <= 0:
                continue
            _propagate(topology, algorithm, src, dest, weight, loads)
    return dict(loads)


def _propagate(topology, algorithm, src, dest, amount, loads) -> None:
    """Push ``amount`` of flow from ``src`` to ``dest`` through the relation.

    States are processed in order of decreasing distance-to-destination,
    so each (channel, node) state's inflow is complete before it splits —
    valid for the minimal algorithms this analysis targets.
    """
    state_flow: Dict[tuple, float] = defaultdict(float)
    start = (None, src)
    state_flow[start] = amount
    counter = 0
    heap = [(-topology.distance(src, dest), counter, start)]
    seen = set()
    while heap:
        _, _, state = heapq.heappop(heap)
        if state in seen:
            continue
        seen.add(state)
        in_channel, node = state
        flow = state_flow[state]
        if node == dest or flow <= 0:
            continue
        candidates = algorithm.route(in_channel, node, dest)
        if not candidates:
            continue
        share = flow / len(candidates)
        for channel in candidates:
            loads[channel] += share
            next_state = (channel, channel.dst)
            state_flow[next_state] += share
            counter += 1
            heapq.heappush(
                heap,
                (-topology.distance(channel.dst, dest), counter, next_state),
            )


def load_report(
    topology: Topology,
    algorithm: RoutingAlgorithm,
    pattern: TrafficPattern,
) -> ChannelLoadReport:
    """Run the analysis and summarize it."""
    loads = channel_loads(topology, algorithm, pattern)
    loaded = [value for value in loads.values() if value > 1e-12]
    active = len(pattern.active_sources())
    return ChannelLoadReport(
        max_load=max(loaded) if loaded else 0.0,
        mean_load=sum(loaded) / len(loaded) if loaded else 0.0,
        loaded_channels=len(loaded),
        total_channels=topology.num_channels,
        active_sources=active,
    )
