"""Warm sweep state: shared topologies, routings, and route tables.

Every point of a sweep grid names the same handful of ``(topology,
algorithm)`` pairs, yet the executor historically rebuilt all of it per
point: re-parse the topology, reconstruct the routing algorithm, and
re-derive every routing decision the previous point had already made.
This module is the amortization layer the :class:`~repro.analysis
.executor.SweepExecutor` routes through instead:

* :class:`WarmContext` — the reusable live objects for one
  ``(topology, algorithm)`` key: the parsed topology (with its
  ``out_channels`` caches hot), the routing instance, a lazily built
  pattern cache, and a shared **raw route table** — a
  :class:`~repro.routing.cache.RouteCache` that stores unresolved
  channel tuples and therefore outlives any single simulation.  Each
  simulation layers its own per-run cache (resolving channels to its
  private :class:`~repro.sim.resources.ChannelState` objects) on top,
  so a routing state any earlier point visited never calls
  ``routing.route`` again.
* :func:`get_warm_context` — a bounded per-process context cache.  The
  executor's serial path uses it directly; worker processes populate
  their own copy, either by fork inheritance (contexts built before the
  pool forks are simply inherited) or from a serialized table shipped
  with their first batch.
* :func:`build_route_table` / :func:`serialize_route_table` /
  :func:`deserialize_route_table` — the artifact precomputation layer:
  the full ``(node, dest) -> candidates`` table for algorithms that
  provably ignore the arrival channel, encoded as a flat integer array
  over the topology's canonical node/channel order (a 16x16 mesh's
  65,280-entry table is a few hundred kilobytes, not a pickle of
  65,280 Channel tuples).

Sharing is bit-safe by construction: topologies, routing algorithms,
and traffic patterns are immutable after construction, and a cached
routing decision is a pure function of its key, so a warmed run is
indistinguishable from a cold one (the executor's identity tests and
the sweep bench enforce exactly that).  Points with a resilience spec
never share state — fault injection degrades routing mid-run, so those
points deliberately take the cold path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.routing.base import RoutingAlgorithm
from repro.routing.cache import RouteCache
from repro.routing.registry import canonical_name, make_routing
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId
from repro.traffic.patterns import TrafficPattern
from repro.traffic.permutations import make_pattern

__all__ = [
    "ROUTE_TABLE_FORMAT",
    "WarmContext",
    "warm_key",
    "get_warm_context",
    "peek_warm_context",
    "clear_warm_contexts",
    "warm_context_count",
    "build_route_table",
    "prewarm_route_table",
    "serialize_route_table",
    "deserialize_route_table",
    "load_route_table",
]

#: Version tag of the serialized route-table payload.
ROUTE_TABLE_FORMAT = 1

#: Contexts kept per process; oldest-touched is evicted beyond this.
MAX_WARM_CONTEXTS = 16

#: A warm-context key: canonical (topology spec, routing name).
WarmKey = Tuple[str, str]

#: A full precomputed route table: (node, dest) -> candidate channels.
RouteTable = Dict[Tuple[NodeId, NodeId], Tuple[Channel, ...]]


def warm_key(topology: str, routing: str) -> WarmKey:
    """The canonical context key for a (topology spec, routing name)."""
    return (topology.strip().lower(), canonical_name(routing))


class WarmContext:
    """Reusable state for every point sharing one (topology, routing).

    Attributes:
        key: the canonical ``(topology spec, routing name)`` pair.
        topology: the parsed topology (shared; immutable).
        routing: the routing algorithm instance (shared; immutable).
        route_source: shared raw route cache — unresolved candidate
            tuples accumulated across every run that used this context,
            or ``None`` for uncacheable algorithms.
    """

    __slots__ = ("key", "topology", "routing", "route_source", "_patterns")

    def __init__(self, key: WarmKey, topology: Topology,
                 routing: RoutingAlgorithm) -> None:
        self.key = key
        self.topology = topology
        self.routing = routing
        self.route_source: Optional[RouteCache] = (
            RouteCache(routing)
            if getattr(routing, "cacheable", True)
            else None
        )
        self._patterns: Dict[str, TrafficPattern] = {}

    def pattern(self, name: str) -> TrafficPattern:
        """The shared pattern instance for ``name`` (patterns are
        stateless — every RNG they use is passed in per call)."""
        canonical = canonical_name(name)
        pattern = self._patterns.get(canonical)
        if pattern is None:
            pattern = make_pattern(canonical, self.topology)
            self._patterns[canonical] = pattern
        return pattern

    @property
    def prewarmable(self) -> bool:
        """Whether the full (node, dest) table can be precomputed —
        the algorithm must be pure *and* provably ignore the arrival
        channel (otherwise the table is keyed on in-channel and is only
        worth filling lazily)."""
        return (
            self.route_source is not None
            and not getattr(self.routing, "uses_in_channel", True)
        )

    def __repr__(self) -> str:
        entries = len(self.route_source) if self.route_source else 0
        return f"WarmContext({self.key!r}, table_entries={entries})"


_CONTEXTS: Dict[WarmKey, WarmContext] = {}


def get_warm_context(topology: str, routing: str) -> WarmContext:
    """The process-wide warm context for a (topology, routing) pair.

    Builds and caches it on first request; later requests return the
    same object, so its route table keeps accumulating.  The cache is
    bounded (:data:`MAX_WARM_CONTEXTS`); the least recently requested
    context is dropped beyond that.
    """
    from repro.topology.spec import parse_topology

    key = warm_key(topology, routing)
    context = _CONTEXTS.pop(key, None)
    if context is None:
        parsed = parse_topology(key[0])
        context = WarmContext(key, parsed, make_routing(key[1], parsed))
    _CONTEXTS[key] = context  # re-insert: dict order doubles as LRU
    while len(_CONTEXTS) > MAX_WARM_CONTEXTS:
        del _CONTEXTS[next(iter(_CONTEXTS))]
    return context


def peek_warm_context(topology: str, routing: str) -> Optional[WarmContext]:
    """The cached context for a pair, or ``None`` — never builds one."""
    return _CONTEXTS.get(warm_key(topology, routing))


def clear_warm_contexts() -> None:
    """Drop every cached context (tests; long-lived servers)."""
    _CONTEXTS.clear()


def warm_context_count() -> int:
    """How many contexts this process currently caches."""
    return len(_CONTEXTS)


def build_route_table(routing: RoutingAlgorithm) -> RouteTable:
    """Every routing decision of an arrival-channel-blind algorithm.

    Computes ``routing.route(None, node, dest)`` for all ordered node
    pairs — the complete decision table a sweep will ever consult.

    Raises:
        ValueError: if the algorithm is not cacheable or reads the
            arrival channel (its table is not a function of
            ``(node, dest)``).
    """
    if not getattr(routing, "cacheable", True):
        raise ValueError(
            f"{routing.name} declares cacheable=False; its decisions "
            "cannot be tabulated"
        )
    if getattr(routing, "uses_in_channel", True):
        raise ValueError(
            f"{routing.name} reads the arrival channel; its table is "
            "not a function of (node, dest)"
        )
    nodes = list(routing.topology.nodes())
    route = routing.route
    table: RouteTable = {}
    for node in nodes:
        for dest in nodes:
            if node != dest:
                table[(node, dest)] = tuple(route(None, node, dest))
    return table


def prewarm_route_table(context: WarmContext) -> int:
    """Eagerly fill the context's shared route table.

    No-op (returning 0) unless the context is :attr:`~WarmContext
    .prewarmable`; otherwise builds the full table once — later calls
    return immediately because the table is already complete.

    Returns:
        The number of entries added.
    """
    if not context.prewarmable:
        return 0
    source = context.route_source
    assert source is not None
    nodes_total = len(list(context.topology.nodes()))
    complete = nodes_total * (nodes_total - 1)
    if len(source) >= complete:
        return 0
    before = len(source)
    source.prefill(build_route_table(context.routing))
    return len(source) - before


def serialize_route_table(topology: Topology, table: RouteTable) -> dict:
    """Encode a full route table as a flat integer array.

    Nodes and channels are replaced by their indices in the topology's
    canonical ``nodes()`` / ``channels()`` iteration order, which every
    process reconstructs identically from the topology spec alone.  The
    payload is pure primitives, so it pickles to workers (or dumps to
    JSON) compactly.
    """
    node_index = {node: i for i, node in enumerate(topology.nodes())}
    channel_index = {ch: i for i, ch in enumerate(topology.channels())}
    flat: List[int] = []
    for (node, dest), channels in table.items():
        flat.append(node_index[node])
        flat.append(node_index[dest])
        flat.append(len(channels))
        flat.extend(channel_index[ch] for ch in channels)
    return {"format": ROUTE_TABLE_FORMAT, "entries": flat}


def deserialize_route_table(topology: Topology, payload: dict) -> RouteTable:
    """Rebuild a route table serialized by :func:`serialize_route_table`.

    The returned channel tuples reference ``topology``'s own channel
    objects, so the table plugs straight into a :class:`RouteCache`
    built over the same topology instance.
    """
    if payload.get("format") != ROUTE_TABLE_FORMAT:
        raise ValueError(
            f"unsupported route-table format {payload.get('format')!r}"
        )
    nodes = list(topology.nodes())
    channels = list(topology.channels())
    flat = payload["entries"]
    table: RouteTable = {}
    pos = 0
    end = len(flat)
    while pos < end:
        node = nodes[flat[pos]]
        dest = nodes[flat[pos + 1]]
        count = flat[pos + 2]
        pos += 3
        table[(node, dest)] = tuple(
            channels[index] for index in flat[pos:pos + count]
        )
        pos += count
    return table


def load_route_table(context: WarmContext, payload: dict) -> int:
    """Install a serialized table into a context's shared route cache.

    Entries the context already derived on its own are kept (they are
    identical by purity); only missing ones are added.  No-op for
    contexts that cannot host a (node, dest) table.

    Returns:
        The number of entries added.
    """
    if not context.prewarmable:
        return 0
    source = context.route_source
    assert source is not None
    before = len(source)
    source.prefill(deserialize_route_table(context.topology, payload))
    return len(source) - before
