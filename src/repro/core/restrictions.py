"""Turn restrictions: the output of the turn model.

A :class:`TurnRestriction` records which turns a routing algorithm may use.
Step 4 of the model prohibits one 90-degree turn per abstract cycle; Step 6
adds back as many 180-degree turns as possible.  Continuing straight ahead
is never a turn and is always permitted, and a packet's first hop out of its
source (no previous direction) is unrestricted.

The named restrictions of Sections 3-5 are provided as constructors:
west-first, north-last, and negative-first for 2D meshes, and their
n-dimensional analogs ABONF, ABOPL, and negative-first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence

from repro.core.directions import Direction, EAST, NORTH, SOUTH, WEST
from repro.core.turns import Turn, TurnKind, abstract_cycles, ninety_degree_turns

__all__ = [
    "turn_to_payload",
    "turn_from_payload",
    "TurnRestriction",
    "fully_adaptive",
    "xy_restriction",
    "west_first_restriction",
    "north_last_restriction",
    "negative_first_restriction",
    "abonf_restriction",
    "abopl_restriction",
    "figure4_restriction",
]


def turn_to_payload(turn: Turn) -> List[int]:
    """A turn as four plain integers: ``[frm.dim, frm.sign, to.dim, to.sign]``.

    The JSON-ready encoding restriction serialization and synthesis
    artifacts share; inverse of :func:`turn_from_payload`.
    """
    return [turn.frm.dim, turn.frm.sign, turn.to.dim, turn.to.sign]


def turn_from_payload(payload: Sequence[int]) -> Turn:
    """Rebuild a turn encoded by :func:`turn_to_payload`."""
    if len(payload) != 4:
        raise ValueError(f"turn payload needs 4 integers, got {list(payload)!r}")
    frm_dim, frm_sign, to_dim, to_sign = (int(part) for part in payload)
    return Turn(Direction(frm_dim, frm_sign), Direction(to_dim, to_sign))


def _sorted_payloads(turns: Iterable[Turn]) -> List[List[int]]:
    return [turn_to_payload(turn) for turn in sorted(turns)]


@dataclass(frozen=True)
class TurnRestriction:
    """The set of turns a routing algorithm is permitted to make.

    Attributes:
        n_dims: dimensionality of the network the restriction applies to.
        prohibited: the prohibited 90-degree turns.
        allowed_reversals: the 180-degree turns explicitly permitted
            (Step 6 of the model); all other reversals are prohibited.
        name: optional human-readable label.
    """

    n_dims: int
    prohibited: FrozenSet[Turn]
    allowed_reversals: FrozenSet[Turn] = frozenset()
    name: str = ""

    def __post_init__(self) -> None:
        for turn in self.prohibited:
            if not turn.is_ninety_degree:
                raise ValueError(f"prohibited set must hold 90-degree turns: {turn}")
            self._check_dims(turn)
        for turn in self.allowed_reversals:
            if turn.kind != TurnKind.ONE_EIGHTY:
                raise ValueError(f"reversal set must hold 180-degree turns: {turn}")
            self._check_dims(turn)

    def _check_dims(self, turn: Turn) -> None:
        if turn.frm.dim >= self.n_dims or turn.to.dim >= self.n_dims:
            raise ValueError(f"turn {turn} exceeds {self.n_dims} dimensions")

    def permits(self, frm: Optional[Direction], to: Direction) -> bool:
        """Whether a packet travelling in ``frm`` may next travel in ``to``.

        ``frm is None`` means the packet is leaving its source node, which
        is always permitted.  Continuing straight (``frm == to``) is not a
        turn and is always permitted.
        """
        if frm is None or frm == to:
            return True
        turn = Turn(frm, to)
        if turn.kind == TurnKind.ONE_EIGHTY:
            return turn in self.allowed_reversals
        return turn not in self.prohibited

    def permits_turn(self, turn: Turn) -> bool:
        """Whether the given turn is permitted."""
        return self.permits(turn.frm, turn.to)

    @property
    def allowed(self) -> FrozenSet[Turn]:
        """The permitted 90-degree turns."""
        return frozenset(
            turn for turn in ninety_degree_turns(self.n_dims)
            if turn not in self.prohibited
        )

    def breaks_every_abstract_cycle(self) -> bool:
        """Whether at least one turn in every abstract cycle is prohibited.

        This is the *necessary* condition of Step 4; it is not sufficient
        (Figure 4 shows two prohibited turns, one per cycle, that still
        deadlock).  Sufficiency is established by the channel-dependency
        check in :mod:`repro.core.channel_graph`.
        """
        return all(
            any(turn in self.prohibited for turn in cycle)
            for cycle in abstract_cycles(self.n_dims)
        )

    def with_reversals(self, reversals: Iterable[Turn]) -> "TurnRestriction":
        """A copy with additional 180-degree turns permitted."""
        return TurnRestriction(
            self.n_dims,
            self.prohibited,
            self.allowed_reversals | frozenset(reversals),
            self.name,
        )

    def with_name(self, name: str) -> "TurnRestriction":
        """A copy carrying the given label."""
        return TurnRestriction(
            self.n_dims, self.prohibited, self.allowed_reversals, name
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict; inverse of :meth:`from_dict`.

        Turn sets are emitted in sorted order, so equal restrictions
        serialize byte-identically — the property synthesis artifacts
        and content hashes rely on.
        """
        return {
            "n_dims": self.n_dims,
            "prohibited": _sorted_payloads(self.prohibited),
            "allowed_reversals": _sorted_payloads(self.allowed_reversals),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TurnRestriction":
        """Rebuild a restriction saved by :meth:`to_dict`."""
        return cls(
            n_dims=int(payload["n_dims"]),
            prohibited=frozenset(
                turn_from_payload(turn) for turn in payload["prohibited"]
            ),
            allowed_reversals=frozenset(
                turn_from_payload(turn)
                for turn in payload.get("allowed_reversals", ())
            ),
            name=str(payload.get("name", "")),
        )

    def __str__(self) -> str:
        label = self.name or "restriction"
        turns = ", ".join(sorted(str(t) for t in self.prohibited))
        return f"{label}(prohibits: {turns})"


def fully_adaptive(n_dims: int) -> TurnRestriction:
    """No turns prohibited: fully adaptive, and *not* deadlock free.

    Useful as a negative control — the deadlock checker must reject it —
    and for counting shortest paths of a fully adaptive algorithm.
    """
    return TurnRestriction(n_dims, frozenset(), name="fully-adaptive")


def figure4_restriction() -> TurnRestriction:
    """Figure 4's faulty prohibition: two turns that do *not* stop deadlock.

    Prohibiting a turn together with its inverse (here east-to-south and
    south-to-east) nominally breaks each abstract cycle, but the three
    left turns remaining in one cycle are equivalent to the prohibited
    right turn of the other, so both cycles survive and deadlock remains
    possible (Figure 4c).  Kept as a negative control: the Dally-Seitz
    checker must reject it and the simulator's deadlock detector fires on
    it.
    """
    prohibited = frozenset((Turn(EAST, SOUTH), Turn(SOUTH, EAST)))
    return TurnRestriction(2, prohibited, name="figure-4-faulty")


def xy_restriction() -> TurnRestriction:
    """The xy routing restriction for 2D meshes.

    xy routing travels along x before y, which prohibits the four turns
    out of the y dimension back into the x dimension (paper, Figure 3).
    """
    prohibited = frozenset(
        Turn(frm, to) for frm in (NORTH, SOUTH) for to in (EAST, WEST)
    )
    return TurnRestriction(2, prohibited, name="xy")


def west_first_restriction() -> TurnRestriction:
    """West-first: prohibit the two turns to the west (Figure 5a).

    To travel west a packet must start out west, so westward hops all come
    first; afterwards routing is adaptive among south, east, and north.
    The reversal west->east is safe (a packet done with its westward phase
    may double back east for nonminimal routing) and is permitted.
    """
    prohibited = frozenset((Turn(NORTH, WEST), Turn(SOUTH, WEST)))
    return TurnRestriction(
        2, prohibited, frozenset((Turn(WEST, EAST),)), name="west-first"
    )


def north_last_restriction() -> TurnRestriction:
    """North-last: prohibit the two turns when travelling north (Figure 9a).

    A packet travels north only as its final direction; beforehand routing
    is adaptive among west, south, and east.  The reversals south->north
    and west->east are safe and permitted.
    """
    prohibited = frozenset((Turn(NORTH, WEST), Turn(NORTH, EAST)))
    return TurnRestriction(
        2,
        prohibited,
        frozenset((Turn(SOUTH, NORTH), Turn(WEST, EAST))),
        name="north-last",
    )


def negative_first_restriction(n_dims: int = 2) -> TurnRestriction:
    """Negative-first: prohibit every positive-to-negative turn.

    For 2D these are the two turns from a positive direction to a negative
    one (Figure 10a); for n dimensions there are ``n (n-1)`` of them —
    exactly the Theorem 1 minimum, which is why negative-first witnesses
    the sufficiency half of Theorem 6.  All negative-to-positive reversals
    are safe and permitted.
    """
    prohibited = frozenset(
        Turn(Direction(i, 1), Direction(j, -1))
        for i in range(n_dims)
        for j in range(n_dims)
        if i != j
    )
    reversals = frozenset(
        Turn(Direction(i, -1), Direction(i, 1)) for i in range(n_dims)
    )
    return TurnRestriction(n_dims, prohibited, reversals, name="negative-first")


def abonf_restriction(n_dims: int) -> TurnRestriction:
    """All-but-one-negative-first, the n-dim analog of west-first.

    Route first adaptively in the negative directions of all but one
    dimension (we keep dimension ``n-1`` out of the first phase, matching
    the paper's parenthetical), then adaptively in the other directions.
    Prohibited turns: from any second-phase direction into a first-phase
    (negative, dim < n-1) direction.  Reversals out of the first phase
    (negative to positive within a first-phase dimension) are safe.

    For ``n_dims == 2`` this is exactly west-first.
    """
    first_phase = [Direction(d, -1) for d in range(n_dims - 1)]
    second_phase = [Direction(d, 1) for d in range(n_dims)]
    second_phase.append(Direction(n_dims - 1, -1))
    prohibited = frozenset(
        Turn(frm, to)
        for frm in second_phase
        for to in first_phase
        if frm.dim != to.dim
    )
    reversals = frozenset(Turn(d, d.opposite) for d in first_phase)
    return TurnRestriction(
        n_dims, prohibited, reversals, name="all-but-one-negative-first"
    )


def abopl_restriction(n_dims: int) -> TurnRestriction:
    """All-but-one-positive-last, the n-dim analog of north-last.

    Route first adaptively in all the negative directions plus the
    positive direction of dimension 0, then adaptively in the remaining
    positive directions.  Prohibited turns: from a positive direction of a
    dimension other than 0 back into any first-phase direction — exactly
    ``n`` turns from each of the ``n - 1`` second-phase directions, i.e.
    the Theorem 1 minimum ``n (n-1)``.  The reversals negative-to-positive
    are safe and permitted.

    For ``n_dims == 2`` this is exactly north-last (the single last
    direction is +y, i.e. north).
    """
    second_phase = [Direction(d, 1) for d in range(1, n_dims)]
    first_phase = [Direction(d, -1) for d in range(n_dims)]
    first_phase.append(Direction(0, 1))
    prohibited = frozenset(
        Turn(frm, to)
        for frm in second_phase
        for to in first_phase
        if frm.dim != to.dim
    )
    reversals = frozenset(
        Turn(Direction(d, -1), Direction(d, 1)) for d in range(n_dims)
    )
    return TurnRestriction(
        n_dims, prohibited, reversals, name="all-but-one-positive-last"
    )
