"""Channel numbering schemes certifying deadlock freedom.

The deadlock-freedom proofs of Theorems 2, 3, and 5 follow Dally and
Seitz: number the channels so that the algorithm routes every packet along
channels with strictly decreasing (or increasing) numbers.  This module
constructs such numberings and provides :func:`certifies`, which checks the
monotonicity property exhaustively against a routing relation — turning the
paper's proofs into executable certificates.

Numbers are built from two-digit ``(a, b)`` pairs compared lexicographically
and flattened to integers, mirroring the base-r two-digit numbers of the
Theorem 2 proof (Figures 6 and 7).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Tuple

from repro.core.channel_graph import RouteFn, routing_cdg
from repro.core.digraph import Digraph
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId
from repro.topology.mesh import Mesh2D

__all__ = [
    "west_first_numbering",
    "north_last_numbering",
    "negative_first_numbering",
    "potential_numbering",
    "topological_numbering",
    "certifies",
    "numbering_violations",
]

#: A channel numbering: channel -> integer.
Numbering = Mapping[Channel, int]


def west_first_numbering(mesh: Mesh2D) -> Dict[Channel, int]:
    """Channel numbers under which west-first routes strictly *decrease*.

    Westward channels get the highest numbers, decreasing the farther west
    they are (a packet travels west first, along decreasing numbers); the
    second phase's eastward, northward, and southward channels get still
    lower numbers, decreasing the farther east.  This realizes the scheme
    of the Theorem 2 proof.
    """
    m, n = mesh.m, mesh.n
    radix = n + 1
    numbers: Dict[Channel, int] = {}
    for channel in mesh.channels():
        x, y = channel.src
        direction = channel.direction
        if direction.dim == 0 and direction.is_negative:  # west
            a, b = 3 * m + 4 + x, n
        elif direction.dim == 0:  # east
            a, b = 3 * m - 3 * x, n
        elif direction.is_positive:  # north
            a, b = 3 * m - 3 * x + 1, n - 1 - y
        else:  # south
            a, b = 3 * m - 3 * x + 1, y
        numbers[channel] = a * radix + b
    return numbers


def north_last_numbering(mesh: Mesh2D) -> Dict[Channel, int]:
    """Channel numbers under which north-last routes strictly *increase*.

    Theorem 3's proof rotates the west-first numbering and reverses the
    channel directions; this is the resulting scheme written out directly.
    Northward channels get the highest numbers, increasing the farther
    north; the adaptive first phase's rows are numbered in increasing
    blocks from north to south, with westward channels below eastward ones
    within a row so the west-to-east reversal stays monotone.
    """
    m, n = mesh.m, mesh.n
    radix = m + 1
    numbers: Dict[Channel, int] = {}
    for channel in mesh.channels():
        x, y = channel.src
        direction = channel.direction
        if direction.dim == 1 and direction.is_positive:  # north
            a, b = 4 * n + y, 0
        elif direction.dim == 1:  # south
            a, b = 4 * (n - 1 - y) + 2, 0
        elif direction.is_negative:  # west
            a, b = 4 * (n - 1 - y), m - 1 - x
        else:  # east
            a, b = 4 * (n - 1 - y) + 1, x
        numbers[channel] = a * radix + b
    return numbers


def negative_first_numbering(topology: Topology) -> Dict[Channel, int]:
    """The Theorem 5 numbering, under which negative-first *increases*.

    Let ``K`` be the sum of the dimension radixes and ``X`` the coordinate
    sum of the node a channel leaves.  Positive-direction channels are
    numbered ``K - n + X`` and negative-direction channels ``K - n - X``.
    Distinct channels may share a number; the Dally-Seitz argument only
    needs every routing step to strictly increase, which it does: a
    negative hop enters on ``K - n - X - 1`` and leaves on ``K - n - X``
    or ``K - n + X``, and a positive hop enters on ``K - n + X - 1`` and
    may only continue positively on ``K - n + X``.

    Works verbatim for hypercubes, where p-cube routing is the special
    case of negative-first (Section 5).
    """
    big_k = sum(topology.shape)
    n = topology.n_dims
    numbers: Dict[Channel, int] = {}
    for channel in topology.channels():
        x_sum = sum(channel.src)
        if channel.direction.is_positive:
            numbers[channel] = big_k - n + x_sum
        else:
            numbers[channel] = big_k - n - x_sum
    return numbers


def potential_numbering(topology: Topology, potential) -> Dict[Channel, int]:
    """Generalize Theorem 5's numbering to an arbitrary node potential.

    Given a potential ``phi`` that strictly increases across every
    positive-signed channel and strictly decreases across every
    negative-signed one, number descending channels ``B - phi(src)`` and
    ascending channels ``B + phi(src)``.  Any negative-first-style
    algorithm over that potential (all descents before any ascent) routes
    along strictly increasing numbers — Theorem 5 is the special case
    ``phi = coordinate sum``, and the hexagonal and octagonal
    negative-first algorithms of Section 7's future-work topologies are
    certified by their own potentials.

    Args:
        topology: the network.
        potential: callable mapping a node to an integer potential; every
            channel must change it (raises otherwise).

    Returns:
        The channel numbering.
    """
    values = {node: potential(node) for node in topology.nodes()}
    # Shift so the potential is non-negative: the descend-to-ascend
    # transition needs B - phi(u) < B + phi(v) for every phi(v) >= 0.
    shift = min(values.values())
    values = {node: value - shift for node, value in values.items()}
    base = max(values.values()) + 1
    numbers: Dict[Channel, int] = {}
    for channel in topology.channels():
        before = values[channel.src]
        after = values[channel.dst]
        if after == before:
            raise ValueError(
                f"potential does not separate channel {channel}: {before}"
            )
        if after < before:
            numbers[channel] = base - before
        else:
            numbers[channel] = base + before
    return numbers


def topological_numbering(graph: Digraph) -> Dict[Channel, int]:
    """Number the channels of an acyclic dependency graph topologically.

    Dally and Seitz's theorem runs both ways: an acyclic channel
    dependency graph always *admits* a numbering under which every
    routing step strictly increases — any topological order is one.
    This is the generic certificate constructor the verifier falls back
    on when no closed-form Theorem 2-5 numbering applies (torus, hex,
    oct, and virtual-channel algorithms).

    Args:
        graph: an acyclic channel dependency graph whose vertices are
            channels.

    Returns:
        A channel numbering under which every edge strictly increases.

    Raises:
        ValueError: if the graph has a cycle (no such numbering exists).
    """
    order = graph.topological_order()
    return {channel: position for position, channel in enumerate(order)}


def certifies(
    topology: Topology,
    route_fn: RouteFn,
    numbering: Numbering,
    order: str = "decreasing",
) -> bool:
    """Whether a numbering certifies a routing relation deadlock free.

    Checks that every *realizable* routing step — every edge of the exact
    channel dependency graph — moves to a strictly lower (or higher)
    numbered channel.

    Args:
        topology: the network.
        route_fn: the routing relation to certify.
        numbering: channel numbers.
        order: ``"decreasing"`` or ``"increasing"``.

    Returns:
        True if every dependency is strictly monotone in the given order.
    """
    return not numbering_violations(topology, route_fn, numbering, order)


def numbering_violations(
    topology: Topology,
    route_fn: RouteFn,
    numbering: Numbering,
    order: str = "decreasing",
) -> List[Tuple[Channel, Channel]]:
    """The realizable routing steps that break a numbering's monotonicity.

    The constructive counterpart of :func:`certifies`: instead of a bare
    boolean, returns every edge of the exact channel dependency graph that
    fails to move strictly in the given order — empty exactly when the
    numbering certifies the relation.  The verifier uses this both to
    validate closed-form numberings before embedding them in certificates
    and to report *which* dependencies a broken numbering misses.

    Args:
        topology: the network.
        route_fn: the routing relation.
        numbering: channel numbers.
        order: ``"decreasing"`` or ``"increasing"``.

    Returns:
        The violating ``(holding channel, requested channel)`` pairs.
    """
    if order not in ("decreasing", "increasing"):
        raise ValueError(f"order must be 'decreasing' or 'increasing': {order!r}")
    graph = routing_cdg(topology, route_fn)
    violations: List[Tuple[Channel, Channel]] = []
    for in_channel, out_channel in graph.edges():
        before = numbering[in_channel]
        after = numbering[out_channel]
        if order == "decreasing" and not after < before:
            violations.append((in_channel, out_channel))
        if order == "increasing" and not after > before:
            violations.append((in_channel, out_channel))
    return violations
