"""The turn model: directions, turns, cycles, restrictions, and proofs.

This package implements the paper's primary contribution (Section 2): the
six-step procedure for deriving deadlock-free, livelock-free, maximally
adaptive wormhole routing algorithms by prohibiting the minimum number of
turns, together with the supporting theory — the Dally-Seitz channel
dependency test, the channel numbering certificates of Theorems 2/3/5, and
the degree-of-adaptiveness formulas of Sections 3.4, 4.1, and 5.

The submodules that operate on concrete topologies (``channel_graph``,
``model``, ``numbering``, ``adaptiveness``) are re-exported lazily so that
``repro.topology`` can import the direction algebra without a circular
import.
"""

from repro.core.digraph import Digraph
from repro.core.directions import EAST, NORTH, SOUTH, WEST, Direction, all_directions
from repro.core.restrictions import (
    TurnRestriction,
    abonf_restriction,
    abopl_restriction,
    fully_adaptive,
    negative_first_restriction,
    north_last_restriction,
    turn_from_payload,
    turn_to_payload,
    west_first_restriction,
    xy_restriction,
)
from repro.core.turns import (
    Turn,
    abstract_cycles,
    all_turns,
    minimum_prohibited_turns,
    ninety_degree_turns,
)

#: Lazily re-exported names and the submodules providing them (these
#: submodules import repro.topology, which imports this package).
_LAZY = {
    "turn_cdg": "channel_graph",
    "routing_cdg": "channel_graph",
    "find_dependency_cycle": "channel_graph",
    "CycleWitness": "channel_graph",
    "is_deadlock_free": "channel_graph",
    "restriction_is_deadlock_free": "channel_graph",
    "RouteFn": "channel_graph",
    "TurnModel": "model",
    "mesh_symmetries_2d": "model",
    "signed_permutation_symmetries": "model",
    "apply_symmetry": "model",
    "symmetry_classes": "model",
    "west_first_numbering": "numbering",
    "north_last_numbering": "numbering",
    "negative_first_numbering": "numbering",
    "certifies": "numbering",
    "numbering_violations": "numbering",
    "potential_numbering": "numbering",
    "topological_numbering": "numbering",
    "multinomial": "adaptiveness",
    "s_fully_adaptive": "adaptiveness",
    "s_west_first": "adaptiveness",
    "s_north_last": "adaptiveness",
    "s_negative_first": "adaptiveness",
    "s_abonf": "adaptiveness",
    "s_abopl": "adaptiveness",
    "s_pcube": "adaptiveness",
    "s_ecube": "adaptiveness",
    "pcube_adaptiveness_ratio": "adaptiveness",
    "count_shortest_paths": "adaptiveness",
    "average_adaptiveness_ratio": "adaptiveness",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value
    return value


__all__ = [
    "Direction",
    "all_directions",
    "WEST",
    "EAST",
    "SOUTH",
    "NORTH",
    "Turn",
    "all_turns",
    "ninety_degree_turns",
    "abstract_cycles",
    "minimum_prohibited_turns",
    "TurnRestriction",
    "turn_to_payload",
    "turn_from_payload",
    "fully_adaptive",
    "xy_restriction",
    "west_first_restriction",
    "north_last_restriction",
    "negative_first_restriction",
    "abonf_restriction",
    "abopl_restriction",
    "Digraph",
    "CycleWitness",
    "RouteFn",
    "TurnModel",
    "apply_symmetry",
    "average_adaptiveness_ratio",
    "certifies",
    "count_shortest_paths",
    "find_dependency_cycle",
    "is_deadlock_free",
    "mesh_symmetries_2d",
    "multinomial",
    "negative_first_numbering",
    "north_last_numbering",
    "numbering_violations",
    "pcube_adaptiveness_ratio",
    "potential_numbering",
    "restriction_is_deadlock_free",
    "routing_cdg",
    "s_abonf",
    "s_abopl",
    "s_ecube",
    "s_fully_adaptive",
    "s_negative_first",
    "s_north_last",
    "s_pcube",
    "s_west_first",
    "signed_permutation_symmetries",
    "symmetry_classes",
    "topological_numbering",
    "turn_cdg",
    "west_first_numbering",
]

assert set(__all__) >= set(_LAZY), "lazy re-exports missing from __all__"
