"""Minimal directed-graph utilities used by the deadlock analysis.

The channel dependency graph of a 16x16 mesh has about a thousand vertices
and a few thousand edges, so a simple adjacency-set digraph with an
iterative cycle search is all the core needs.  (Tests cross-check these
routines against networkx.)
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set

__all__ = ["Digraph"]


class Digraph:
    """A directed graph over hashable vertices."""

    def __init__(self) -> None:
        self._succ: Dict[Hashable, Set[Hashable]] = {}

    def add_vertex(self, v: Hashable) -> None:
        """Add ``v`` if not already present."""
        self._succ.setdefault(v, set())

    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Add the edge ``u -> v``, adding the endpoints as needed."""
        self.add_vertex(u)
        self.add_vertex(v)
        self._succ[u].add(v)

    def vertices(self) -> List[Hashable]:
        return list(self._succ)

    def successors(self, v: Hashable) -> Set[Hashable]:
        return set(self._succ.get(v, ()))

    @property
    def num_vertices(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        return v in self._succ.get(u, ())

    def edges(self) -> Iterable[tuple[Hashable, Hashable]]:
        for u, succ in self._succ.items():
            for v in succ:
                yield u, v

    def find_cycle(self) -> Optional[List[Hashable]]:
        """Find a directed cycle, or return ``None`` if the graph is acyclic.

        Returns:
            The vertices of one cycle in order (first vertex not repeated
            at the end), or ``None``.  Uses an iterative three-color DFS,
            so it is safe on graphs far deeper than the Python recursion
            limit.
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {v: WHITE for v in self._succ}
        parent: Dict[Hashable, Hashable] = {}
        for root in self._succ:
            if color[root] != WHITE:
                continue
            stack: List[tuple[Hashable, Iterable[Hashable]]] = [
                (root, iter(self._succ[root]))
            ]
            color[root] = GRAY
            while stack:
                vertex, children = stack[-1]
                advanced = False
                for child in children:
                    if color[child] == WHITE:
                        color[child] = GRAY
                        parent[child] = vertex
                        stack.append((child, iter(self._succ[child])))
                        advanced = True
                        break
                    if color[child] == GRAY:
                        cycle = [vertex]
                        node = vertex
                        while node != child:
                            node = parent[node]
                            cycle.append(node)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[vertex] = BLACK
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        """Whether the graph contains no directed cycle."""
        return self.find_cycle() is None

    def topological_order(self) -> List[Hashable]:
        """A topological order of the vertices.

        Raises:
            ValueError: if the graph has a cycle.
        """
        in_degree = {v: 0 for v in self._succ}
        for _, v in self.edges():
            in_degree[v] += 1
        ready = [v for v, deg in in_degree.items() if deg == 0]
        order: List[Hashable] = []
        while ready:
            v = ready.pop()
            order.append(v)
            for w in self._succ[v]:
                in_degree[w] -= 1
                if in_degree[w] == 0:
                    ready.append(w)
        if len(order) != len(self._succ):
            raise ValueError("graph has a cycle; no topological order exists")
        return order
