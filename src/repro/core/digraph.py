"""Minimal directed-graph utilities used by the deadlock analysis.

The channel dependency graph of a 16x16 mesh has about a thousand vertices
and a few thousand edges, so a simple adjacency-set digraph with an
iterative cycle search is all the core needs.  (Tests cross-check these
routines against networkx.)
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterator, List, Optional, Set, Tuple, TypeVar

__all__ = ["Digraph"]

V = TypeVar("V", bound=Hashable)


class Digraph(Generic[V]):
    """A directed graph over hashable vertices."""

    def __init__(self) -> None:
        self._succ: Dict[V, Set[V]] = {}

    def add_vertex(self, v: V) -> None:
        """Add ``v`` if not already present."""
        self._succ.setdefault(v, set())

    def add_edge(self, u: V, v: V) -> None:
        """Add the edge ``u -> v``, adding the endpoints as needed."""
        self.add_vertex(u)
        self.add_vertex(v)
        self._succ[u].add(v)

    def vertices(self) -> List[V]:
        return list(self._succ)

    def successors(self, v: V) -> Set[V]:
        return set(self._succ.get(v, ()))

    @property
    def num_vertices(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def has_edge(self, u: V, v: V) -> bool:
        return v in self._succ.get(u, ())

    def edges(self) -> Iterator[Tuple[V, V]]:
        for u, succ in self._succ.items():
            for v in succ:
                yield u, v

    def find_cycle(self) -> Optional[List[V]]:
        """Find a directed cycle, or return ``None`` if the graph is acyclic.

        Returns:
            The vertices of one cycle in order (first vertex not repeated
            at the end), or ``None``.  Uses an iterative three-color DFS,
            so it is safe on graphs far deeper than the Python recursion
            limit.
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {v: WHITE for v in self._succ}
        parent: Dict[V, V] = {}
        for root in self._succ:
            if color[root] != WHITE:
                continue
            stack: List[Tuple[V, Iterator[V]]] = [
                (root, iter(self._succ[root]))
            ]
            color[root] = GRAY
            while stack:
                vertex, children = stack[-1]
                advanced = False
                for child in children:
                    if color[child] == WHITE:
                        color[child] = GRAY
                        parent[child] = vertex
                        stack.append((child, iter(self._succ[child])))
                        advanced = True
                        break
                    if color[child] == GRAY:
                        cycle = [vertex]
                        node = vertex
                        while node != child:
                            node = parent[node]
                            cycle.append(node)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[vertex] = BLACK
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        """Whether the graph contains no directed cycle."""
        return self.find_cycle() is None

    def shortest_cycle(self) -> Optional[List[V]]:
        """A shortest directed cycle, or ``None`` if the graph is acyclic.

        Runs one BFS per vertex, so it costs ``O(V (V + E))`` — fine for
        the witness-extraction path, which only runs after a cycle is
        known to exist.  Minimal witnesses matter because they are the
        readable ones: the Figure 1 deadlock renders as the four-channel
        square of the paper, not an arbitrary DFS artifact.

        Returns:
            The vertices of a minimum-length cycle in order (first vertex
            not repeated at the end), or ``None``.
        """
        best: Optional[List[V]] = None
        for root in self._succ:
            if best is not None and len(best) <= 1:
                break
            # BFS from each successor of root back to root.
            parent: Dict[V, V] = {}
            depth = {root: 0}
            queue: List[V] = [root]
            found: Optional[V] = None
            while queue and found is None:
                next_queue: List[V] = []
                for vertex in queue:
                    if best is not None and depth[vertex] + 1 >= len(best):
                        continue
                    for child in self._succ[vertex]:
                        if child == root:
                            found = vertex
                            break
                        if child not in depth:
                            depth[child] = depth[vertex] + 1
                            parent[child] = vertex
                            next_queue.append(child)
                    if found is not None:
                        break
                queue = next_queue
            if found is None:
                continue
            cycle = [found]
            while cycle[-1] != root:
                cycle.append(parent.get(cycle[-1], root))
            cycle.reverse()
            if best is None or len(cycle) < len(best):
                best = cycle
        return best

    def longest_path(self) -> List[V]:
        """A longest (most vertices) directed path of an acyclic graph.

        Used by the livelock certifier: in an acyclic channel dependency
        graph, every permitted walk follows a path of the graph, so the
        longest path bounds the longest walk any packet can take.

        Raises:
            ValueError: if the graph has a cycle (no finite bound exists).
        """
        order = self.topological_order()
        length: Dict[V, int] = {v: 0 for v in self._succ}
        parent: Dict[V, Optional[V]] = {v: None for v in self._succ}
        for u in order:
            for v in self._succ[u]:
                if length[u] + 1 > length[v]:
                    length[v] = length[u] + 1
                    parent[v] = u
        if not length:
            return []
        tail = max(length, key=lambda v: length[v])
        path = [tail]
        while True:
            prev = parent[path[-1]]
            if prev is None:
                break
            path.append(prev)
        path.reverse()
        return path

    def topological_order(self) -> List[V]:
        """A topological order of the vertices.

        Raises:
            ValueError: if the graph has a cycle.
        """
        in_degree = {v: 0 for v in self._succ}
        for _, v in self.edges():
            in_degree[v] += 1
        ready = [v for v, deg in in_degree.items() if deg == 0]
        order: List[V] = []
        while ready:
            v = ready.pop()
            order.append(v)
            for w in self._succ[v]:
                in_degree[w] -= 1
                if in_degree[w] == 0:
                    ready.append(w)
        if len(order) != len(self._succ):
            raise ValueError("graph has a cycle; no topological order exists")
        return order
