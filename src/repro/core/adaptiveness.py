"""Degree-of-adaptiveness math (Sections 3.4, 4.1, and 5).

``S_algorithm`` is the number of shortest paths an algorithm allows from a
source to a destination.  The paper gives closed forms for the fully
adaptive algorithm and each partially adaptive one; this module implements
those closed forms alongside :func:`count_shortest_paths`, which counts the
paths by exhaustive enumeration through an actual routing relation, so the
two can be checked against each other.
"""

from __future__ import annotations

from functools import lru_cache
from math import comb, factorial
from typing import Optional, Sequence

from repro.core.channel_graph import RouteFn
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId

__all__ = [
    "multinomial",
    "s_fully_adaptive",
    "s_west_first",
    "s_north_last",
    "s_negative_first",
    "s_abonf",
    "s_abopl",
    "s_pcube",
    "s_ecube",
    "pcube_adaptiveness_ratio",
    "count_shortest_paths",
    "average_adaptiveness_ratio",
]


def multinomial(counts: Sequence[int]) -> int:
    """The multinomial coefficient ``(sum counts)! / prod(counts_i!)``."""
    if any(c < 0 for c in counts):
        raise ValueError(f"counts must be non-negative, got {counts}")
    result = factorial(sum(counts))
    for c in counts:
        result //= factorial(c)
    return result


def s_fully_adaptive(src: NodeId, dst: NodeId) -> int:
    """``S_f``: shortest paths available to a fully adaptive algorithm.

    ``(sum |delta_i|)! / prod |delta_i|!`` — for 2D meshes this is the
    paper's ``(dx + dy)! / (dx! dy!)``.
    """
    return multinomial([abs(d - s) for s, d in zip(src, dst)])


def s_west_first(src: NodeId, dst: NodeId) -> int:
    """``S_west-first`` (Section 3.4).

    Fully adaptive when the destination is not to the west
    (``d_x >= s_x``); otherwise a single path (west first, then the rest
    in fixed order... the algorithm permits exactly one shortest path).
    """
    (s_x, s_y), (d_x, d_y) = src, dst
    if d_x >= s_x:
        return s_fully_adaptive(src, dst)
    return 1


def s_north_last(src: NodeId, dst: NodeId) -> int:
    """``S_north-last`` (Section 3.4).

    Fully adaptive when the destination is not to the north
    (``d_y <= s_y``); otherwise a single shortest path.
    """
    (s_x, s_y), (d_x, d_y) = src, dst
    if d_y <= s_y:
        return s_fully_adaptive(src, dst)
    return 1


def s_negative_first(src: NodeId, dst: NodeId) -> int:
    """``S_negative-first`` for meshes of any dimension (Sections 3.4, 4.1).

    Fully adaptive when the displacement is entirely non-positive or
    entirely non-negative; for mixed displacements the negative moves must
    all precede the positive moves, each phase being adaptive internally,
    giving the product of the two phases' multinomials (1 in 2D, where
    each phase moves in a single dimension).
    """
    negatives = [s - d for s, d in zip(src, dst) if d < s]
    positives = [d - s for s, d in zip(src, dst) if d > s]
    return multinomial(negatives) * multinomial(positives)


def s_abonf(src: NodeId, dst: NodeId) -> int:
    """``S`` for all-but-one-negative-first on an n-dimensional mesh.

    Phase one moves adaptively in the negative directions of dimensions
    ``0 .. n-2``; phase two moves adaptively in everything else (the
    positive directions and negative dimension ``n-1``).
    """
    n = len(src)
    phase_one = [s - d for dim, (s, d) in enumerate(zip(src, dst)) if d < s and dim < n - 1]
    phase_two = [abs(d - s) for dim, (s, d) in enumerate(zip(src, dst)) if d > s or (d < s and dim == n - 1)]
    return multinomial(phase_one) * multinomial(phase_two)


def s_abopl(src: NodeId, dst: NodeId) -> int:
    """``S`` for all-but-one-positive-last on an n-dimensional mesh.

    Phase one moves adaptively in the negative directions and positive
    dimension 0; phase two moves adaptively in the positive directions of
    dimensions ``1 .. n-1``.
    """
    phase_one = [abs(d - s) for dim, (s, d) in enumerate(zip(src, dst)) if d < s or (d > s and dim == 0)]
    phase_two = [d - s for dim, (s, d) in enumerate(zip(src, dst)) if d > s and dim >= 1]
    return multinomial(phase_one) * multinomial(phase_two)


def s_pcube(src: NodeId, dst: NodeId) -> int:
    """``S_p-cube = h_1! h_0!`` (Section 5).

    ``h_1`` counts dimensions where the source bit is 1 and the
    destination bit 0 (phase-one hops) and ``h_0`` the reverse
    (phase-two hops).
    """
    h_1 = sum(1 for s, d in zip(src, dst) if s == 1 and d == 0)
    h_0 = sum(1 for s, d in zip(src, dst) if s == 0 and d == 1)
    return factorial(h_1) * factorial(h_0)


def s_ecube(src: NodeId, dst: NodeId) -> int:
    """``S`` for dimension-order routing: always exactly one path."""
    return 1


def pcube_adaptiveness_ratio(src: NodeId, dst: NodeId) -> float:
    """``S_p-cube / S_f = 1 / C(h, h_1)`` (Section 5)."""
    h_1 = sum(1 for s, d in zip(src, dst) if s == 1 and d == 0)
    h = sum(1 for s, d in zip(src, dst) if s != d)
    if h == 0:
        return 1.0
    return 1.0 / comb(h, h_1)


def count_shortest_paths(
    topology: Topology,
    route_fn: RouteFn,
    src: NodeId,
    dst: NodeId,
) -> int:
    """Count the shortest paths a routing relation permits, by enumeration.

    Walks every route the relation offers, counting only paths whose every
    hop reduces the distance to the destination (so nonminimal detours a
    relation may offer are excluded, matching the paper's ``S`` metric).

    The relation must be Markovian in (incoming channel, node): all the
    algorithms in this package are.
    """
    if src == dst:
        return 1

    @lru_cache(maxsize=None)
    def paths_from(channel: Optional[Channel], node: NodeId) -> int:
        if node == dst:
            return 1
        here = topology.distance(node, dst)
        total = 0
        for out in route_fn(channel, node, dst):
            if topology.distance(out.dst, dst) == here - 1:
                total += paths_from(out, out.dst)
        return total

    return paths_from(None, src)


def average_adaptiveness_ratio(
    topology: Topology, route_fn: RouteFn
) -> float:
    """Mean of ``S_p / S_f`` over all ordered source-destination pairs.

    Section 3.4 reports this exceeds 1/2 for the three 2D algorithms, and
    Section 4.1 that it exceeds ``1 / 2**(n-1)`` in n dimensions.
    """
    nodes = list(topology.nodes())
    total = 0.0
    pairs = 0
    for src in nodes:
        for dst in nodes:
            if src == dst:
                continue
            s_p = count_shortest_paths(topology, route_fn, src, dst)
            s_f = s_fully_adaptive(src, dst)
            total += s_p / s_f
            pairs += 1
    return total / pairs
