"""The turn model itself: the six-step design procedure of Section 2.

:class:`TurnModel` mechanizes the paper's procedure for a given number of
dimensions:

1. partition channels by virtual direction (``directions``),
2. identify the possible turns (``turns``),
3. identify the abstract cycles the turns can form (``cycles``),
4. prohibit one turn per cycle so as to break every cycle, complex cycles
   included (``candidate_prohibitions`` generates the choices and
   ``is_valid_prohibition`` runs the Dally-Seitz check that weeds out
   combinations like Figure 4's),
5. wraparound channels are incorporated by the torus routing algorithms in
   :mod:`repro.routing.torus_routing`,
6. incorporate as many 180-degree turns as possible
   (``maximal_reversal_extension``).

The module also provides the Section 3 bookkeeping for 2D meshes: of the 16
ways to prohibit one turn from each abstract cycle, 12 prevent deadlock and
3 are unique when the symmetries of the mesh are taken into account.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.channel_graph import restriction_is_deadlock_free, turn_cdg
from repro.core.directions import Direction, all_directions
from repro.core.restrictions import TurnRestriction
from repro.core.turns import (
    Turn,
    abstract_cycles,
    minimum_prohibited_turns,
    ninety_degree_turns,
)
from repro.topology.mesh import Mesh

__all__ = [
    "TurnModel",
    "mesh_symmetries_2d",
    "signed_permutation_symmetries",
    "apply_symmetry",
    "symmetry_classes",
]

#: A symmetry of the network: a relabelling of directions.
DirectionMap = Dict[Direction, Direction]


def _rotation_2d() -> DirectionMap:
    """Quarter-turn counterclockwise rotation of the 2D compass."""
    east, west = Direction(0, 1), Direction(0, -1)
    north, south = Direction(1, 1), Direction(1, -1)
    return {east: north, north: west, west: south, south: east}


def _reflection_2d() -> DirectionMap:
    """Reflection across the x axis (north and south exchange)."""
    east, west = Direction(0, 1), Direction(0, -1)
    north, south = Direction(1, 1), Direction(1, -1)
    return {east: east, west: west, north: south, south: north}


def _compose(f: DirectionMap, g: DirectionMap) -> DirectionMap:
    return {d: f[g[d]] for d in g}


def mesh_symmetries_2d() -> List[DirectionMap]:
    """The eight symmetries of the 2D mesh (the dihedral group D4)."""
    identity = {d: d for d in all_directions(2)}
    rho = _rotation_2d()
    mu = _reflection_2d()
    rotations = [identity]
    for _ in range(3):
        rotations.append(_compose(rho, rotations[-1]))
    return rotations + [_compose(rot, mu) for rot in rotations]


def signed_permutation_symmetries(n_dims: int) -> List[DirectionMap]:
    """The ``2**n n!`` symmetries of an n-dimensional mesh.

    Every symmetry of an n-dim mesh that relabels directions is a signed
    permutation: a permutation of the dimensions composed with an
    optional reflection of each axis (the hyperoctahedral group ``B_n``).
    For ``n_dims == 2`` this is exactly the eight-element dihedral group
    of :func:`mesh_symmetries_2d`, just enumerated in a different order.

    The enumeration order is deterministic (permutations in lexicographic
    order, sign patterns with ``+1`` before ``-1`` per axis), so orbit
    computations built on it are reproducible.
    """
    if n_dims < 1:
        raise ValueError(f"need at least one dimension, got {n_dims}")
    maps: List[DirectionMap] = []
    for perm in itertools.permutations(range(n_dims)):
        for signs in itertools.product((1, -1), repeat=n_dims):
            maps.append(
                {
                    Direction(dim, sign): Direction(perm[dim], sign * signs[dim])
                    for dim in range(n_dims)
                    for sign in (1, -1)
                }
            )
    return maps


def apply_symmetry(
    mapping: DirectionMap, turns: Iterable[Turn]
) -> frozenset[Turn]:
    """Relabel a set of turns under a network symmetry."""
    return frozenset(Turn(mapping[t.frm], mapping[t.to]) for t in turns)


def symmetry_classes(
    prohibition_sets: Iterable[frozenset[Turn]],
    symmetries: Optional[Sequence[DirectionMap]] = None,
) -> List[List[frozenset[Turn]]]:
    """Group prohibition sets into equivalence classes under symmetry.

    Args:
        prohibition_sets: the sets of prohibited turns to classify.
        symmetries: the direction relabellings to quotient by; defaults to
            the eight 2D mesh symmetries.

    Returns:
        The classes, each a list of member sets, ordered by first
        appearance in the input.
    """
    if symmetries is None:
        symmetries = mesh_symmetries_2d()
    classes: List[List[frozenset[Turn]]] = []
    canon_to_class: Dict[frozenset[frozenset[Turn]], int] = {}
    for turns in prohibition_sets:
        orbit = frozenset(apply_symmetry(sym, turns) for sym in symmetries)
        index = canon_to_class.get(orbit)
        if index is None:
            canon_to_class[orbit] = len(classes)
            classes.append([turns])
        else:
            classes[index].append(turns)
    return classes


class TurnModel:
    """The six-step turn-model procedure for an n-dimensional mesh."""

    def __init__(self, n_dims: int, validation_mesh: Optional[Mesh] = None):
        """
        Args:
            n_dims: dimensionality of the target network.
            validation_mesh: mesh on which candidate prohibitions are
                checked for deadlock freedom; defaults to radix 3 per
                dimension, which is large enough to exhibit every turn and
                every abstract cycle.
        """
        if n_dims < 2:
            raise ValueError("the turn model needs at least two dimensions")
        self.n_dims = n_dims
        self._mesh = validation_mesh or Mesh((3,) * n_dims)
        if self._mesh.n_dims != n_dims:
            raise ValueError(
                f"validation mesh has {self._mesh.n_dims} dims, expected {n_dims}"
            )

    # -- Steps 1-3: directions, turns, cycles ------------------------------

    def directions(self) -> List[Direction]:
        """Step 1: the 2n virtual directions channels are partitioned into."""
        return list(all_directions(self.n_dims))

    def turns(self) -> List[Turn]:
        """Step 2: the 4n(n-1) possible 90-degree turns."""
        return ninety_degree_turns(self.n_dims)

    def cycles(self) -> List[tuple[Turn, ...]]:
        """Step 3: the n(n-1) abstract cycles of four turns each."""
        return abstract_cycles(self.n_dims)

    @property
    def minimum_prohibited(self) -> int:
        """Theorem 1: the minimum number of turns that must be prohibited."""
        return minimum_prohibited_turns(self.n_dims)

    # -- Step 4: prohibit one turn per cycle -------------------------------

    def candidate_prohibitions(self) -> Iterator[frozenset[Turn]]:
        """Every way of prohibiting exactly one turn from each cycle.

        For 2D meshes this yields the 16 combinations of Section 3.  The
        count grows as ``4 ** (n (n-1))``, so exhaustive enumeration is
        only practical for small n.
        """
        for choice in itertools.product(*self.cycles()):
            yield frozenset(choice)

    def is_valid_prohibition(self, prohibited: Iterable[Turn]) -> bool:
        """Whether prohibiting these turns prevents deadlock.

        Runs the Dally-Seitz test on the validation mesh against the
        dependency graph induced by the remaining turns, which catches the
        complex cycles Step 4 warns about (e.g. Figure 4's six-turn
        deadlock, where each abstract cycle is nominally broken).
        """
        restriction = TurnRestriction(self.n_dims, frozenset(prohibited))
        return restriction_is_deadlock_free(self._mesh, restriction)

    def deadlock_free_prohibitions(self) -> List[frozenset[Turn]]:
        """All valid one-turn-per-cycle prohibitions (12 for 2D meshes)."""
        return [
            turns
            for turns in self.candidate_prohibitions()
            if self.is_valid_prohibition(turns)
        ]

    def unique_prohibitions(
        self, symmetries: Optional[Sequence[DirectionMap]] = None
    ) -> List[frozenset[Turn]]:
        """One representative per symmetry class (3 for 2D meshes).

        The default symmetry group is the full signed-permutation group
        of the mesh (:func:`signed_permutation_symmetries`), which for
        2D coincides with the dihedral group of
        :func:`mesh_symmetries_2d`.
        """
        if symmetries is None:
            symmetries = signed_permutation_symmetries(self.n_dims)
        classes = symmetry_classes(self.deadlock_free_prohibitions(), symmetries)
        return [cls[0] for cls in classes]

    # -- Step 6: incorporate 180-degree turns ------------------------------

    def maximal_reversal_extension(
        self, restriction: TurnRestriction
    ) -> TurnRestriction:
        """Greedily add 180-degree turns while deadlock freedom holds.

        Reversals are tried in sorted order; each candidate is kept only if
        the turn-induced dependency graph on the validation mesh remains
        acyclic.  The result is maximal: no further reversal can be added.
        """
        current = restriction
        reversals = sorted(
            Turn(d, d.opposite) for d in all_directions(self.n_dims)
        )
        for reversal in reversals:
            if reversal in current.allowed_reversals:
                continue
            candidate = current.with_reversals([reversal])
            if restriction_is_deadlock_free(self._mesh, candidate):
                current = candidate
        return current

    def restriction(
        self, prohibited: Iterable[Turn], name: str = "", add_reversals: bool = True
    ) -> TurnRestriction:
        """Build a validated restriction from a prohibition set.

        Args:
            prohibited: the 90-degree turns to prohibit.
            name: label for the resulting restriction.
            add_reversals: run Step 6 and include the maximal set of safe
                180-degree turns.

        Raises:
            ValueError: if the prohibition does not prevent deadlock.
        """
        prohibited = frozenset(prohibited)
        if not self.is_valid_prohibition(prohibited):
            raise ValueError(
                f"prohibiting {sorted(map(str, prohibited))} does not prevent "
                "deadlock (the remaining turns still form a cycle)"
            )
        result = TurnRestriction(self.n_dims, prohibited, name=name)
        if add_reversals:
            result = self.maximal_reversal_extension(result).with_name(name)
        return result

    def dependency_graph(self, restriction: TurnRestriction):
        """The turn-induced channel dependency graph on the validation mesh."""
        return turn_cdg(self._mesh, restriction)
