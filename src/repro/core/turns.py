"""Turns between virtual directions and the abstract cycles they form.

Step 2 of the turn model identifies the possible turns from one virtual
direction to another (ignoring 180-degree and 0-degree turns), and Step 3
identifies the cycles those turns can form.  In an n-dimensional mesh there
are ``4 n (n-1)`` 90-degree turns, which form two abstract cycles in each of
the ``n (n-1) / 2`` planes — ``n (n-1)`` cycles of four turns each
(paper, Section 2 and Theorem 1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.directions import Direction, all_directions

__all__ = [
    "Turn",
    "TurnKind",
    "all_turns",
    "ninety_degree_turns",
    "abstract_cycles",
    "minimum_prohibited_turns",
    "turns_partition_check",
    "plane_cycles",
    "LEFT_CYCLE",
    "RIGHT_CYCLE",
]


class TurnKind:
    """Classification of a turn by the angle between its directions."""

    NINETY = "90-degree"
    ONE_EIGHTY = "180-degree"
    ZERO = "0-degree"


@dataclass(frozen=True, order=True)
class Turn:
    """A turn from one virtual direction of travel to another.

    A packet travelling in ``frm`` that leaves its next router in ``to``
    has made this turn.  Turns are the unit the model reasons about:
    prohibiting a turn means no packet may ever leave a router in
    direction ``to`` having entered it travelling in direction ``frm``.
    """

    frm: Direction
    to: Direction

    @property
    def kind(self) -> str:
        """Which of the paper's turn classes this turn belongs to."""
        if self.frm == self.to:
            return TurnKind.ZERO
        if self.frm.dim == self.to.dim:
            return TurnKind.ONE_EIGHTY
        return TurnKind.NINETY

    @property
    def is_ninety_degree(self) -> bool:
        return self.kind == TurnKind.NINETY

    @property
    def reverse(self) -> "Turn":
        """The turn taken when traversing this one backwards."""
        return Turn(self.to.opposite, self.frm.opposite)

    def __str__(self) -> str:
        return f"{self.frm.compass_name()}->{self.to.compass_name()}"

    def __repr__(self) -> str:
        return f"Turn({self.frm!r}, {self.to!r})"


def all_turns(n_dims: int, include_reversals: bool = False) -> Iterator[Turn]:
    """Yield every turn between distinct directions of an n-dim network.

    Args:
        n_dims: number of dimensions.
        include_reversals: when true, also yield 180-degree turns.  The
            model ignores these until Step 6, so the default is false.

    Yields:
        90-degree turns (and optionally 180-degree turns), each once.
    """
    directions = list(all_directions(n_dims))
    for frm, to in itertools.permutations(directions, 2):
        turn = Turn(frm, to)
        if turn.is_ninety_degree or (
            include_reversals and turn.kind == TurnKind.ONE_EIGHTY
        ):
            yield turn


def ninety_degree_turns(n_dims: int) -> list[Turn]:
    """All ``4 n (n-1)`` 90-degree turns of an n-dimensional network."""
    return [turn for turn in all_turns(n_dims) if turn.is_ninety_degree]


def plane_cycles(dim_a: int, dim_b: int) -> tuple[tuple[Turn, ...], tuple[Turn, ...]]:
    """The two abstract cycles of four turns in the (dim_a, dim_b) plane.

    The first cycle is the counterclockwise one (four left turns in the
    paper's Figure 2) and the second is the clockwise one (four right
    turns), with "counterclockwise" defined by treating ``dim_a`` as the
    horizontal axis and ``dim_b`` as the vertical axis.

    Args:
        dim_a: one dimension of the plane.
        dim_b: the other dimension; must differ from ``dim_a``.

    Returns:
        A pair ``(counterclockwise, clockwise)`` of four-turn cycles.
    """
    if dim_a == dim_b:
        raise ValueError(f"a plane needs two distinct dimensions, got {dim_a} twice")
    lo, hi = sorted((dim_a, dim_b))
    east = Direction(lo, 1)
    west = Direction(lo, -1)
    north = Direction(hi, 1)
    south = Direction(hi, -1)
    counterclockwise = (
        Turn(east, north),
        Turn(north, west),
        Turn(west, south),
        Turn(south, east),
    )
    clockwise = (
        Turn(east, south),
        Turn(south, west),
        Turn(west, north),
        Turn(north, east),
    )
    return counterclockwise, clockwise


def abstract_cycles(n_dims: int) -> list[tuple[Turn, ...]]:
    """The ``n (n-1)`` abstract four-turn cycles of an n-dim network.

    Two cycles per plane, over all ``n (n-1) / 2`` planes (paper,
    Theorem 1).  Every 90-degree turn appears in exactly one cycle, so the
    cycles partition the turns.
    """
    cycles: list[tuple[Turn, ...]] = []
    for dim_a, dim_b in itertools.combinations(range(n_dims), 2):
        cycles.extend(plane_cycles(dim_a, dim_b))
    return cycles


#: The counterclockwise abstract cycle of the 2D mesh (Figure 2, left).
LEFT_CYCLE = plane_cycles(0, 1)[0]
#: The clockwise abstract cycle of the 2D mesh (Figure 2, right).
RIGHT_CYCLE = plane_cycles(0, 1)[1]


def turns_partition_check(n_dims: int) -> bool:
    """Whether the abstract cycles exactly partition the 90-degree turns.

    This is the combinatorial fact behind Theorem 1; it is exposed as a
    function so tests and the Theorem 1 benchmark can assert it for a
    range of dimensions.
    """
    cycles = abstract_cycles(n_dims)
    seen: list[Turn] = [turn for cycle in cycles for turn in cycle]
    return len(seen) == len(set(seen)) == len(ninety_degree_turns(n_dims))


def minimum_prohibited_turns(n_dims: int) -> int:
    """The minimum number of turns to prohibit in an n-dim mesh.

    Theorem 1: ``n (n-1)``, a quarter of the ``4 n (n-1)`` possible turns.
    """
    return n_dims * (n_dims - 1)
