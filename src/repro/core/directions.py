"""Direction algebra for n-dimensional networks.

A *direction* in an n-dimensional mesh, torus, or hypercube is a pair of a
dimension index and a sign: ``(+1)`` for travel toward higher coordinates and
``(-1)`` for travel toward lower coordinates.  The turn model (Glass & Ni,
Section 2, Step 1) partitions the channels of a network into sets according
to these directions; everything else in the model — turns, abstract cycles,
prohibited-turn sets — is phrased in terms of them.

For 2D meshes the paper uses compass names, which we provide as module-level
constants: ``WEST = -x``, ``EAST = +x``, ``SOUTH = -y``, ``NORTH = +y``
(dimension 0 is x, dimension 1 is y, exactly as in Section 2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "Direction",
    "WEST",
    "EAST",
    "SOUTH",
    "NORTH",
    "COMPASS_NAMES",
    "all_directions",
]

_SIGN_SYMBOL = {1: "+", -1: "-"}


@dataclass(frozen=True, order=True)
class Direction:
    """A virtual direction of travel: a dimension and a sign.

    Directions order first by dimension and then by sign, so sorting a
    collection of directions yields the paper's "lowest dimension first"
    order used by the xy output-selection policy.

    Attributes:
        dim: zero-based dimension index (0 is x, 1 is y, ...).
        sign: +1 for travel toward higher coordinates, -1 for lower.
    """

    dim: int
    sign: int

    def __post_init__(self) -> None:
        if self.dim < 0:
            raise ValueError(f"dimension must be non-negative, got {self.dim}")
        if self.sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {self.sign}")
        # Directions key the routing hot path's sets and dicts; cache the
        # hash with the exact value the frozen dataclass would generate,
        # so hash-ordered containers iterate identically either way.
        object.__setattr__(self, "_hash", hash((self.dim, self.sign)))  # repro-lint: allow[hash-stability] both operands are ints; PYTHONHASHSEED-independent

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @property
    def is_positive(self) -> bool:
        """Whether this direction travels toward higher coordinates."""
        return self.sign == 1

    @property
    def is_negative(self) -> bool:
        """Whether this direction travels toward lower coordinates."""
        return self.sign == -1

    @property
    def opposite(self) -> "Direction":
        """The 180-degree reversal of this direction."""
        return Direction(self.dim, -self.sign)

    def compass_name(self) -> str:
        """The 2D compass name of this direction, if it has one.

        Only dimensions 0 and 1 have compass names; other dimensions fall
        back to the ``+d``/``-d`` notation.
        """
        return COMPASS_NAMES.get(self, str(self))

    def __str__(self) -> str:
        return f"{_SIGN_SYMBOL[self.sign]}{self.dim}"

    def __repr__(self) -> str:
        return f"Direction({self.dim}, {self.sign:+d})"


#: Travel toward lower x (dimension 0), as in Section 2 of the paper.
WEST = Direction(0, -1)
#: Travel toward higher x (dimension 0).
EAST = Direction(0, 1)
#: Travel toward lower y (dimension 1).
SOUTH = Direction(1, -1)
#: Travel toward higher y (dimension 1).
NORTH = Direction(1, 1)

#: Compass names for the four 2D directions, matching the paper's usage.
COMPASS_NAMES = {WEST: "west", EAST: "east", SOUTH: "south", NORTH: "north"}


def all_directions(n_dims: int) -> Iterator[Direction]:
    """Yield the 2n directions of an n-dimensional network.

    Directions are yielded in sorted order: dimension-major, negative sign
    before positive within a dimension.

    Args:
        n_dims: number of dimensions; must be at least 1.

    Yields:
        Each of the ``2 * n_dims`` directions exactly once.
    """
    if n_dims < 1:
        raise ValueError(f"need at least one dimension, got {n_dims}")
    for dim in range(n_dims):
        yield Direction(dim, -1)
        yield Direction(dim, 1)
