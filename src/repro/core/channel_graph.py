"""Channel dependency graphs and the Dally-Seitz deadlock test.

Dally and Seitz showed that a wormhole routing algorithm is deadlock free
if and only if its *channel dependency graph* — channels as vertices, with
an edge from channel ``a`` to channel ``b`` whenever the algorithm can
route a packet that holds ``a`` and next requests ``b`` — is acyclic.  The
turn model's Step 4 chooses prohibited turns precisely so this graph has no
cycles.

Two builders are provided:

* :func:`turn_cdg` builds the dependency graph induced by a
  :class:`~repro.core.restrictions.TurnRestriction` alone: every permitted
  turn (and straight continuation) between physically adjacent channels is
  an edge.  This over-approximates any routing algorithm obeying the
  restriction, so acyclicity here certifies *every* such algorithm,
  minimal or nonminimal.

* :func:`routing_cdg` builds the exact dependency graph of a concrete
  routing relation, tracking which (channel, destination) pairs are
  actually realizable from some source.  This is what the torus algorithms
  need, since their deadlock freedom depends on *how* wraparound channels
  are used, not just on which turns exist.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union, overload

from repro.core.digraph import Digraph
from repro.core.restrictions import TurnRestriction
from repro.core.turns import Turn
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId

__all__ = [
    "RouteFn",
    "CycleWitness",
    "turn_cdg",
    "routing_cdg",
    "find_dependency_cycle",
    "is_deadlock_free",
    "restriction_is_deadlock_free",
]

#: A routing relation: given the channel a packet arrived on (``None`` when
#: the packet is at its source), the node it now occupies, and its
#: destination, return the output channels the algorithm permits.
RouteFn = Callable[[Optional[Channel], NodeId, NodeId], Iterable[Channel]]

#: One dependency edge of the exact channel dependency graph.
_Edge = Tuple[Channel, Channel]


@dataclass(frozen=True)
class CycleWitness:
    """A realizable dependency cycle, rendered as channels and turns.

    Refuting deadlock freedom needs more than "the graph has a cycle": a
    human (or a certificate checker) wants the channel sequence, the turn
    each hop takes, and for each dependency an example destination whose
    packets realize it.  The witness behaves like the plain channel list
    :func:`find_dependency_cycle` used to return (``len``, indexing,
    slicing, and iteration all see the channels), so existing callers
    keep working, while the verifier renders the full certificate.

    Attributes:
        channels: the channels of the cycle, in order; the cycle closes
            from the last channel back to the first.
        turns: ``turns[i]`` is the turn from ``channels[i]`` into
            ``channels[(i + 1) % len]`` (``None`` for a 0-degree straight
            continuation, which the paper does not count as a turn).
        dests: ``dests[i]`` is a destination for which a packet holding
            ``channels[i]`` may request ``channels[(i + 1) % len]``, when
            the builder recorded one (``None`` for turn-level witnesses,
            which over-approximate every destination at once).
    """

    channels: Tuple[Channel, ...]
    turns: Tuple[Optional[Turn], ...]
    dests: Tuple[Optional[NodeId], ...]

    def __post_init__(self) -> None:
        if not (len(self.channels) == len(self.turns) == len(self.dests)):
            raise ValueError("witness fields must be parallel sequences")

    def __len__(self) -> int:
        return len(self.channels)

    def __iter__(self) -> Iterator[Channel]:
        return iter(self.channels)

    @overload
    def __getitem__(self, index: int) -> Channel: ...

    @overload
    def __getitem__(self, index: slice) -> List[Channel]: ...

    def __getitem__(self, index: Union[int, slice]) -> Union[Channel, List[Channel]]:
        if isinstance(index, slice):
            return list(self.channels[index])
        return self.channels[index]

    def turn_names(self) -> List[str]:
        """The cycle's turns as compass strings (``"straight"`` for none)."""
        return [str(turn) if turn is not None else "straight" for turn in self.turns]

    def render(self) -> str:
        """A multi-line, human-readable account of the circular wait."""
        lines = [f"dependency cycle of {len(self.channels)} channels:"]
        count = len(self.channels)
        for i, channel in enumerate(self.channels):
            turn = self.turns[i]
            dest = self.dests[i]
            step = str(turn) if turn is not None else "straight"
            realized = f"  [packet bound for {dest}]" if dest is not None else ""
            nxt = self.channels[(i + 1) % count]
            lines.append(f"  {channel}  --{step}-->  {nxt}{realized}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    @classmethod
    def from_channels(
        cls,
        channels: Iterable[Channel],
        edge_dests: Optional[Dict[_Edge, NodeId]] = None,
    ) -> "CycleWitness":
        """Build a witness from a channel cycle, deriving the turns.

        Args:
            channels: the cycle's channels in order (first not repeated).
            edge_dests: optional map from dependency edge to an example
                destination realizing it, as collected by
                :func:`routing_cdg`.
        """
        chans = tuple(channels)
        turns: List[Optional[Turn]] = []
        dests: List[Optional[NodeId]] = []
        for i, channel in enumerate(chans):
            nxt = chans[(i + 1) % len(chans)]
            if channel.direction == nxt.direction:
                turns.append(None)
            else:
                turns.append(Turn(channel.direction, nxt.direction))
            dests.append(
                edge_dests.get((channel, nxt)) if edge_dests is not None else None
            )
        return cls(chans, tuple(turns), tuple(dests))


def turn_cdg(topology: Topology, restriction: TurnRestriction) -> Digraph[Channel]:
    """Dependency graph induced by a turn restriction alone.

    An edge joins channel ``a`` to channel ``b`` whenever ``b`` leaves the
    node ``a`` enters and the restriction permits the transition from
    ``a``'s direction to ``b``'s direction (straight continuations and
    permitted reversals included).
    """
    graph: Digraph[Channel] = Digraph()
    for channel in topology.channels():
        graph.add_vertex(channel)
    for in_channel in topology.channels():
        for out_channel in topology.out_channels(in_channel.dst):
            if restriction.permits(in_channel.direction, out_channel.direction):
                graph.add_edge(in_channel, out_channel)
    return graph


def routing_cdg(
    topology: Topology,
    route_fn: RouteFn,
    edge_dests: Optional[Dict[_Edge, NodeId]] = None,
) -> Digraph[Channel]:
    """Exact dependency graph of a routing relation.

    Only realizable dependencies are included: for each destination, the
    set of channels a packet bound for that destination can actually hold
    is computed by forward closure from every source, and edges are added
    along the way.

    Args:
        topology: the network.
        route_fn: the routing relation.
        edge_dests: when given, filled with one example destination per
            dependency edge (the first destination whose closure added
            it), so cycle witnesses can show which packets realize each
            dependency.
    """
    graph: Digraph[Channel] = Digraph()
    for channel in topology.channels():
        graph.add_vertex(channel)
    for dest in topology.nodes():
        frontier: deque[Channel] = deque()
        reached: set[Channel] = set()
        for source in topology.nodes():
            if source == dest:
                continue
            for first in route_fn(None, source, dest):
                if first not in reached:
                    reached.add(first)
                    frontier.append(first)
        while frontier:
            in_channel = frontier.popleft()
            node = in_channel.dst
            if node == dest:
                continue
            for out_channel in route_fn(in_channel, node, dest):
                graph.add_edge(in_channel, out_channel)
                if edge_dests is not None:
                    edge_dests.setdefault((in_channel, out_channel), dest)
                if out_channel not in reached:
                    reached.add(out_channel)
                    frontier.append(out_channel)
    return graph


def find_dependency_cycle(
    topology: Topology, route_fn: RouteFn
) -> Optional[CycleWitness]:
    """A realizable dependency cycle of the routing relation, or ``None``.

    The witness is a *shortest* cycle of the exact channel dependency
    graph, annotated with the turns taken and an example destination per
    dependency — on the Figure 1 fixture it renders as the paper's
    four-channel circular wait.  It still behaves as the plain channel
    list earlier revisions returned (iteration, ``len``, indexing).
    """
    edge_dests: Dict[_Edge, NodeId] = {}
    graph = routing_cdg(topology, route_fn, edge_dests=edge_dests)
    if graph.is_acyclic():
        return None
    cycle = graph.shortest_cycle()
    assert cycle is not None  # is_acyclic() said otherwise
    return CycleWitness.from_channels(cycle, edge_dests)


def is_deadlock_free(topology: Topology, route_fn: RouteFn) -> bool:
    """Dally-Seitz test: whether the routing relation cannot deadlock."""
    return find_dependency_cycle(topology, route_fn) is None


def restriction_is_deadlock_free(
    topology: Topology, restriction: TurnRestriction
) -> bool:
    """Whether *every* routing algorithm obeying ``restriction`` is safe.

    Checks acyclicity of the turn-induced dependency graph.  On topologies
    with wraparound channels this is usually false even for safe
    restrictions (rings cycle without turning); use :func:`is_deadlock_free`
    with the concrete algorithm there.
    """
    return turn_cdg(topology, restriction).is_acyclic()
