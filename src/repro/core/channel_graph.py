"""Channel dependency graphs and the Dally-Seitz deadlock test.

Dally and Seitz showed that a wormhole routing algorithm is deadlock free
if and only if its *channel dependency graph* — channels as vertices, with
an edge from channel ``a`` to channel ``b`` whenever the algorithm can
route a packet that holds ``a`` and next requests ``b`` — is acyclic.  The
turn model's Step 4 chooses prohibited turns precisely so this graph has no
cycles.

Two builders are provided:

* :func:`turn_cdg` builds the dependency graph induced by a
  :class:`~repro.core.restrictions.TurnRestriction` alone: every permitted
  turn (and straight continuation) between physically adjacent channels is
  an edge.  This over-approximates any routing algorithm obeying the
  restriction, so acyclicity here certifies *every* such algorithm,
  minimal or nonminimal.

* :func:`routing_cdg` builds the exact dependency graph of a concrete
  routing relation, tracking which (channel, destination) pairs are
  actually realizable from some source.  This is what the torus algorithms
  need, since their deadlock freedom depends on *how* wraparound channels
  are used, not just on which turns exist.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, List, Optional

from repro.core.digraph import Digraph
from repro.core.restrictions import TurnRestriction
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId

__all__ = [
    "RouteFn",
    "turn_cdg",
    "routing_cdg",
    "find_dependency_cycle",
    "is_deadlock_free",
    "restriction_is_deadlock_free",
]

#: A routing relation: given the channel a packet arrived on (``None`` when
#: the packet is at its source), the node it now occupies, and its
#: destination, return the output channels the algorithm permits.
RouteFn = Callable[[Optional[Channel], NodeId, NodeId], Iterable[Channel]]


def turn_cdg(topology: Topology, restriction: TurnRestriction) -> Digraph:
    """Dependency graph induced by a turn restriction alone.

    An edge joins channel ``a`` to channel ``b`` whenever ``b`` leaves the
    node ``a`` enters and the restriction permits the transition from
    ``a``'s direction to ``b``'s direction (straight continuations and
    permitted reversals included).
    """
    graph = Digraph()
    for channel in topology.channels():
        graph.add_vertex(channel)
    for in_channel in topology.channels():
        for out_channel in topology.out_channels(in_channel.dst):
            if restriction.permits(in_channel.direction, out_channel.direction):
                graph.add_edge(in_channel, out_channel)
    return graph


def routing_cdg(topology: Topology, route_fn: RouteFn) -> Digraph:
    """Exact dependency graph of a routing relation.

    Only realizable dependencies are included: for each destination, the
    set of channels a packet bound for that destination can actually hold
    is computed by forward closure from every source, and edges are added
    along the way.
    """
    graph = Digraph()
    for channel in topology.channels():
        graph.add_vertex(channel)
    for dest in topology.nodes():
        frontier: deque[Channel] = deque()
        reached: set[Channel] = set()
        for source in topology.nodes():
            if source == dest:
                continue
            for first in route_fn(None, source, dest):
                if first not in reached:
                    reached.add(first)
                    frontier.append(first)
        while frontier:
            in_channel = frontier.popleft()
            node = in_channel.dst
            if node == dest:
                continue
            for out_channel in route_fn(in_channel, node, dest):
                graph.add_edge(in_channel, out_channel)
                if out_channel not in reached:
                    reached.add(out_channel)
                    frontier.append(out_channel)
    return graph


def find_dependency_cycle(
    topology: Topology, route_fn: RouteFn
) -> Optional[List[Channel]]:
    """A cycle in the routing relation's dependency graph, or ``None``."""
    return routing_cdg(topology, route_fn).find_cycle()


def is_deadlock_free(topology: Topology, route_fn: RouteFn) -> bool:
    """Dally-Seitz test: whether the routing relation cannot deadlock."""
    return find_dependency_cycle(topology, route_fn) is None


def restriction_is_deadlock_free(
    topology: Topology, restriction: TurnRestriction
) -> bool:
    """Whether *every* routing algorithm obeying ``restriction`` is safe.

    Checks acyclicity of the turn-induced dependency graph.  On topologies
    with wraparound channels this is usually false even for safe
    restrictions (rings cycle without turning); use :func:`is_deadlock_free`
    with the concrete algorithm there.
    """
    return turn_cdg(topology, restriction).is_acyclic()
