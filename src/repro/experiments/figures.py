"""Drivers for the paper's performance figures (Figures 13-16).

Each driver sweeps the offered load for every algorithm in its figure and
returns a :class:`FigureResult` holding the measured latency-vs-throughput
series, a text rendering, and the headline comparison the paper's prose
makes (sustainable-throughput ratio of the best adaptive algorithm over
the nonadaptive baseline).

* Figure 13 — uniform traffic, 16x16 mesh: xy vs ABONF (west-first),
  ABOPL (north-last), and negative-first.
* Figure 14 — matrix transpose, 16x16 mesh: adaptive sustains ~2x xy.
* Figure 15 — matrix transpose, 8-cube: e-cube vs ABONF, ABOPL, p-cube
  (negative-first): adaptive sustains ~2x e-cube.
* Figure 16 — reverse flip, 8-cube: adaptive sustains ~4x e-cube.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.executor import SweepExecutor
from repro.analysis.report import render_comparison, render_series_table
from repro.analysis.sweep import SweepSeries, sweep_loads
from repro.experiments.presets import Preset, get_preset
from repro.topology.base import Topology

__all__ = [
    "FigureResult",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "MESH_ALGORITHMS",
    "CUBE_ALGORITHMS",
]

#: Section 6's mesh algorithms.  In a 2D mesh, ABONF *is* west-first and
#: ABOPL *is* north-last (Section 4.1); the registry names keep the 2D
#: forms and the figure labels carry both names.
MESH_ALGORITHMS = ("xy", "west-first", "north-last", "negative-first")

#: Section 6's hypercube algorithms; negative-first on a hypercube is
#: p-cube routing (Section 5).
CUBE_ALGORITHMS = ("e-cube", "abonf", "abopl", "p-cube")


@dataclass
class FigureResult:
    """Outcome of one figure reproduction."""

    figure: str
    title: str
    baseline: str
    series: List[SweepSeries]

    def series_by_name(self) -> Dict[str, SweepSeries]:
        return {s.algorithm: s for s in self.series}

    @property
    def baseline_sustainable(self) -> float:
        return self.series_by_name()[self.baseline].sustainable_throughput

    @property
    def baseline_saturation(self) -> float:
        return self.series_by_name()[self.baseline].saturation_throughput

    @property
    def best_adaptive_sustainable(self) -> float:
        return max(
            s.sustainable_throughput
            for s in self.series
            if s.algorithm != self.baseline
        )

    @property
    def best_adaptive_saturation(self) -> float:
        return max(
            s.saturation_throughput
            for s in self.series
            if s.algorithm != self.baseline
        )

    @property
    def adaptive_advantage(self) -> float:
        """Best adaptive saturation throughput over the baseline's.

        The quantity the paper's prose quotes: ~2x for matrix transpose,
        ~4x for reverse flip, and <= ~1x for uniform traffic.  The
        saturation (plateau) throughput is used because the
        queue-boundedness classification quantizes to the sampled load
        grid, while the plateau is what the paper's curves' right edges
        show.
        """
        base = self.baseline_saturation
        if base <= 0:
            return float("inf")
        return self.best_adaptive_saturation / base

    @property
    def adaptive_advantage_sustainable(self) -> float:
        """The same ratio on the (grid-quantized) sustainable metric."""
        base = self.baseline_sustainable
        if base <= 0:
            return float("inf")
        return self.best_adaptive_sustainable / base

    def render(self) -> str:
        parts = [f"=== {self.figure}: {self.title} ==="]
        parts.extend(render_series_table(s) for s in self.series)
        parts.append(render_comparison(self.series, self.baseline))
        parts.append(
            f"adaptive advantage (best adaptive / {self.baseline}): "
            f"{self.adaptive_advantage:.2f}x at saturation, "
            f"{self.adaptive_advantage_sustainable:.2f}x sustainable"
        )
        return "\n\n".join(parts)


def _make_executor(
    executor: Optional[SweepExecutor],
    jobs: int,
    cache_dir: Optional[Union[str, Path]],
) -> SweepExecutor:
    """The executor a figure driver sweeps through.

    An explicit ``executor`` wins; otherwise one is built from ``jobs``
    and ``cache_dir`` (the serial, uncached default keeps tests
    deterministic and dependency-free).
    """
    if executor is not None:
        return executor
    return SweepExecutor(jobs=jobs, cache_dir=cache_dir)


def _run_figure(
    figure: str,
    title: str,
    topology: Topology,
    algorithms: Sequence[str],
    pattern: str,
    loads: Sequence[float],
    preset: Preset,
    baseline: str,
    seed: int,
    executor: Optional[SweepExecutor] = None,
) -> FigureResult:
    config = preset.sim_config()
    if executor is None:
        executor = SweepExecutor()
    series = [
        sweep_loads(
            topology, algorithm, pattern, loads, config=config, seed=seed,
            stop_after_saturation=3, executor=executor,
        )
        for algorithm in algorithms
    ]
    return FigureResult(figure=figure, title=title, baseline=baseline, series=series)


def figure13(
    preset: str = "quick",
    seed: int = 1,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    executor: Optional[SweepExecutor] = None,
) -> FigureResult:
    """Figure 13: uniform traffic in the 2D mesh.

    Expected shape: at low load all algorithms are equal; near saturation
    the nonadaptive xy algorithm holds the lowest latency and the highest
    sustainable throughput, because dimension-order routing happens to
    preserve uniform traffic's global evenness.
    """
    p = get_preset(preset)
    return _run_figure(
        "figure-13",
        f"uniform traffic, {p.mesh_side}x{p.mesh_side} mesh",
        p.mesh(),
        MESH_ALGORITHMS,
        "uniform",
        p.loads_mesh_uniform,
        p,
        baseline="xy",
        seed=seed,
        executor=_make_executor(executor, jobs, cache_dir),
    )


def figure14(
    preset: str = "quick",
    seed: int = 1,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    executor: Optional[SweepExecutor] = None,
) -> FigureResult:
    """Figure 14: matrix-transpose traffic in the 2D mesh.

    Expected shape: the partially adaptive algorithms (negative-first in
    particular) sustain roughly twice xy's throughput.
    """
    p = get_preset(preset)
    return _run_figure(
        "figure-14",
        f"matrix-transpose traffic, {p.mesh_side}x{p.mesh_side} mesh",
        p.mesh(),
        MESH_ALGORITHMS,
        "transpose",
        p.loads_mesh_transpose,
        p,
        baseline="xy",
        seed=seed,
        executor=_make_executor(executor, jobs, cache_dir),
    )


def figure15(
    preset: str = "quick",
    seed: int = 1,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    executor: Optional[SweepExecutor] = None,
) -> FigureResult:
    """Figure 15: matrix-transpose traffic in the hypercube.

    Expected shape: the partially adaptive algorithms sustain roughly
    twice e-cube's throughput.
    """
    p = get_preset(preset)
    return _run_figure(
        "figure-15",
        f"matrix-transpose traffic, {p.cube_dims}-cube",
        p.cube(),
        CUBE_ALGORITHMS,
        "transpose",
        p.loads_cube_transpose,
        p,
        baseline="e-cube",
        seed=seed,
        executor=_make_executor(executor, jobs, cache_dir),
    )


def figure16(
    preset: str = "quick",
    seed: int = 1,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    executor: Optional[SweepExecutor] = None,
) -> FigureResult:
    """Figure 16: reverse-flip traffic in the hypercube.

    Expected shape: the partially adaptive algorithms sustain roughly
    four times e-cube's throughput.
    """
    p = get_preset(preset)
    return _run_figure(
        "figure-16",
        f"reverse-flip traffic, {p.cube_dims}-cube",
        p.cube(),
        CUBE_ALGORITHMS,
        "reverse-flip",
        p.loads_cube_reverse_flip,
        p,
        baseline="e-cube",
        seed=seed,
        executor=_make_executor(executor, jobs, cache_dir),
    )
