"""Experiment drivers: one per paper table and figure (see DESIGN.md)."""

from repro.experiments.figures import (
    CUBE_ALGORITHMS,
    MESH_ALGORITHMS,
    FigureResult,
    figure13,
    figure14,
    figure15,
    figure16,
)
from repro.experiments.presets import PRESETS, Preset, get_preset
from repro.experiments.tables import (
    PCUBE_EXAMPLE,
    adaptiveness_table,
    enumeration_table,
    path_length_table,
    pcube_example_table,
    theorem1_table,
)

__all__ = [
    "FigureResult",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "MESH_ALGORITHMS",
    "CUBE_ALGORITHMS",
    "Preset",
    "PRESETS",
    "get_preset",
    "theorem1_table",
    "enumeration_table",
    "adaptiveness_table",
    "pcube_example_table",
    "path_length_table",
    "PCUBE_EXAMPLE",
]
