"""Scale presets for the Section 6 experiments.

The paper simulates a 16x16 mesh and a binary 8-cube (256 nodes each).
Running those at full fidelity in pure Python takes minutes per data
point, so every experiment driver accepts a preset:

* ``paper`` — the paper's topologies with long warmup/measurement windows;
  used to produce the numbers recorded in EXPERIMENTS.md.
* ``mid`` — the paper's topologies with shorter windows.
* ``quick`` — 8x8 mesh / 6-cube with short windows; the default for the
  pytest benchmarks and CI.  The qualitative shapes (who wins, and by
  roughly what factor) match the paper at every preset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.obs.spec import ObsSpec
from repro.sim.config import SimulationConfig
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh2D

__all__ = [
    "Preset",
    "PRESETS",
    "get_preset",
    "FaultSweepPreset",
    "FAULT_SWEEP_PRESETS",
    "get_fault_sweep_preset",
]


@dataclass(frozen=True)
class Preset:
    """One experiment scale.

    Attributes:
        name: preset identifier.
        mesh_side: the 2D mesh is ``mesh_side x mesh_side``.
        cube_dims: hypercube dimensionality.
        warmup_cycles, measure_cycles, drain_cycles: simulator windows.
        loads_mesh_uniform, ...: offered-load grids per experiment, in
            flits/node/cycle, chosen to bracket each configuration's
            saturation point.
    """

    name: str
    mesh_side: int
    cube_dims: int
    warmup_cycles: int
    measure_cycles: int
    drain_cycles: int
    loads_mesh_uniform: tuple
    loads_mesh_transpose: tuple
    loads_cube_uniform: tuple
    loads_cube_transpose: tuple
    loads_cube_reverse_flip: tuple

    def mesh(self) -> Mesh2D:
        return Mesh2D(self.mesh_side, self.mesh_side)

    def cube(self) -> Hypercube:
        return Hypercube(self.cube_dims)

    def sim_config(self, **overrides) -> SimulationConfig:
        settings = dict(
            warmup_cycles=self.warmup_cycles,
            measure_cycles=self.measure_cycles,
            drain_cycles=self.drain_cycles,
        )
        settings.update(overrides)
        return SimulationConfig(**settings)

    def obs_spec(self) -> ObsSpec:
        """Observability knobs scaled to this preset's windows."""
        return _preset_obs_spec(
            self.warmup_cycles + self.measure_cycles + self.drain_cycles
        )


def _preset_obs_spec(total_cycles: int) -> ObsSpec:
    """An :class:`ObsSpec` scaled to one preset's window lengths.

    The timeline is bucketed to roughly 50 windows regardless of scale,
    and channel sampling thins out on long runs (paper-scale windows)
    where per-cycle sampling would dominate collection cost without
    changing the heatmap's shape.
    """
    return ObsSpec(
        sample_every=1 if total_cycles <= 10_000 else 4,
        timeline_window=max(1, total_cycles // 50),
    )


def _grid(*loads: float) -> tuple:
    return tuple(loads)


PRESETS = {
    "quick": Preset(
        name="quick",
        mesh_side=8,
        cube_dims=6,
        warmup_cycles=1_500,
        measure_cycles=6_000,
        drain_cycles=2_500,
        loads_mesh_uniform=_grid(0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.55),
        loads_mesh_transpose=_grid(0.04, 0.08, 0.12, 0.16, 0.22, 0.30, 0.40),
        loads_cube_uniform=_grid(0.10, 0.20, 0.30, 0.45, 0.60, 0.80),
        loads_cube_transpose=_grid(0.05, 0.10, 0.16, 0.24, 0.34, 0.50, 0.70),
        loads_cube_reverse_flip=_grid(0.05, 0.12, 0.20, 0.30, 0.45, 0.65, 0.90),
    ),
    "mid": Preset(
        name="mid",
        mesh_side=16,
        cube_dims=8,
        warmup_cycles=3_000,
        measure_cycles=10_000,
        drain_cycles=4_000,
        loads_mesh_uniform=_grid(0.04, 0.08, 0.12, 0.16, 0.22, 0.30, 0.40),
        loads_mesh_transpose=_grid(0.03, 0.06, 0.09, 0.13, 0.18, 0.25, 0.34),
        loads_cube_uniform=_grid(0.10, 0.20, 0.30, 0.45, 0.60, 0.80),
        loads_cube_transpose=_grid(0.05, 0.10, 0.16, 0.24, 0.34, 0.50, 0.70),
        loads_cube_reverse_flip=_grid(0.05, 0.12, 0.20, 0.30, 0.45, 0.65, 0.90),
    ),
    "paper": Preset(
        name="paper",
        mesh_side=16,
        cube_dims=8,
        warmup_cycles=6_000,
        measure_cycles=24_000,
        drain_cycles=10_000,
        loads_mesh_uniform=_grid(0.03, 0.06, 0.10, 0.14, 0.18, 0.24, 0.32, 0.42),
        loads_mesh_transpose=_grid(0.02, 0.05, 0.08, 0.11, 0.15, 0.20, 0.27, 0.36),
        loads_cube_uniform=_grid(0.08, 0.16, 0.25, 0.35, 0.48, 0.64, 0.85),
        loads_cube_transpose=_grid(0.04, 0.09, 0.13, 0.18, 0.24, 0.32, 0.46, 0.65),
        loads_cube_reverse_flip=_grid(0.05, 0.12, 0.20, 0.30, 0.45, 0.65, 0.90),
    ),
}


def get_preset(name: str) -> Preset:
    """Look up a preset by name (``quick``, ``mid``, or ``paper``)."""
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ValueError(f"unknown preset {name!r}; known: {known}") from None


@dataclass(frozen=True)
class FaultSweepPreset:
    """One scale of the runtime fault-tolerance experiment.

    The ``paper`` scale compares the turn-model algorithms against
    dimension-order xy on the paper's 16x16 mesh under escalating
    runtime link-failure counts — Section 1's fault-tolerance claim as a
    measurement (see ``repro resilience`` and
    :func:`repro.resilience.fault_sweep`).

    Attributes:
        name: preset identifier.
        mesh_side: the mesh is ``mesh_side x mesh_side``.
        pattern: traffic pattern name.
        load: offered load, below saturation so delivered fraction
            isolates fault losses from congestion losses.
        fault_counts: the escalation axis (0 = healthy baseline).
        algorithms: routing registry names compared.
        warmup_cycles, measure_cycles, drain_cycles: simulator windows.
        policy: recovery policy for casualties.
    """

    name: str
    mesh_side: int
    pattern: str
    load: float
    fault_counts: tuple
    algorithms: tuple = (
        "xy",
        "west-first",
        "negative-first",
        "west-first-nonminimal",
    )
    warmup_cycles: int = 1_500
    measure_cycles: int = 6_000
    drain_cycles: int = 2_500
    policy: str = "drop"

    def topology(self) -> str:
        """The mesh as a topology spec string."""
        return f"mesh:{self.mesh_side}x{self.mesh_side}"

    def sim_config(self, **overrides) -> SimulationConfig:
        settings = dict(
            warmup_cycles=self.warmup_cycles,
            measure_cycles=self.measure_cycles,
            drain_cycles=self.drain_cycles,
        )
        settings.update(overrides)
        return SimulationConfig(**settings)

    def obs_spec(self) -> "ObsSpec":
        """Observability knobs scaled to this preset's windows."""
        return _preset_obs_spec(
            self.warmup_cycles + self.measure_cycles + self.drain_cycles
        )


FAULT_SWEEP_PRESETS = {
    "quick": FaultSweepPreset(
        name="quick",
        mesh_side=8,
        pattern="uniform",
        load=0.06,
        fault_counts=(0, 2, 4, 8),
        warmup_cycles=400,
        measure_cycles=2_000,
        drain_cycles=1_000,
    ),
    "mid": FaultSweepPreset(
        name="mid",
        mesh_side=16,
        pattern="uniform",
        load=0.05,
        fault_counts=(0, 4, 8, 16),
        warmup_cycles=1_500,
        measure_cycles=6_000,
        drain_cycles=2_500,
    ),
    "paper": FaultSweepPreset(
        name="paper",
        mesh_side=16,
        pattern="uniform",
        load=0.05,
        fault_counts=(0, 4, 8, 16, 24),
        warmup_cycles=3_000,
        measure_cycles=10_000,
        drain_cycles=4_000,
    ),
}


def get_fault_sweep_preset(name: str) -> FaultSweepPreset:
    """Look up a fault-sweep preset (``quick``, ``mid``, or ``paper``)."""
    try:
        return FAULT_SWEEP_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_SWEEP_PRESETS))
        raise ValueError(f"unknown preset {name!r}; known: {known}") from None
