"""Drivers for the paper's tables and in-text numeric claims.

* :func:`theorem1_table` — turn and cycle counts for n-dimensional meshes
  (Theorem 1 / Theorem 6).
* :func:`enumeration_table` — Section 3's bookkeeping: of the 16 ways to
  prohibit one turn per abstract cycle in a 2D mesh, 12 prevent deadlock
  and 3 are unique up to symmetry.
* :func:`adaptiveness_table` — Section 3.4's degree-of-adaptiveness
  metrics: average S_p/S_f exceeds 1/2, and S_p = 1 for at least half of
  the source-destination pairs.
* :func:`pcube_example_table` — the Section 5 worked example in a binary
  10-cube, digit for digit.
* :func:`path_length_table` — Section 6's average path lengths (10.61 vs
  11.34 hops in the mesh; 4.01 vs 4.27 in the 8-cube).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.report import format_table
from repro.core.adaptiveness import (
    average_adaptiveness_ratio,
    count_shortest_paths,
    s_fully_adaptive,
    s_pcube,
)
from repro.core.model import TurnModel
from repro.core.turns import abstract_cycles, minimum_prohibited_turns, ninety_degree_turns
from repro.routing.pcube import PCubeRouting
from repro.routing.registry import make_routing
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh2D
from repro.traffic.permutations import make_pattern

__all__ = [
    "theorem1_table",
    "enumeration_table",
    "adaptiveness_table",
    "pcube_example_table",
    "path_length_table",
    "PCUBE_EXAMPLE",
]


def theorem1_table(max_dims: int = 6) -> str:
    """Turn counts per Theorem 1 for n = 2 .. max_dims."""
    headers = ["n", "turns 4n(n-1)", "cycles n(n-1)", "min prohibited", "fraction"]
    rows = []
    for n in range(2, max_dims + 1):
        turns = len(ninety_degree_turns(n))
        cycles = len(abstract_cycles(n))
        minimum = minimum_prohibited_turns(n)
        rows.append([n, turns, cycles, minimum, f"{minimum / turns:.2f}"])
    return format_table(headers, rows)


def enumeration_table() -> Tuple[int, int, int, str]:
    """Section 3's counts for the 2D mesh.

    Returns:
        (candidates, deadlock_free, unique_classes, rendered table).
    """
    model = TurnModel(2)
    candidates = list(model.candidate_prohibitions())
    free = model.deadlock_free_prohibitions()
    unique = model.unique_prohibitions()
    headers = ["prohibited pair", "deadlock free"]
    rows = []
    for turns in candidates:
        label = " + ".join(sorted(str(t) for t in turns))
        rows.append([label, "yes" if model.is_valid_prohibition(turns) else "NO"])
    table = format_table(headers, rows)
    summary = (
        f"{len(candidates)} ways to prohibit one turn per cycle; "
        f"{len(free)} prevent deadlock; {len(unique)} unique up to symmetry"
    )
    return len(candidates), len(free), len(unique), f"{table}\n{summary}"


def adaptiveness_table(side: int = 6) -> str:
    """Section 3.4 metrics on a ``side x side`` mesh."""
    mesh = Mesh2D(side, side)
    headers = [
        "algorithm",
        "avg S_p/S_f",
        "pairs with S_p=1",
        "fraction S_p=1",
    ]
    rows = []
    nodes = list(mesh.nodes())
    pairs = [(s, d) for s in nodes for d in nodes if s != d]
    for name in ("west-first", "north-last", "negative-first", "xy"):
        algorithm = make_routing(name, mesh)
        ratio = average_adaptiveness_ratio(mesh, algorithm)
        singles = sum(
            1 for s, d in pairs if count_shortest_paths(mesh, algorithm, s, d) == 1
        )
        rows.append(
            [name, f"{ratio:.3f}", singles, f"{singles / len(pairs):.2f}"]
        )
    return format_table(headers, rows)


# -- Section 5 worked example -------------------------------------------

#: The paper's 10-cube example: source, destination, the dimension taken
#: at each hop, and the expected "choices" column (minimal, +nonminimal).
PCUBE_EXAMPLE = {
    "source": "1011010100",
    "destination": "0010111001",
    "dimensions_taken": (2, 9, 6, 5, 0, 3),
    "expected_choices": ((3, 2), (2, 2), (1, 2), (3, 0), (2, 0), (1, 0)),
    "expected_shortest_paths": 36,
}


def _node_from_paper_string(bits: str) -> tuple:
    """Parse the paper's numeric address notation (dimension 0 = LSB)."""
    return tuple(int(ch) for ch in reversed(bits))


def _node_to_paper_string(node: tuple) -> str:
    return "".join(str(bit) for bit in reversed(node))


@dataclass(frozen=True)
class PCubeTableRow:
    """One row of the Section 5 table."""

    address: str
    choices: int
    extra_choices: int
    dimension_taken: int

    def choices_label(self) -> str:
        extra = f"(+{self.extra_choices})" if self.extra_choices else ""
        return f"{self.choices}{extra}"


def pcube_example_table() -> Tuple[List[PCubeTableRow], str]:
    """Reproduce the Section 5 table for the binary 10-cube example.

    Walks the paper's exact path, recording the number of p-cube routing
    choices (and the extra nonminimal choices) at each transmitting node.

    Returns:
        (rows, rendered table).  The final destination row carries
        dimension ``-1`` and zero choices.
    """
    cube = Hypercube(10)
    routing = PCubeRouting(cube)
    src = _node_from_paper_string(PCUBE_EXAMPLE["source"])
    dest = _node_from_paper_string(PCUBE_EXAMPLE["destination"])

    rows: List[PCubeTableRow] = []
    node = src
    for dim in PCUBE_EXAMPLE["dimensions_taken"]:
        minimal, extra = routing.choices(node, dest)
        rows.append(
            PCubeTableRow(_node_to_paper_string(node), minimal, extra, dim)
        )
        if dim not in routing.route_dims(node, dest) and dim not in [
            i for i, (c, d) in enumerate(zip(node, dest)) if c == 1 and d == 1
        ]:
            raise AssertionError(
                f"paper path takes dimension {dim} at {node}, but p-cube "
                "routing does not offer it"
            )
        node = node[:dim] + (1 - node[dim],) + node[dim + 1 :]
    if node != dest:
        raise AssertionError("paper path did not end at the destination")

    headers = ["address", "choices", "dimension taken", "comment"]
    phase_one_hops = sum(1 for s, d in zip(src, dest) if s == 1 and d == 0)
    table_rows = []
    for index, row in enumerate(rows):
        if index == 0:
            comment = "source"
        elif index < phase_one_hops:
            comment = "phase 1"
        else:
            comment = "phase 2"
        table_rows.append(
            [row.address, row.choices_label(), row.dimension_taken, comment]
        )
    table_rows.append([_node_to_paper_string(dest), "", "", "destination"])
    rendered = format_table(headers, table_rows)
    shortest = count_shortest_paths(cube, routing, src, dest)
    closed = s_pcube(src, dest)
    rendered += (
        f"\nshortest paths: enumerated={shortest} closed-form h1!h0!={closed} "
        f"fully adaptive h!={s_fully_adaptive(src, dest)}"
    )
    return rows, rendered


def s_pcube_phase2(src: tuple, dest: tuple) -> int:
    """Number of phase-two hops (bits to set) for a p-cube route."""
    return sum(1 for s, d in zip(src, dest) if s == 0 and d == 1)


def path_length_table(mesh_side: int = 16, cube_dims: int = 8) -> str:
    """Section 6's average minimal path lengths per traffic pattern."""
    mesh = Mesh2D(mesh_side, mesh_side)
    cube = Hypercube(cube_dims)
    headers = ["topology", "pattern", "avg minimal hops"]
    rows = []
    for topology, label, patterns in (
        (mesh, f"{mesh_side}x{mesh_side} mesh", ("uniform", "transpose")),
        (cube, f"{cube_dims}-cube", ("uniform", "transpose", "reverse-flip")),
    ):
        for name in patterns:
            pattern = make_pattern(name, topology)
            rows.append([label, name, f"{pattern.mean_minimal_hops():.2f}"])
    return format_table(headers, rows)
