"""The paper's permutation workloads, plus common extras.

Section 6 evaluates two nonuniform patterns:

* **matrix transpose** — in the mesh, the processor at row i, column j
  sends to the one at row j, column i; in the hypercube, the pattern
  derived by embedding a 16x16 mesh sends ``(x0,...,x7)`` to
  ``(~x4, x5, x6, x7, ~x0, x1, x2, x3)``.
* **reverse flip** — ``(x0,...,x7)`` to ``(~x7, ~x6, ..., ~x0)``.

The extras (bit complement, bit reverse, perfect shuffle, tornado) are
standard in the interconnection-network literature and feed the extended
benchmarks.
"""

from __future__ import annotations

from repro.topology.base import Topology
from repro.topology.channels import NodeId
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh
from repro.traffic.patterns import PermutationTraffic

__all__ = [
    "mesh_transpose",
    "mesh_transpose_diagonal",
    "hypercube_transpose",
    "reverse_flip",
    "bit_complement",
    "bit_reverse",
    "perfect_shuffle",
    "tornado",
    "make_pattern",
    "available_patterns",
]


def mesh_transpose(topology: Mesh) -> PermutationTraffic:
    """Matrix transpose on a square 2D mesh (Section 6).

    The paper sends from the processor at row i, column j to the one at
    row j, column i.  Matrix row indices grow *southward* while the mesh
    y coordinate grows northward, so in compass coordinates the pattern
    is the anti-diagonal reflection ``(x, y) -> (n-1-y, m-1-x)``: every
    displacement satisfies ``dx == dy``, the geometry under which the
    paper's negative-first results (fully adaptive on every transpose
    pair, ~2x xy's sustainable throughput) hold.  Use
    :func:`mesh_transpose_diagonal` for the other orientation — the
    asymmetry between the two is a known property of turn-model routing
    and is covered by the orientation ablation benchmark.

    Anti-diagonal nodes (x + y == n-1) send to themselves and therefore
    generate no traffic.
    """
    if topology.n_dims != 2 or topology.shape[0] != topology.shape[1]:
        raise ValueError(f"matrix transpose needs a square 2D mesh, got {topology!r}")
    side = topology.shape[0]

    def permute(node: NodeId) -> NodeId:
        return (side - 1 - node[1], side - 1 - node[0])

    return PermutationTraffic(topology, permute, "transpose")


def mesh_transpose_diagonal(topology: Mesh) -> PermutationTraffic:
    """Main-diagonal transpose: ``(x, y) -> (y, x)``.

    The same communication pattern as :func:`mesh_transpose` reflected
    onto the other diagonal.  Against this orientation negative-first
    degenerates to a single path per pair — the flip side of the turn
    model's asymmetry.
    """
    if topology.n_dims != 2 or topology.shape[0] != topology.shape[1]:
        raise ValueError(f"matrix transpose needs a square 2D mesh, got {topology!r}")
    return PermutationTraffic(
        topology, lambda node: (node[1], node[0]), "transpose-diagonal"
    )


def hypercube_transpose(topology: Hypercube) -> PermutationTraffic:
    """The mesh-transpose pattern embedded in a hypercube (Section 6).

    For the 8-cube the paper derives
    ``(x0,...,x7) -> (~x4, x5, x6, x7, ~x0, x1, x2, x3)``; the general
    even-n form swaps the two address halves and complements the leading
    bit of each half.
    """
    n = topology.n_dims
    if n % 2 != 0:
        raise ValueError(f"hypercube transpose needs even dimension, got {n}")
    half = n // 2

    def permute(node: NodeId) -> NodeId:
        low, high = node[:half], node[half:]
        new_low = (1 - high[0],) + high[1:]
        new_high = (1 - low[0],) + low[1:]
        return new_low + new_high

    return PermutationTraffic(topology, permute, "transpose")


def reverse_flip(topology: Hypercube) -> PermutationTraffic:
    """Reverse flip: reverse the address bits and complement them all."""

    def permute(node: NodeId) -> NodeId:
        return tuple(1 - bit for bit in reversed(node))

    return PermutationTraffic(topology, permute, "reverse-flip")


def bit_complement(topology: Hypercube) -> PermutationTraffic:
    """Bit complement: every node sends to its address complement."""

    def permute(node: NodeId) -> NodeId:
        return tuple(1 - bit for bit in node)

    return PermutationTraffic(topology, permute, "bit-complement")


def bit_reverse(topology: Hypercube) -> PermutationTraffic:
    """Bit reverse: reverse the address bits (no complement)."""

    def permute(node: NodeId) -> NodeId:
        return tuple(reversed(node))

    return PermutationTraffic(topology, permute, "bit-reverse")


def perfect_shuffle(topology: Hypercube) -> PermutationTraffic:
    """Perfect shuffle: rotate the address bits left by one."""

    def permute(node: NodeId) -> NodeId:
        return node[1:] + node[:1]

    return PermutationTraffic(topology, permute, "shuffle")


def tornado(topology: Topology) -> PermutationTraffic:
    """Tornado: each node sends almost halfway around dimension 0.

    Defined for any topology; on tori it is the classic adversary for
    dimension-order routing.
    """
    k = topology.shape[0]
    stride = max(1, (k + 1) // 2 - 1)

    def permute(node: NodeId) -> NodeId:
        return ((node[0] + stride) % k,) + node[1:]

    return PermutationTraffic(topology, permute, "tornado")


def _uniform(topology: Topology):
    from repro.traffic.patterns import UniformTraffic

    return UniformTraffic(topology)


def _transpose(topology: Topology):
    if isinstance(topology, Hypercube):
        return hypercube_transpose(topology)
    return mesh_transpose(topology)


_PATTERN_FACTORIES = {
    "uniform": _uniform,
    "transpose": _transpose,
    "transpose-diagonal": mesh_transpose_diagonal,
    "reverse-flip": reverse_flip,
    "bit-complement": bit_complement,
    "bit-reverse": bit_reverse,
    "shuffle": perfect_shuffle,
    "tornado": tornado,
}


def available_patterns() -> list:
    """The registered traffic-pattern names, sorted."""
    return sorted(_PATTERN_FACTORIES)


def make_pattern(name: str, topology: Topology):
    """Construct a traffic pattern by name.

    Accepts ``uniform``, ``transpose`` (dispatching on topology type),
    ``reverse-flip``, ``bit-complement``, ``bit-reverse``, ``shuffle``,
    and ``tornado``.  Names are canonicalized with the same rules as the
    routing registry, so ``"reverse_flip"`` and ``"Reverse-Flip"`` both
    resolve.

    Raises:
        UnknownNameError: for unknown names (a KeyError *and* a
            ValueError), listing the valid ones.
    """
    from repro.routing.registry import UnknownNameError, canonical_name

    try:
        factory = _PATTERN_FACTORIES[canonical_name(name)]
    except KeyError:
        raise UnknownNameError(
            "traffic pattern", name, list(_PATTERN_FACTORIES)
        ) from None
    return factory(topology)
