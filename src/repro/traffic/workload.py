"""Message generation: arrival process and packet sizes (Section 6).

The paper's processors generate messages at time intervals chosen from a
negative exponential distribution; each message is one packet of 10 or 200
flits with equal probability.  :class:`Workload` bundles the arrival
process, size distribution, and traffic pattern, and exposes a per-node
generator the simulator polls each cycle.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.topology.channels import NodeId
from repro.traffic.patterns import TrafficPattern

__all__ = ["SizeDistribution", "PAPER_SIZES", "Workload", "NodeSource"]


@dataclass(frozen=True)
class SizeDistribution:
    """A discrete distribution of packet sizes in flits.

    Attributes:
        choices: (size, probability) pairs; probabilities must sum to 1.
    """

    choices: Tuple[Tuple[int, float], ...]

    def __post_init__(self) -> None:
        if not self.choices:
            raise ValueError("size distribution needs at least one choice")
        if any(size < 1 for size, _ in self.choices):
            raise ValueError(f"packet sizes must be positive: {self.choices}")
        total = sum(p for _, p in self.choices)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities must sum to 1, got {total}")
        # Precompute the cumulative table once so sample() is a bisect
        # instead of a linear scan.  The running sum is accumulated in
        # choice order, exactly as the scan did, so the table holds the
        # very same float partial sums and seeded draw streams are
        # unchanged.  (object.__setattr__ because the dataclass is
        # frozen; the table is derived state, not a field.)
        sizes = []
        cumulative = []
        running = 0.0
        for size, probability in self.choices:
            running += probability
            sizes.append(size)
            cumulative.append(running)
        object.__setattr__(self, "_sizes", tuple(sizes))
        object.__setattr__(self, "_cumulative", tuple(cumulative))

    @property
    def mean(self) -> float:
        """Expected packet size in flits."""
        return sum(size * p for size, p in self.choices)

    def sample(self, rng: random.Random) -> int:
        """Draw one packet size.

        Binary-searches the precomputed cumulative table; equivalent to
        (and bit-identical with) scanning for the first entry whose
        partial sum exceeds the roll, with the last size as the fallback
        against floating-point shortfall in the final partial sum.
        """
        roll = rng.random()
        index = bisect_right(self._cumulative, roll)
        sizes = self._sizes
        return sizes[index] if index < len(sizes) else sizes[-1]

    @classmethod
    def fixed(cls, size: int) -> "SizeDistribution":
        """Every packet has the same size."""
        return cls(((size, 1.0),))


#: The paper's bimodal distribution: 10 or 200 flits, equal probability.
PAPER_SIZES = SizeDistribution(((10, 0.5), (200, 0.5)))


class NodeSource:
    """Poisson message source for one node.

    Interarrival times are negative-exponential with the node's mean;
    arrival times are kept as floats and a message is released once the
    simulation clock passes its arrival time.
    """

    def __init__(
        self,
        node: NodeId,
        pattern: TrafficPattern,
        sizes: SizeDistribution,
        messages_per_cycle: float,
        rng: random.Random,
    ):
        self.node = node
        self._pattern = pattern
        self._sizes = sizes
        self._rate = messages_per_cycle
        self._rng = rng
        self._next_arrival = (
            float("inf") if messages_per_cycle <= 0 else self._draw_gap()
        )

    def _draw_gap(self) -> float:
        return self._rng.expovariate(self._rate)

    @property
    def next_arrival(self) -> float:
        """Arrival time of the next message (``inf`` for a silent source).

        The event-driven generation path keys its arrival heap on this,
        so the simulator only touches a source on cycles where it
        actually releases a message.
        """
        return self._next_arrival

    def pull(self) -> Optional[Tuple[NodeId, int, float]]:
        """Realize the pending arrival and advance to the next one.

        Draws, in order, the destination, the size (only when the
        destination draw produced one), and the next interarrival gap —
        the exact per-source RNG draw order of one :meth:`poll` loop
        iteration, so polling and event-driven callers consume identical
        seeded streams.  Returns ``None`` for a discarded arrival (the
        pattern declined to emit a destination).
        """
        arrival = self._next_arrival
        dest = self._pattern.destination(self.node, self._rng)
        entry = None
        if dest is not None:
            entry = (dest, self._sizes.sample(self._rng), arrival)
        self._next_arrival = arrival + self._draw_gap()
        return entry

    def poll(self, cycle: int) -> list[Tuple[NodeId, int, float]]:
        """Messages arriving by ``cycle``: (destination, size, arrival time)."""
        arrivals: list[Tuple[NodeId, int, float]] = []
        arrival = self._next_arrival
        if arrival > cycle:
            return arrivals
        # The pull() loop, inlined with the lookups hoisted.  The per-
        # iteration draw order (destination, size when one was emitted,
        # gap) is unchanged, so the seeded stream matches pull()-based
        # polling exactly.
        rng = self._rng
        node = self.node
        destination = self._pattern.destination
        sample = self._sizes.sample
        expovariate = rng.expovariate
        rate = self._rate
        append = arrivals.append
        while arrival <= cycle:
            dest = destination(node, rng)
            if dest is not None:
                append((dest, sample(rng), arrival))
            arrival += expovariate(rate)
        self._next_arrival = arrival
        return arrivals


@dataclass
class Workload:
    """A complete workload: pattern, sizes, and per-node injection rate.

    Attributes:
        pattern: the traffic pattern.
        sizes: packet size distribution; defaults to the paper's bimodal
            10/200-flit mix.
        offered_load: requested injection rate in flits per node per
            cycle, as a fraction of channel bandwidth (1.0 means every
            node tries to inject a full channel's worth of flits).
        seed: base RNG seed; each node derives an independent stream.
    """

    pattern: TrafficPattern
    sizes: SizeDistribution = PAPER_SIZES
    offered_load: float = 0.1
    seed: int = 1

    def __post_init__(self) -> None:
        if self.offered_load < 0:
            raise ValueError(f"offered load must be non-negative: {self.offered_load}")

    @property
    def messages_per_node_per_cycle(self) -> float:
        """The Poisson rate implied by the offered load and mean size."""
        return self.offered_load / self.sizes.mean

    def sources(self) -> list[NodeSource]:
        """One seeded message source per node of the topology."""
        rate = self.messages_per_node_per_cycle
        return [
            NodeSource(
                node,
                self.pattern,
                self.sizes,
                rate,
                random.Random(f"{self.seed}/{index}"),
            )
            for index, node in enumerate(self.pattern.topology.nodes())
        ]
