"""Message generation: arrival process and packet sizes (Section 6).

The paper's processors generate messages at time intervals chosen from a
negative exponential distribution; each message is one packet of 10 or 200
flits with equal probability.  :class:`Workload` bundles the arrival
process, size distribution, and traffic pattern, and exposes a per-node
generator the simulator polls each cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.topology.channels import NodeId
from repro.traffic.patterns import TrafficPattern

__all__ = ["SizeDistribution", "PAPER_SIZES", "Workload", "NodeSource"]


@dataclass(frozen=True)
class SizeDistribution:
    """A discrete distribution of packet sizes in flits.

    Attributes:
        choices: (size, probability) pairs; probabilities must sum to 1.
    """

    choices: Tuple[Tuple[int, float], ...]

    def __post_init__(self) -> None:
        if not self.choices:
            raise ValueError("size distribution needs at least one choice")
        if any(size < 1 for size, _ in self.choices):
            raise ValueError(f"packet sizes must be positive: {self.choices}")
        total = sum(p for _, p in self.choices)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities must sum to 1, got {total}")

    @property
    def mean(self) -> float:
        """Expected packet size in flits."""
        return sum(size * p for size, p in self.choices)

    def sample(self, rng: random.Random) -> int:
        """Draw one packet size."""
        roll = rng.random()
        cumulative = 0.0
        for size, probability in self.choices:
            cumulative += probability
            if roll < cumulative:
                return size
        return self.choices[-1][0]

    @classmethod
    def fixed(cls, size: int) -> "SizeDistribution":
        """Every packet has the same size."""
        return cls(((size, 1.0),))


#: The paper's bimodal distribution: 10 or 200 flits, equal probability.
PAPER_SIZES = SizeDistribution(((10, 0.5), (200, 0.5)))


class NodeSource:
    """Poisson message source for one node.

    Interarrival times are negative-exponential with the node's mean;
    arrival times are kept as floats and a message is released once the
    simulation clock passes its arrival time.
    """

    def __init__(
        self,
        node: NodeId,
        pattern: TrafficPattern,
        sizes: SizeDistribution,
        messages_per_cycle: float,
        rng: random.Random,
    ):
        self.node = node
        self._pattern = pattern
        self._sizes = sizes
        self._rate = messages_per_cycle
        self._rng = rng
        self._next_arrival = (
            float("inf") if messages_per_cycle <= 0 else self._draw_gap()
        )

    def _draw_gap(self) -> float:
        return self._rng.expovariate(self._rate)

    def poll(self, cycle: int) -> list[Tuple[NodeId, int, float]]:
        """Messages arriving by ``cycle``: (destination, size, arrival time)."""
        arrivals = []
        while self._next_arrival <= cycle:
            dest = self._pattern.destination(self.node, self._rng)
            if dest is not None:
                size = self._sizes.sample(self._rng)
                arrivals.append((dest, size, self._next_arrival))
            self._next_arrival += self._draw_gap()
        return arrivals


@dataclass
class Workload:
    """A complete workload: pattern, sizes, and per-node injection rate.

    Attributes:
        pattern: the traffic pattern.
        sizes: packet size distribution; defaults to the paper's bimodal
            10/200-flit mix.
        offered_load: requested injection rate in flits per node per
            cycle, as a fraction of channel bandwidth (1.0 means every
            node tries to inject a full channel's worth of flits).
        seed: base RNG seed; each node derives an independent stream.
    """

    pattern: TrafficPattern
    sizes: SizeDistribution = PAPER_SIZES
    offered_load: float = 0.1
    seed: int = 1

    def __post_init__(self) -> None:
        if self.offered_load < 0:
            raise ValueError(f"offered load must be non-negative: {self.offered_load}")

    @property
    def messages_per_node_per_cycle(self) -> float:
        """The Poisson rate implied by the offered load and mean size."""
        return self.offered_load / self.sizes.mean

    def sources(self) -> list[NodeSource]:
        """One seeded message source per node of the topology."""
        rate = self.messages_per_node_per_cycle
        return [
            NodeSource(
                node,
                self.pattern,
                self.sizes,
                rate,
                random.Random(f"{self.seed}/{index}"),
            )
            for index, node in enumerate(self.pattern.topology.nodes())
        ]
