"""Traffic patterns: who sends to whom (Section 6).

A traffic pattern maps a source node to a destination — randomly for the
uniform pattern, deterministically for the permutation patterns.  The
paper's three workloads are uniform, matrix-transpose, and reverse-flip;
several further classics (bit-complement, bit-reverse, shuffle, hotspot)
are provided for wider evaluation.

Nodes whose permutation image is themselves (the diagonal of the mesh
transpose) generate no traffic; :meth:`TrafficPattern.destination` returns
``None`` for them.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional, Sequence

from repro.topology.base import Topology
from repro.topology.channels import NodeId

__all__ = ["TrafficPattern", "UniformTraffic", "PermutationTraffic", "HotspotTraffic"]


class TrafficPattern(ABC):
    """Assigns destinations to the messages a node generates."""

    name: str = "pattern"

    def __init__(self, topology: Topology):
        self.topology = topology

    @abstractmethod
    def destination(self, src: NodeId, rng: random.Random) -> Optional[NodeId]:
        """The destination for a message generated at ``src``.

        Returns ``None`` when ``src`` generates no traffic under this
        pattern (a fixed point of a permutation).
        """

    def active_sources(self) -> list[NodeId]:
        """Nodes that generate traffic under this pattern."""
        rng = random.Random(0)
        return [
            node
            for node in self.topology.nodes()
            if self.destination(node, rng) is not None
        ]

    def mean_minimal_hops(self) -> float:
        """Mean shortest-path length of the pattern's traffic.

        For permutations this is exact; for random patterns it averages
        over every (source, destination) pair the pattern can produce.
        Section 6 quotes these to show the adaptive algorithms' throughput
        wins are not an artifact of shorter paths.
        """
        total = 0.0
        count = 0
        for src in self.topology.nodes():
            for dst, weight in self.destination_distribution(src):
                total += self.topology.distance(src, dst) * weight
                count += weight
        if count == 0:
            return 0.0
        return total / count

    def destination_distribution(self, src: NodeId) -> list[tuple[NodeId, float]]:
        """(destination, weight) pairs for messages generated at ``src``.

        The default covers deterministic patterns; random patterns
        override it.
        """
        rng = random.Random(0)
        dst = self.destination(src, rng)
        return [] if dst is None else [(dst, 1.0)]

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}, {self.topology!r})"


class UniformTraffic(TrafficPattern):
    """Each message goes to any of the *other* nodes with equal probability."""

    name = "uniform"

    def __init__(self, topology: Topology):
        super().__init__(topology)
        self._nodes = list(topology.nodes())
        if len(self._nodes) < 2:
            raise ValueError("uniform traffic needs at least two nodes")

    def destination(self, src: NodeId, rng: random.Random) -> Optional[NodeId]:
        dst = src
        while dst == src:
            dst = self._nodes[rng.randrange(len(self._nodes))]
        return dst

    def destination_distribution(self, src: NodeId) -> list[tuple[NodeId, float]]:
        others = [n for n in self._nodes if n != src]
        weight = 1.0 / len(others)
        return [(dst, weight) for dst in others]


class PermutationTraffic(TrafficPattern):
    """A deterministic pattern: every node sends to a fixed partner.

    Args:
        topology: the network.
        permutation: maps a source node to its destination.  Fixed points
            are treated as "generates no traffic".
        name: label for reports.
    """

    def __init__(self, topology: Topology, permutation, name: str):
        super().__init__(topology)
        self._permutation = permutation
        self.name = name
        for node in topology.nodes():
            image = permutation(node)
            if not topology.contains(image):
                raise ValueError(
                    f"{name} permutation maps {node} outside the network: {image}"
                )

    def destination(self, src: NodeId, rng: random.Random) -> Optional[NodeId]:
        dst = self._permutation(src)
        return None if dst == src else dst


class HotspotTraffic(TrafficPattern):
    """Uniform traffic with a fraction redirected to one hot node.

    A standard stressor for adaptive routing: ``hotspot_fraction`` of all
    messages go to ``hotspot`` and the rest are uniform.
    """

    name = "hotspot"

    def __init__(
        self,
        topology: Topology,
        hotspot: NodeId,
        hotspot_fraction: float = 0.1,
    ):
        super().__init__(topology)
        topology.validate_node(hotspot)
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {hotspot_fraction}")
        self.hotspot = hotspot
        self.hotspot_fraction = hotspot_fraction
        self._uniform = UniformTraffic(topology)

    def destination(self, src: NodeId, rng: random.Random) -> Optional[NodeId]:
        if src != self.hotspot and rng.random() < self.hotspot_fraction:
            return self.hotspot
        return self._uniform.destination(src, rng)

    def destination_distribution(self, src: NodeId) -> list[tuple[NodeId, float]]:
        base = self._uniform.destination_distribution(src)
        if src == self.hotspot:
            return base
        scaled = [(dst, w * (1 - self.hotspot_fraction)) for dst, w in base]
        scaled.append((self.hotspot, self.hotspot_fraction))
        return scaled
