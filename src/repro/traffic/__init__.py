"""Traffic patterns and workload generation for the simulator."""

from repro.traffic.patterns import (
    HotspotTraffic,
    PermutationTraffic,
    TrafficPattern,
    UniformTraffic,
)
from repro.traffic.permutations import (
    available_patterns,
    bit_complement,
    bit_reverse,
    hypercube_transpose,
    make_pattern,
    mesh_transpose,
    perfect_shuffle,
    reverse_flip,
    tornado,
)
from repro.traffic.workload import (
    PAPER_SIZES,
    NodeSource,
    SizeDistribution,
    Workload,
)

__all__ = [
    "TrafficPattern",
    "UniformTraffic",
    "PermutationTraffic",
    "HotspotTraffic",
    "mesh_transpose",
    "hypercube_transpose",
    "reverse_flip",
    "bit_complement",
    "bit_reverse",
    "perfect_shuffle",
    "tornado",
    "make_pattern",
    "available_patterns",
    "SizeDistribution",
    "PAPER_SIZES",
    "Workload",
    "NodeSource",
]
