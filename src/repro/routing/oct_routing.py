"""Turn-model routing on octagonal meshes (Section 7 future work).

Negative-first generalizes to the eight-direction octagonal network with
one refinement: the phase potential is the lexicographic ``phi = n*a + b``
rather than the coordinate sum (the anti-diagonal leaves the sum
unchanged).  Every negative-signed hop strictly decreases ``phi`` and
every positive-signed hop strictly increases it, so routing all
``phi``-negative hops before any ``phi``-positive hop is deadlock free by
the Theorem 5 argument — machine-checked by
:func:`repro.core.numbering.potential_numbering` in the tests.

Minimality needs one care: once in the positive phase the router offers
only positive hops (a positive-phase packet's remaining displacement
always satisfies ``rx >= 0`` and ``ry >= 0 or |ry| <= rx``, from which a
positive-only shortest completion exists), preserving both minimality and
the one-way phase transition the proof requires.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.routing.base import RoutingAlgorithm
from repro.topology.channels import Channel, NodeId
from repro.topology.octagonal import OctMesh

__all__ = ["OctNegativeFirstRouting", "OctDimensionOrderRouting"]


class OctNegativeFirstRouting(RoutingAlgorithm):
    """Negative-first on the octagonal mesh, over the phi potential."""

    name = "oct-negative-first"
    minimal = True
    uses_in_channel = True  # positive arrival forbids further descent

    def __init__(self, topology: OctMesh):
        if not isinstance(topology, OctMesh):
            raise ValueError("octagonal routing needs an OctMesh")
        super().__init__(topology)

    def _positive_completable(self, node: NodeId, dest: NodeId) -> bool:
        """Whether a positive-only shortest completion exists from here.

        Positive moves subtract (1,0), (0,1), (1,1), or (1,-1) from the
        remaining displacement ``r = dest - node``, so a positive-only
        minimal path exists exactly when ``rx >= 0`` and either
        ``ry >= 0`` or ``-ry <= rx``.
        """
        rx = dest[0] - node[0]
        ry = dest[1] - node[1]
        return rx >= 0 and (ry >= 0 or -ry <= rx)

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        productive = self.productive_channels(node, dest)
        # Positive hops are only offered when the destination remains
        # positive-only reachable afterwards (a productive diagonal can
        # otherwise strand a packet that may no longer descend).
        positive = tuple(
            ch
            for ch in productive
            if ch.direction.is_positive
            and self._positive_completable(ch.dst, dest)
        )
        if in_channel is not None and in_channel.direction.is_positive:
            # One-way phase transition: after any positive hop, only
            # positive hops (always minimally sufficient; see module doc).
            return positive
        negative = tuple(ch for ch in productive if ch.direction.is_negative)
        return negative if negative else positive


class OctDimensionOrderRouting(RoutingAlgorithm):
    """Nonadaptive baseline: axis ``a`` first, then ``b``, no diagonals."""

    name = "oct-ab-order"
    minimal = False  # minimal in the Manhattan metric, not the king metric
    uses_in_channel = False

    def __init__(self, topology: OctMesh):
        if not isinstance(topology, OctMesh):
            raise ValueError("octagonal routing needs an OctMesh")
        super().__init__(topology)

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        for dim in (0, 1):
            delta = dest[dim] - node[dim]
            if delta == 0:
                continue
            sign = 1 if delta > 0 else -1
            for channel in self.topology.out_channels(node):
                if channel.direction.dim == dim and channel.direction.sign == sign:
                    return (channel,)
        return ()
