"""Turn-model routing on k-ary n-cubes (Section 4.2).

The partially adaptive mesh algorithms extend to the wraparound channels of
k-ary n-cubes in two ways, both implemented here:

* :class:`FirstHopWraparoundRouting` allows a packet to be routed along a
  wraparound channel only on its first hop; afterwards any deadlock-free
  mesh algorithm takes over.  The wraparound channels can be numbered above
  every mesh channel, so deadlock freedom is inherited from the base
  algorithm.

* :class:`NegativeFirstTorusRouting` classifies each wraparound channel by
  the virtual direction in which it routes packets — the wraparound channel
  leaving the east edge is a second channel *to the west* — and applies
  negative-first over the virtual directions.

Both are strictly nonminimal in torus distance: for k-ary n-cubes with
``k > 4`` no deadlock-free minimal algorithm exists without extra channels.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.routing.base import RoutingAlgorithm
from repro.topology.channels import Channel, NodeId
from repro.topology.torus import Torus

__all__ = ["FirstHopWraparoundRouting", "NegativeFirstTorusRouting"]


class FirstHopWraparoundRouting(RoutingAlgorithm):
    """Wraparound channels on the first hop only, then a mesh algorithm.

    Args:
        topology: the torus to route on.
        base: a deadlock-free routing algorithm for the same node set,
            treating the network as a mesh (it is queried with mesh
            channels only and never offered a wraparound).
    """

    uses_in_channel = True  # wraparound arrivals are re-injected into base

    def __init__(self, topology: Torus, base: RoutingAlgorithm):
        super().__init__(topology)
        self.base = base
        self.minimal = False
        self.name = f"{base.name}+first-hop-wrap"

    def _wrap_helps(self, channel: Channel, dest: NodeId) -> bool:
        """Whether the wraparound hop shortens the remaining mesh distance."""
        dim = channel.direction.dim
        before = abs(dest[dim] - channel.src[dim])
        after = abs(dest[dim] - channel.dst[dim])
        return after + 1 < before

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        candidates = list(self.base.route(None if in_channel is None
                                          or in_channel.wraparound
                                          else in_channel, node, dest))
        if in_channel is None:
            candidates.extend(
                ch
                for ch in self.topology.out_channels(node)
                if ch.wraparound and self._wrap_helps(ch, dest)
            )
        return tuple(candidates)


class NegativeFirstTorusRouting(RoutingAlgorithm):
    """Negative-first over virtual directions, wraparounds included.

    Every channel — mesh or wraparound — carries the virtual direction in
    which it routes packets.  Negative hops all precede positive hops, and
    a wraparound is taken only when it pays off:

    * a negative wraparound (east edge to west edge) converts the
      remaining travel in its dimension into eastward travel, worthwhile
      when ``1 + dest`` beats the mesh-west distance;
    * a positive wraparound (west edge to east edge) lands exactly on the
      east edge, so it is taken only when the destination coordinate is
      ``k - 1`` (afterwards no westward travel is permitted).
    """

    uses_in_channel = True  # a positive arrival ends the negative phase

    def __init__(self, topology: Torus):
        super().__init__(topology)
        self.minimal = False
        self.name = "negative-first-torus"

    def _useful(self, channel: Channel, dest: NodeId) -> bool:
        dim = channel.direction.dim
        cur = channel.src[dim]
        want = dest[dim]
        if channel.direction.is_negative:
            if channel.wraparound:
                # Jump from the east edge (k-1) to 0, then travel east:
                # 1 + want hops versus cur - want straight west.
                return want != cur and 1 + want < cur - want
            return want < cur
        if channel.wraparound:
            # Jump from the west edge (0) to k-1; no west travel may
            # follow, so only exact landings count.
            return want == self.topology.shape[dim] - 1 and want != cur
        return want > cur

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        negative = []
        positive = []
        for channel in self.topology.out_channels(node):
            if not self._useful(channel, dest):
                continue
            if channel.direction.is_negative:
                negative.append(channel)
            else:
                positive.append(channel)
        in_positive_phase = (
            in_channel is not None and in_channel.direction.is_positive
        )
        if in_positive_phase or not negative:
            return tuple(positive)
        return tuple(negative)
