"""Generic routing driven directly by a turn restriction.

The turn model's promise is that *any* routing algorithm using only the
permitted turns is deadlock free.  :class:`TurnRestrictionRouting` is the
most literal such algorithm: it offers every output channel whose turn from
the incoming direction is permitted, optionally filtered to shortest-path
hops (minimal mode) or to hops from which the destination remains reachable
(nonminimal mode).

The named algorithms of Sections 3-5 are hand-written phase algorithms; the
test suite checks them hop-for-hop equivalent to this table-driven router
instantiated with their restriction, which is how we validate both sides.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, FrozenSet, Mapping, Optional, Sequence, Set, Tuple

from repro.core.directions import Direction
from repro.core.restrictions import TurnRestriction
from repro.routing.base import RoutingAlgorithm
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId

__all__ = ["ReachabilityOracle", "TurnRestrictionRouting"]

#: A routing state: the node a packet occupies and its direction of arrival.
State = Tuple[NodeId, Optional[Direction]]


class ReachabilityOracle:
    """Answers: from this routing state, can the destination be reached?

    A nonminimal router must never take a hop after which the turn
    restriction makes the destination unreachable (e.g. a negative-first
    packet overshooting its destination in a positive direction could
    never come back).  The oracle computes, per destination, the set of
    (node, arrival-direction) states from which some permitted-turn path
    reaches the destination, by reverse breadth-first search.
    """

    def __init__(self, topology: Topology, restriction: TurnRestriction):
        self.topology = topology
        self.restriction = restriction
        self._cache: Dict[NodeId, Set[State]] = {}
        self._in_channels: Dict[NodeId, list[Channel]] = {}
        for channel in topology.channels():
            self._in_channels.setdefault(channel.dst, []).append(channel)

    def can_reach(
        self, node: NodeId, arrival: Optional[Direction], dest: NodeId
    ) -> bool:
        """Whether ``dest`` is reachable from ``node`` arriving via ``arrival``."""
        if node == dest:
            return True
        return (node, arrival) in self._states_reaching(dest)

    def _states_reaching(self, dest: NodeId) -> Set[State]:
        cached = self._cache.get(dest)
        if cached is not None:
            return cached
        # Reverse BFS: a state (u, d_in) reaches dest if some permitted
        # next hop (u -> v via direction d) leads to a reaching state
        # (v, d), or lands on dest directly.
        reaching: Set[State] = set()
        frontier: deque[State] = deque()
        for channel in self._in_channels.get(dest, []):
            # Any arrival state whose turn into this final hop is permitted
            # reaches dest in one hop.
            for arrival in self._arrivals(channel.src):
                if self.restriction.permits(arrival, channel.direction):
                    candidate = (channel.src, arrival)
                    if candidate not in reaching:
                        reaching.add(candidate)
                        frontier.append(candidate)
        while frontier:
            node, arrival = frontier.popleft()
            # Predecessor states: arriving at `node` in direction `arrival`
            # means some channel with that direction enters node; its source
            # may have arrived in any direction permitting the turn.
            if arrival is None:
                continue
            for channel in self._in_channels.get(node, []):
                if channel.direction != arrival:
                    continue
                for prev_arrival in self._arrivals(channel.src):
                    if self.restriction.permits(prev_arrival, arrival):
                        candidate = (channel.src, prev_arrival)
                        if candidate not in reaching:
                            reaching.add(candidate)
                            frontier.append(candidate)
        cached = reaching
        self._cache[dest] = cached
        return cached

    def _arrivals(self, node: NodeId) -> list[Optional[Direction]]:
        """Possible arrival directions at ``node`` (None = injected here)."""
        arrivals: list[Optional[Direction]] = [None]
        arrivals.extend(ch.direction for ch in self._in_channels.get(node, []))
        return arrivals


class TurnRestrictionRouting(RoutingAlgorithm):
    """Routing that offers every channel with a permitted turn.

    Args:
        topology: the network to route on.
        restriction: which turns are permitted.
        minimal: when true (default) only shortest-path hops are offered;
            when false, any permitted hop that keeps the destination
            reachable is offered, productive hops first — the paper's
            nonminimal mode, "more adaptive and fault tolerant".
        name: optional label; defaults to the restriction's name.
    """

    uses_in_channel = True  # the arrival direction selects permitted turns

    def __init__(
        self,
        topology: Topology,
        restriction: TurnRestriction,
        minimal: bool = True,
        name: str = "",
    ):
        super().__init__(topology)
        if restriction.n_dims != topology.n_dims:
            raise ValueError(
                f"restriction is {restriction.n_dims}-dimensional but the "
                f"topology has {topology.n_dims} dimensions"
            )
        self.restriction = restriction
        self.minimal = minimal
        self.name = name or restriction.name or "turn-table"
        if not minimal:
            self.name = f"{self.name}-nonminimal"
        self._oracle = None if minimal else ReachabilityOracle(topology, restriction)
        self._minimal_cache: Dict[Tuple[NodeId, Optional[Direction], NodeId], bool] = {}

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict; inverse of :meth:`from_dict`.

        The emitted ``name`` is the base label — the constructor
        re-appends the ``-nonminimal`` suffix on rebuild — and the
        restriction serializes in sorted order, so equal routers
        serialize byte-identically (the property synthesis manifests
        rely on).
        """
        base_name = self.name
        if not self.minimal and base_name.endswith("-nonminimal"):
            base_name = base_name[: -len("-nonminimal")]
        return {
            "restriction": self.restriction.to_dict(),
            "minimal": self.minimal,
            "name": base_name,
        }

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], topology: Topology
    ) -> "TurnRestrictionRouting":
        """Rebuild a router saved by :meth:`to_dict` on ``topology``."""
        return cls(
            topology,
            TurnRestriction.from_dict(payload["restriction"]),
            minimal=bool(payload.get("minimal", True)),
            name=str(payload.get("name", "")),
        )

    def _minimal_reaches(
        self, node: NodeId, arrival: Optional[Direction], dest: NodeId
    ) -> bool:
        """Whether a permitted all-productive path exists from this state.

        Minimal routing must never take a hop into a state from which the
        remaining shortest-path hops require a prohibited turn (e.g. a
        north-last packet turning north while eastward hops remain could
        never turn back east).  The recursion is over strictly decreasing
        distance, so it terminates within the network diameter.
        """
        if node == dest:
            return True
        key = (node, arrival, dest)
        cached = self._minimal_cache.get(key)
        if cached is not None:
            return cached
        result = any(
            self._minimal_reaches(channel.dst, channel.direction, dest)
            for channel in self.productive_channels(node, dest)
            if self.restriction.permits(arrival, channel.direction)
        )
        self._minimal_cache[key] = result
        return result

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        arrival = self.in_direction(in_channel)
        if self.minimal:
            return tuple(
                channel
                for channel in self.productive_channels(node, dest)
                if self.restriction.permits(arrival, channel.direction)
                and self._minimal_reaches(channel.dst, channel.direction, dest)
            )
        assert self._oracle is not None
        productive = set(self.topology.minimal_directions(node, dest))
        allowed = [
            channel
            for channel in self.topology.out_channels(node)
            if not channel.wraparound
            and self.restriction.permits(arrival, channel.direction)
            and self._oracle.can_reach(channel.dst, channel.direction, dest)
        ]
        first = [ch for ch in allowed if ch.direction in productive]
        rest = [ch for ch in allowed if ch.direction not in productive]
        return tuple(first + rest)
