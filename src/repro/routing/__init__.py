"""Routing algorithms derived from the turn model, plus baselines."""

from repro.routing.base import RoutingAlgorithm
from repro.routing.cache import RouteCache
from repro.routing.dimension_order import (
    DimensionOrderRouting,
    ecube_routing,
    xy_routing,
    yx_routing,
)
from repro.routing.hex_routing import (
    HexDimensionOrderRouting,
    HexNegativeFirstRouting,
)
from repro.routing.oct_routing import (
    OctDimensionOrderRouting,
    OctNegativeFirstRouting,
)
from repro.routing.ndim import (
    AllButOneNegativeFirstRouting,
    AllButOnePositiveLastRouting,
    abonf_nonminimal,
    abopl_nonminimal,
)
from repro.routing.negative_first import (
    NegativeFirstRouting,
    negative_first_nonminimal,
)
from repro.routing.north_last import NorthLastRouting, north_last_nonminimal
from repro.routing.pcube import PCubeRouting
from repro.routing.registry import (
    UnknownNameError,
    available_algorithms,
    canonical_name,
    make_routing,
)
from repro.routing.selection import (
    FCFSInputSelection,
    InputSelectionPolicy,
    MostFreeSelection,
    OutputSelectionPolicy,
    RandomInputSelection,
    RandomSelection,
    SelectionContext,
    XYSelection,
    make_input_policy,
    make_output_policy,
)
from repro.routing.synth_names import (
    is_synth_name,
    parse_synth_name,
    routing_from_synth_name,
    synth_name,
)
from repro.routing.torus_routing import (
    FirstHopWraparoundRouting,
    NegativeFirstTorusRouting,
)
from repro.routing.turn_table import ReachabilityOracle, TurnRestrictionRouting
from repro.routing.virtual_channels import (
    DatelineTorusRouting,
    LaneSplitRouting,
    o1turn_routing,
    yx_routing_order,
)
from repro.routing.west_first import WestFirstRouting, west_first_nonminimal

__all__ = [
    "RoutingAlgorithm",
    "RouteCache",
    "DimensionOrderRouting",
    "xy_routing",
    "yx_routing",
    "HexNegativeFirstRouting",
    "HexDimensionOrderRouting",
    "OctNegativeFirstRouting",
    "OctDimensionOrderRouting",
    "ecube_routing",
    "WestFirstRouting",
    "west_first_nonminimal",
    "NorthLastRouting",
    "north_last_nonminimal",
    "NegativeFirstRouting",
    "negative_first_nonminimal",
    "AllButOneNegativeFirstRouting",
    "AllButOnePositiveLastRouting",
    "abonf_nonminimal",
    "abopl_nonminimal",
    "PCubeRouting",
    "FirstHopWraparoundRouting",
    "NegativeFirstTorusRouting",
    "TurnRestrictionRouting",
    "DatelineTorusRouting",
    "LaneSplitRouting",
    "o1turn_routing",
    "yx_routing_order",
    "ReachabilityOracle",
    "SelectionContext",
    "OutputSelectionPolicy",
    "XYSelection",
    "RandomSelection",
    "MostFreeSelection",
    "InputSelectionPolicy",
    "FCFSInputSelection",
    "RandomInputSelection",
    "make_output_policy",
    "make_input_policy",
    "make_routing",
    "available_algorithms",
    "canonical_name",
    "UnknownNameError",
    "is_synth_name",
    "parse_synth_name",
    "routing_from_synth_name",
    "synth_name",
]
