"""p-cube routing for hypercubes (Section 5).

The special case of negative-first for hypercubes has a particularly
compact expression in bitwise logic.  Let ``C`` be the address of the node
the header currently occupies and ``D`` the destination address.

Minimal p-cube (Figure 11):

1. If ``C == D``, deliver the packet.
2. ``R = C & ~D``  (dimensions to clear: phase one).
3. If ``R == 0``, then ``R = ~C & D``  (dimensions to set: phase two).
4. Route along any available channel in a dimension ``i`` with ``r_i = 1``.

Nonminimal p-cube (Figure 12) additionally lets phase one route along any
dimension whose current bit is 1 — including dimensions where the
destination bit is also 1, which must be set again in phase two.  Phase
one hops all clear bits, so the number of ones decreases monotonically and
routing remains livelock free.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.routing.base import RoutingAlgorithm
from repro.topology.channels import Channel, NodeId
from repro.topology.hypercube import Hypercube

__all__ = ["PCubeRouting"]


class PCubeRouting(RoutingAlgorithm):
    """p-cube routing, minimal (Figure 11) or nonminimal (Figure 12)."""

    uses_in_channel = False

    def __init__(self, topology: Hypercube, minimal: bool = True):
        if not isinstance(topology, Hypercube):
            raise ValueError("p-cube routing is defined for hypercubes")
        super().__init__(topology)
        self.minimal = minimal
        self.name = "p-cube" if minimal else "p-cube-nonminimal"
        # A hypercube node has exactly one channel per dimension; the
        # per-call dict build in route() is pure overhead, so do it once.
        self._by_dim = {
            node: {ch.direction.dim: ch for ch in topology.out_channels(node)}
            for node in topology.nodes()
        }

    def phase_one_dims(self, node: NodeId, dest: NodeId) -> list[int]:
        """Dimensions with ``c_i = 1`` and ``d_i = 0`` (``R = C & ~D``)."""
        return [i for i, (c, d) in enumerate(zip(node, dest)) if c == 1 and d == 0]

    def phase_two_dims(self, node: NodeId, dest: NodeId) -> list[int]:
        """Dimensions with ``c_i = 0`` and ``d_i = 1`` (``R = ~C & D``)."""
        return [i for i, (c, d) in enumerate(zip(node, dest)) if c == 0 and d == 1]

    def route_dims(self, node: NodeId, dest: NodeId) -> list[int]:
        """The dimensions the algorithm may route along (the set bits of R).

        Productive dimensions come first; in nonminimal mode the extra
        phase-one choices (``c_i = 1`` and ``d_i = 1``) follow them.
        """
        phase_one = self.phase_one_dims(node, dest)
        if phase_one:
            dims = list(phase_one)
            if not self.minimal:
                dims.extend(
                    i
                    for i, (c, d) in enumerate(zip(node, dest))
                    if c == 1 and d == 1
                )
            return dims
        return self.phase_two_dims(node, dest)

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        channels = self._by_dim[node]
        return tuple(channels[dim] for dim in self.route_dims(node, dest))

    def choices(self, node: NodeId, dest: NodeId) -> tuple[int, int]:
        """(minimal choices, extra nonminimal choices) at this hop.

        This is the "choices" column of the Section 5 table, where the
        parenthesized number is the additional choices available with
        nonminimal routing.
        """
        phase_one = self.phase_one_dims(node, dest)
        if phase_one:
            extra = sum(1 for c, d in zip(node, dest) if c == 1 and d == 1)
            return len(phase_one), extra
        return len(self.phase_two_dims(node, dest)), 0
