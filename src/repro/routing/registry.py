"""Name-based construction of routing algorithms.

The analysis harness and the experiment drivers refer to algorithms by the
names the paper uses in its figures (``xy``, ``e-cube``, ``abonf``,
``abopl``, ``negative-first``, ``p-cube``, ...); this registry turns a name
plus a topology into the right algorithm instance.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict

from repro.routing.base import RoutingAlgorithm
from repro.routing.dimension_order import DimensionOrderRouting, yx_routing
from repro.routing.hex_routing import (
    HexDimensionOrderRouting,
    HexNegativeFirstRouting,
)
from repro.routing.oct_routing import (
    OctDimensionOrderRouting,
    OctNegativeFirstRouting,
)
from repro.routing.ndim import (
    AllButOneNegativeFirstRouting,
    AllButOnePositiveLastRouting,
    abonf_nonminimal,
    abopl_nonminimal,
)
from repro.routing.negative_first import (
    NegativeFirstRouting,
    negative_first_nonminimal,
)
from repro.routing.north_last import NorthLastRouting, north_last_nonminimal
from repro.routing.pcube import PCubeRouting
from repro.routing.torus_routing import (
    FirstHopWraparoundRouting,
    NegativeFirstTorusRouting,
)
from repro.routing.west_first import WestFirstRouting, west_first_nonminimal
from repro.topology.base import Topology
from repro.topology.hexagonal import HexMesh
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh
from repro.topology.octagonal import OctMesh
from repro.topology.torus import Torus

__all__ = [
    "make_routing",
    "available_algorithms",
    "canonical_name",
    "UnknownNameError",
]

Factory = Callable[[Topology], RoutingAlgorithm]


class UnknownNameError(KeyError, ValueError):
    """An unregistered routing/pattern/policy name.

    Subclasses both :class:`KeyError` (it is a failed registry lookup)
    and :class:`ValueError` (the historical type callers catch).  The
    message lists close matches first — synthesized names like
    ``synth2-nw.sw`` are long enough that typos are otherwise hard to
    spot — and always lists the valid names.
    """

    def __init__(self, kind: str, name: str, known: "list[str]") -> None:
        self.kind = kind
        self.name = name
        self.known = sorted(known)
        self.suggestions = difflib.get_close_matches(
            canonical_name(name), self.known, n=3, cutoff=0.6
        )
        hint = ""
        if self.suggestions:
            hint = f" did you mean {' or '.join(self.suggestions)}?"
        message = (
            f"unknown {kind} {name!r};{hint} known: {', '.join(self.known)}"
        )
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would repr() the message.
        return self.args[0]


def canonical_name(name: str) -> str:
    """Normalize a registry name: trim, lowercase, underscores to hyphens.

    ``"negative_first"``, ``" Negative-First "``, and ``"negative-first"``
    all canonicalize to ``"negative-first"``.  Every registry lookup
    (routings, patterns, selection policies) goes through this one
    function so aliases behave identically everywhere.
    """
    return name.strip().lower().replace("_", "-")

_FACTORIES: Dict[str, Factory] = {
    # Nonadaptive baselines.
    "xy": lambda t: DimensionOrderRouting(t, name="xy"),
    "e-cube": lambda t: DimensionOrderRouting(t, name="e-cube"),
    "dimension-order": DimensionOrderRouting,
    # 2D mesh partially adaptive algorithms (Section 3).
    "west-first": WestFirstRouting,
    "north-last": NorthLastRouting,
    "west-first-nonminimal": west_first_nonminimal,
    "north-last-nonminimal": north_last_nonminimal,
    # n-dimensional algorithms (Section 4.1); for 2D meshes abonf is
    # west-first and abopl is north-last, matching the Section 6 labels.
    "negative-first": NegativeFirstRouting,
    "negative-first-nonminimal": negative_first_nonminimal,
    "abonf": AllButOneNegativeFirstRouting,
    "abopl": AllButOnePositiveLastRouting,
    "abonf-nonminimal": abonf_nonminimal,
    "abopl-nonminimal": abopl_nonminimal,
    # Hypercube algorithms (Section 5).
    "p-cube": lambda t: PCubeRouting(t, minimal=True),
    "p-cube-nonminimal": lambda t: PCubeRouting(t, minimal=False),
    # yx (the xy mirror, used by lane-split virtual-channel routing).
    "yx": yx_routing,
    # Section 7 future-work topologies.
    "hex-negative-first": HexNegativeFirstRouting,
    "hex-ab-order": HexDimensionOrderRouting,
    "oct-negative-first": OctNegativeFirstRouting,
    "oct-ab-order": OctDimensionOrderRouting,
    # k-ary n-cube extensions (Section 4.2).
    "negative-first-torus": NegativeFirstTorusRouting,
    "xy+first-hop-wrap": lambda t: FirstHopWraparoundRouting(
        t, DimensionOrderRouting(t)
    ),
    "negative-first+first-hop-wrap": lambda t: FirstHopWraparoundRouting(
        t, NegativeFirstRouting(t)
    ),
}


def available_algorithms(topology: Topology) -> list[str]:
    """Names of the algorithms applicable to the given topology."""
    names = []
    for name in sorted(_FACTORIES):
        if name.startswith("hex-"):
            applicable = isinstance(topology, HexMesh)
        elif name.startswith("oct-"):
            applicable = isinstance(topology, OctMesh)
        elif name in ("xy", "yx", "west-first", "north-last",
                      "west-first-nonminimal", "north-last-nonminimal"):
            applicable = isinstance(topology, Mesh) and topology.n_dims == 2
        elif name in ("e-cube", "p-cube", "p-cube-nonminimal"):
            applicable = isinstance(topology, Hypercube)
        elif "torus" in name or "wrap" in name:
            applicable = isinstance(topology, Torus)
        else:
            applicable = isinstance(topology, (Mesh, Hypercube))
        if applicable:
            names.append(name)
    return names


def make_routing(name: str, topology: Topology) -> RoutingAlgorithm:
    """Construct the named routing algorithm on ``topology``.

    Args:
        name: an algorithm name as used in the paper's figures; see
            :func:`available_algorithms`.
        topology: the network to route on.

    Names are canonicalized first (see :func:`canonical_name`), so
    ``"negative_first"`` and ``"Negative-First"`` both resolve.

    Synthesized names (``synth2-nw.sw``; see
    :mod:`repro.routing.synth_names`) are self-describing and resolve
    without prior registration, so any process — sweep workers
    included — can rebuild a synthesized router from its name alone.

    Raises:
        UnknownNameError: for unknown names (a KeyError *and* a
            ValueError), listing the valid ones.
    """
    canonical = canonical_name(name)
    try:
        factory = _FACTORIES[canonical]
    except KeyError:
        # Deferred import: synth_names imports turn_table, which imports
        # repro.routing.base alongside this module.
        from repro.routing.synth_names import (
            is_synth_name,
            routing_from_synth_name,
        )

        if is_synth_name(canonical):
            # A grammar-valid synth name; any remaining failure (bad
            # turn code, dimension mismatch, unsupported topology) is a
            # precise ValueError of its own, not an unknown name.
            return routing_from_synth_name(canonical, topology)
        raise UnknownNameError(
            "routing algorithm", name, list(_FACTORIES)
        ) from None
    return factory(topology)
