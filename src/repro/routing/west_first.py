"""West-first routing for 2D meshes (Section 3.1).

Route a packet first west, if necessary, and then adaptively south, east,
and north.  The prohibited turns are the two to the west, so to travel west
a packet must start out in that direction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.directions import WEST
from repro.core.restrictions import west_first_restriction
from repro.routing.base import RoutingAlgorithm
from repro.routing.turn_table import TurnRestrictionRouting
from repro.topology.channels import Channel, NodeId
from repro.topology.mesh import Mesh

__all__ = ["WestFirstRouting", "west_first_nonminimal"]


class WestFirstRouting(RoutingAlgorithm):
    """Minimal west-first routing: west hops first, then adaptive S/E/N."""

    name = "west-first"
    minimal = True

    def __init__(self, topology: Mesh):
        if topology.n_dims != 2:
            raise ValueError("west-first routing is defined for 2D meshes")
        super().__init__(topology)

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        if dest[0] < node[0]:
            # The destination is to the west: all westward hops come first.
            channel = self.topology.channel_in_direction(node, WEST)
            return (channel,) if channel is not None else ()
        # Otherwise route adaptively among the productive directions, none
        # of which is west.
        return tuple(self.productive_channels(node, dest))


def west_first_nonminimal(topology: Mesh) -> TurnRestrictionRouting:
    """Nonminimal west-first: any permitted turn that keeps dest reachable.

    Figure 5b's alternative paths around blocked channels come from this
    mode; it is built on the generic turn-table router with the west-first
    restriction (including the safe west-to-east reversal of Step 6).
    """
    return TurnRestrictionRouting(
        topology, west_first_restriction(), minimal=False, name="west-first"
    )
