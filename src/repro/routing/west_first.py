"""West-first routing for 2D meshes (Section 3.1).

Route a packet first west, if necessary, and then adaptively south, east,
and north.  The prohibited turns are the two to the west, so to travel west
a packet must start out in that direction.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.directions import EAST, NORTH, SOUTH, WEST
from repro.core.restrictions import west_first_restriction
from repro.routing.base import RoutingAlgorithm
from repro.routing.turn_table import TurnRestrictionRouting
from repro.topology.channels import Channel, NodeId
from repro.topology.mesh import Mesh

__all__ = ["WestFirstRouting", "west_first_nonminimal"]


class WestFirstRouting(RoutingAlgorithm):
    """Minimal west-first routing: west hops first, then adaptive S/E/N."""

    name = "west-first"
    minimal = True
    uses_in_channel = False

    def __init__(self, topology: Mesh):
        if topology.n_dims != 2:
            raise ValueError("west-first routing is defined for 2D meshes")
        super().__init__(topology)
        # Hot-path table: on a plain 2D mesh (no wraparounds, coordinate
        # distances) the routing decision reduces to coordinate compares
        # against precomputed per-node (W, E, S, N) channels, in the same
        # candidate order productive_channels yields.  Other topologies
        # (if ever passed) keep the generic path.
        self._compass: Optional[Dict[NodeId, Tuple]] = None
        if isinstance(topology, Mesh):
            self._compass = {}
            for node in topology.nodes():
                by_dir = {ch.direction: ch for ch in topology.out_channels(node)}
                self._compass[node] = (
                    by_dir.get(WEST),
                    by_dir.get(EAST),
                    by_dir.get(SOUTH),
                    by_dir.get(NORTH),
                )

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        compass = self._compass
        if compass is not None:
            west, east, south, north = compass[node]
            x, y = node
            if dest[0] < x:
                # The destination is to the west: westward hops come first.
                return (west,) if west is not None else ()
            out = []
            if dest[0] > x:
                out.append(east)
            dy = dest[1]
            if dy < y:
                out.append(south)
            elif dy > y:
                out.append(north)
            return tuple(out)
        if dest[0] < node[0]:
            # The destination is to the west: all westward hops come first.
            channel = self.topology.channel_in_direction(node, WEST)
            return (channel,) if channel is not None else ()
        # Otherwise route adaptively among the productive directions, none
        # of which is west.
        return tuple(self.productive_channels(node, dest))


def west_first_nonminimal(topology: Mesh) -> TurnRestrictionRouting:
    """Nonminimal west-first: any permitted turn that keeps dest reachable.

    Figure 5b's alternative paths around blocked channels come from this
    mode; it is built on the generic turn-table router with the west-first
    restriction (including the safe west-to-east reversal of Step 6).
    """
    return TurnRestrictionRouting(
        topology, west_first_restriction(), minimal=False, name="west-first"
    )
