"""North-last routing for 2D meshes (Section 3.2).

Route a packet first adaptively west, south, and east, and then north.
The prohibited turns are the two when travelling north, so a packet should
only travel north when that is the last direction it needs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.directions import NORTH
from repro.core.restrictions import north_last_restriction
from repro.routing.base import RoutingAlgorithm
from repro.routing.turn_table import TurnRestrictionRouting
from repro.topology.channels import Channel, NodeId
from repro.topology.mesh import Mesh

__all__ = ["NorthLastRouting", "north_last_nonminimal"]


class NorthLastRouting(RoutingAlgorithm):
    """Minimal north-last routing: adaptive W/S/E first, north last."""

    name = "north-last"
    minimal = True
    uses_in_channel = False

    def __init__(self, topology: Mesh):
        if topology.n_dims != 2:
            raise ValueError("north-last routing is defined for 2D meshes")
        super().__init__(topology)
        self._lanes = self.coordinate_lanes()

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        lanes = self._lanes
        if lanes is not None:
            northward = dest[1] > node[1]
            productive = []
            before_north = []
            for dim, is_neg, channel in lanes[node]:
                if is_neg:
                    if dest[dim] < node[dim]:
                        productive.append(channel)
                        before_north.append(channel)
                elif dest[dim] > node[dim]:
                    productive.append(channel)
                    if dim != 1:
                        before_north.append(channel)
            if not northward:
                # No northward travel needed: fully adaptive among W/S/E.
                return tuple(productive)
            if before_north:
                # Northward hops wait until the other dimension resolves.
                return tuple(before_north)
            return tuple(productive)
        productive = self.productive_channels(node, dest)
        if dest[1] <= node[1]:
            # No northward travel needed: fully adaptive among W/S/E.
            return tuple(productive)
        before_north = [ch for ch in productive if ch.direction != NORTH]
        if before_north:
            # Northward hops wait until every other dimension is resolved.
            return tuple(before_north)
        return tuple(productive)


def north_last_nonminimal(topology: Mesh) -> TurnRestrictionRouting:
    """Nonminimal north-last via the generic turn-table router."""
    return TurnRestrictionRouting(
        topology, north_last_restriction(), minimal=False, name="north-last"
    )
