"""Routing algorithm interface.

A routing algorithm maps (incoming channel, current node, destination) to
the set of output channels the packet may take next.  Returning several
channels is what makes an algorithm adaptive; the router's output-selection
policy picks among the ones that are free (Section 6).

Algorithms are callable, so an instance can be passed anywhere a
:data:`repro.core.channel_graph.RouteFn` is expected — the deadlock checker,
the numbering certifier, the path counter, and the simulator all consume
the same object.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence, Tuple

from repro.core.directions import Direction
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId

__all__ = ["RoutingAlgorithm"]

#: One precomputed out-channel: (dimension, is_negative, channel), in
#: the topology's canonical candidate order.
CoordinateLane = Tuple[int, bool, Channel]


class RoutingAlgorithm(ABC):
    """Base class for wormhole routing algorithms.

    Attributes:
        topology: the network the algorithm routes on.
        name: short identifier used in reports and figure legends.
        minimal: whether the algorithm only offers shortest-path hops.
        cacheable: whether :meth:`route` is a pure function of
            ``(in_channel, node, dest)`` — no randomness, no mutable
            state, no time dependence.  True for every turn-model
            relation (they are Markovian by construction), and it lets
            the simulator memoize routing decisions
            (:class:`repro.routing.cache.RouteCache`).  Set to False in
            subclasses whose decisions can change between identical
            calls.
        uses_in_channel: whether :meth:`route` actually reads
            ``in_channel``.  Most minimal turn-model algorithms decide
            from ``(node, dest)`` alone; declaring that lets the route
            cache collapse all arrival channels of a router into one
            key.  Defaults to True (the conservative assumption); only
            set False when the implementation provably ignores the
            argument.
    """

    name: str = "unnamed"
    minimal: bool = True
    cacheable: bool = True
    uses_in_channel: bool = True

    def __init__(self, topology: Topology):
        self.topology = topology

    @abstractmethod
    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        """Output channels the packet may take from ``node`` toward ``dest``.

        Args:
            in_channel: the channel the packet's header arrived on, or
                ``None`` if the packet is being injected at its source.
            node: the node the header currently occupies
                (``in_channel.dst`` when ``in_channel`` is given).
            dest: the packet's destination; never equal to ``node`` (the
                router ejects packets that have arrived instead of routing
                them).

        Returns:
            The permitted output channels.  Productive channels (those on
            a shortest path) come first, so callers that prefer minimal
            progress can use the order; an empty result for a reachable
            routing state is a bug.
        """

    def __call__(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        return self.route(in_channel, node, dest)

    def productive_channels(self, node: NodeId, dest: NodeId) -> list[Channel]:
        """The mesh channels leaving ``node`` on a shortest path to ``dest``."""
        # At most one productive direction per dimension, so a tuple scan
        # beats building a set for the membership test.
        wanted = self.topology.minimal_directions(node, dest)
        return [
            channel
            for channel in self.topology.out_channels(node)
            if not channel.wraparound and channel.direction in wanted
        ]

    def coordinate_lanes(
        self,
    ) -> Optional[Dict[NodeId, Tuple[CoordinateLane, ...]]]:
        """Per-node out-channel table for coordinate-compare routing.

        When the topology is a plain mesh — no wraparound productivity,
        and the stock :meth:`Topology.minimal_directions` per-dimension
        coordinate compare — the productive set of a channel reduces to
        ``dest[dim] < node[dim]`` (negative direction) or
        ``dest[dim] > node[dim]`` (positive direction).  Algorithms that
        only need productivity plus a static phase predicate can then
        precompute one table per node at construction time and skip the
        direction-object machinery on every :meth:`route` call.

        Entries preserve :meth:`Topology.out_channels` order with
        wraparound channels dropped, exactly mirroring
        :meth:`productive_channels`, so a fast path built on this table
        yields bit-identical candidate orderings.

        Returns ``None`` when the topology does not obey the coordinate
        rule (callers must keep their generic path as the fallback).
        """
        from repro.topology.mesh import Mesh

        topology = self.topology
        if not isinstance(topology, Mesh):
            return None
        if type(topology).minimal_directions is not Topology.minimal_directions:
            return None
        return {
            node: tuple(
                (channel.direction.dim, channel.direction.is_negative, channel)
                for channel in topology.out_channels(node)
                if not channel.wraparound
            )
            for node in topology.nodes()
        }

    def in_direction(self, in_channel: Optional[Channel]) -> Optional[Direction]:
        """The virtual direction of travel on arrival, if any."""
        return None if in_channel is None else in_channel.direction

    def __repr__(self) -> str:
        kind = "minimal" if self.minimal else "nonminimal"
        return f"{type(self).__name__}({self.name}, {kind}, {self.topology!r})"
