"""Turn-model routing on hexagonal meshes (Section 7 future work).

The hexagonal network has six directions making 60- and 120-degree turns,
so the mesh machinery of four-turn abstract cycles does not apply — but
the *negative-first idea* does, and so does its Theorem 5 proof: number
positive channels ``K - n + X`` and negative channels ``K - n - X`` with
``X`` the coordinate sum, and every permitted hop strictly increases the
number.  :class:`HexNegativeFirstRouting` is the resulting partially
adaptive algorithm; :class:`HexDimensionOrderRouting` is the nonadaptive
baseline that resolves the ``a`` axis before the ``b`` axis and never
uses the diagonal channels.  Both are certified deadlock free by the
Dally-Seitz check in the tests.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.routing.base import RoutingAlgorithm
from repro.topology.channels import Channel, NodeId
from repro.topology.hexagonal import HexMesh

__all__ = ["HexNegativeFirstRouting", "HexDimensionOrderRouting"]


class HexNegativeFirstRouting(RoutingAlgorithm):
    """Negative-first on the hexagonal mesh: all ``-`` hops, then ``+``.

    Minimal and partially adaptive: when the displacement has both
    coordinates of the same sign, the productive set mixes the diagonal
    with an axis direction of the same phase, giving real choice; mixed
    displacements route the negative axis first.
    """

    name = "hex-negative-first"
    minimal = True
    uses_in_channel = False

    def __init__(self, topology: HexMesh):
        if not isinstance(topology, HexMesh):
            raise ValueError("hex routing needs a HexMesh")
        super().__init__(topology)

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        productive = self.productive_channels(node, dest)
        negative = [ch for ch in productive if ch.direction.is_negative]
        if negative:
            return tuple(negative)
        return tuple(productive)


class HexDimensionOrderRouting(RoutingAlgorithm):
    """Nonadaptive baseline: resolve axis ``a``, then axis ``b``.

    Never uses the diagonal channels, so it degenerates to xy routing on
    the underlying square lattice — deadlock free for the same reason,
    and longer-pathed than hex-negative-first whenever the displacement
    has same-sign components.
    """

    name = "hex-ab-order"
    minimal = False  # minimal in the square metric, not the hex metric
    uses_in_channel = False

    def __init__(self, topology: HexMesh):
        if not isinstance(topology, HexMesh):
            raise ValueError("hex routing needs a HexMesh")
        super().__init__(topology)

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        for dim in (0, 1):
            delta = dest[dim] - node[dim]
            if delta == 0:
                continue
            sign = 1 if delta > 0 else -1
            for channel in self.topology.out_channels(node):
                if channel.direction.dim == dim and channel.direction.sign == sign:
                    return (channel,)
        return ()
