"""The synthesized-routing name grammar: ``synth2-nw.sw``.

The synthesis engine (:mod:`repro.synth`) compiles every certified
turn-prohibition candidate into a runnable
:class:`~repro.routing.turn_table.TurnRestrictionRouting` registered
under a *self-describing* canonical name.  The name encodes the
candidate completely, so :func:`repro.routing.registry.make_routing`
can rebuild the router in any process — sweep workers included —
without shared registration state, and an
:class:`~repro.analysis.executor.ExperimentSpec` naming a synthesized
algorithm stays a pure-primitive, content-hashable value.

Grammar (already canonical under
:func:`repro.routing.registry.canonical_name`)::

    synth<n>-<code>[.<code>...][-nonminimal]

where ``<n>`` is the dimensionality and each ``<code>`` names one
prohibited 90-degree turn.  2D codes use the paper's compass letters,
from-direction first (``nw`` = the north-to-west turn); higher
dimensions use sign-dimension pairs (``p0n1`` = the turn from ``+0``
into ``-1``).  Codes are emitted sorted, so equal prohibition sets
always produce the same name; parsing accepts any order (and the
generic form for 2D) and canonicalizes.

Examples: ``synth2-nw.sw`` prohibits the two turns into west — the
west-first candidate; ``synth2-es.nw`` is negative-first;
``synth3-p0n1.p0n2.p1n0.p1n2.p2n0.p2n1-nonminimal`` is the nonminimal
3D negative-first analog.

The nonminimal variant runs Step 6 of the model on construction: the
maximal set of safe 180-degree reversals, validated against the target
topology's turn-induced dependency graph in deterministic order.
(Minimal routing never takes a reversal — every hop must reduce
distance — so the minimal variant skips the extension.)
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Tuple

from repro.core.channel_graph import restriction_is_deadlock_free
from repro.core.directions import Direction
from repro.core.restrictions import TurnRestriction
from repro.core.turns import Turn, all_directions
from repro.routing.turn_table import TurnRestrictionRouting
from repro.topology.base import Topology
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh

__all__ = [
    "SYNTH_PREFIX",
    "is_synth_name",
    "parse_synth_name",
    "synth_name",
    "turn_code",
    "routing_from_synth_name",
]

#: Leading token of every synthesized-routing name.
SYNTH_PREFIX = "synth"

_COMPASS_TO_DIRECTION: Dict[str, Direction] = {
    "w": Direction(0, -1),
    "e": Direction(0, 1),
    "s": Direction(1, -1),
    "n": Direction(1, 1),
}
_DIRECTION_TO_COMPASS = {
    direction: letter for letter, direction in _COMPASS_TO_DIRECTION.items()
}

_NAME_RE = re.compile(
    rf"^{SYNTH_PREFIX}(?P<dims>[1-9][0-9]*)-(?P<codes>[a-z0-9.]+?)"
    r"(?P<nonminimal>-nonminimal)?$"
)
_GENERIC_CODE_RE = re.compile(r"^(?P<fs>[pn])(?P<fd>[0-9]+)(?P<ts>[pn])(?P<td>[0-9]+)$")
_COMPASS_CODE_RE = re.compile(r"^[wens]{2}$")
_SIGN_LETTER = {1: "p", -1: "n"}
_LETTER_SIGN = {"p": 1, "n": -1}


def turn_code(turn: Turn, n_dims: int) -> str:
    """The name-grammar code of one prohibited turn.

    2D turns use compass letters (``nw`` = north-to-west); other
    dimensionalities use the generic sign-dimension form (``p0n1``).
    """
    if n_dims == 2:
        return _DIRECTION_TO_COMPASS[turn.frm] + _DIRECTION_TO_COMPASS[turn.to]
    return (
        f"{_SIGN_LETTER[turn.frm.sign]}{turn.frm.dim}"
        f"{_SIGN_LETTER[turn.to.sign]}{turn.to.dim}"
    )


def _decode_code(code: str, n_dims: int) -> Turn:
    match = _GENERIC_CODE_RE.match(code)
    if match is not None:
        turn = Turn(
            Direction(int(match.group("fd")), _LETTER_SIGN[match.group("fs")]),
            Direction(int(match.group("td")), _LETTER_SIGN[match.group("ts")]),
        )
    elif n_dims == 2 and _COMPASS_CODE_RE.match(code):
        turn = Turn(_COMPASS_TO_DIRECTION[code[0]], _COMPASS_TO_DIRECTION[code[1]])
    else:
        raise ValueError(f"bad turn code {code!r} for {n_dims} dimensions")
    if turn.frm.dim >= n_dims or turn.to.dim >= n_dims:
        raise ValueError(f"turn code {code!r} exceeds {n_dims} dimensions")
    if not turn.is_ninety_degree:
        raise ValueError(f"turn code {code!r} is not a 90-degree turn")
    return turn


def synth_name(
    n_dims: int, prohibited: FrozenSet[Turn], minimal: bool = True
) -> str:
    """The canonical synthesized name of a prohibition set.

    Codes are sorted lexicographically, so equal sets always yield the
    same name — which is what makes the name usable as a registry key,
    a cache-key component, and a symmetry-class representative label.
    """
    if not prohibited:
        raise ValueError("a synthesized name needs at least one prohibited turn")
    for turn in prohibited:
        if not turn.is_ninety_degree:
            raise ValueError(f"prohibited set must hold 90-degree turns: {turn}")
        if turn.frm.dim >= n_dims or turn.to.dim >= n_dims:
            raise ValueError(f"turn {turn} exceeds {n_dims} dimensions")
    codes = sorted(turn_code(turn, n_dims) for turn in prohibited)
    suffix = "" if minimal else "-nonminimal"
    return f"{SYNTH_PREFIX}{n_dims}-{'.'.join(codes)}{suffix}"


def is_synth_name(name: str) -> bool:
    """Whether a canonical registry name uses the synthesized grammar."""
    return _NAME_RE.match(name) is not None


def parse_synth_name(name: str) -> Tuple[int, FrozenSet[Turn], bool]:
    """Decode a synthesized name into ``(n_dims, prohibited, minimal)``.

    Raises:
        ValueError: if the name does not follow the grammar, a code is
            malformed, a code repeats, or a turn is not a 90-degree
            turn within the declared dimensionality.
    """
    match = _NAME_RE.match(name)
    if match is None:
        raise ValueError(f"not a synthesized routing name: {name!r}")
    n_dims = int(match.group("dims"))
    if n_dims < 2:
        raise ValueError(f"synthesized names need at least 2 dimensions: {name!r}")
    codes = match.group("codes").split(".")
    turns = [_decode_code(code, n_dims) for code in codes]
    prohibited = frozenset(turns)
    if len(prohibited) != len(turns):
        raise ValueError(f"duplicate turn codes in {name!r}")
    return n_dims, prohibited, match.group("nonminimal") is None


def _maximal_reversal_extension(
    topology: Topology, restriction: TurnRestriction
) -> TurnRestriction:
    """Step 6 against the *target* topology, in deterministic order.

    Greedily admit each 180-degree reversal (sorted order) whose
    addition keeps the turn-induced dependency graph acyclic.  An
    already-cyclic restriction admits nothing — the loop leaves it
    unchanged rather than masking the deadlock.
    """
    current = restriction
    for direction in sorted(all_directions(restriction.n_dims)):
        candidate = current.with_reversals([Turn(direction, direction.opposite)])
        if restriction_is_deadlock_free(topology, candidate):
            current = candidate
    return current


def routing_from_synth_name(
    name: str, topology: Topology
) -> TurnRestrictionRouting:
    """Build the turn-table router a synthesized name describes.

    Deterministic: the same name on the same topology always yields the
    same restriction (reversal extension included) and therefore
    bit-identical routing decisions — the property that lets sweep
    workers rebuild synthesized routers from the name alone.

    Raises:
        ValueError: for malformed names, a dimensionality mismatch, or
            an unsupported topology family (the grammar covers meshes
            and hypercubes; wraparound topologies need Step 5, which
            the synthesized grammar does not encode).
    """
    n_dims, prohibited, minimal = parse_synth_name(name)
    if not isinstance(topology, (Mesh, Hypercube)):
        raise ValueError(
            f"synthesized routings run on meshes and hypercubes, not "
            f"{type(topology).__name__}"
        )
    if topology.n_dims != n_dims:
        raise ValueError(
            f"{name!r} is {n_dims}-dimensional but the topology has "
            f"{topology.n_dims} dimensions"
        )
    base_name = synth_name(n_dims, prohibited, minimal=True)
    restriction = TurnRestriction(n_dims, prohibited, name=base_name)
    if not minimal:
        restriction = _maximal_reversal_extension(topology, restriction)
    return TurnRestrictionRouting(
        topology, restriction, minimal=minimal, name=base_name
    )
