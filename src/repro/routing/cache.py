"""Memoizing route cache for the simulator's hot path.

A routing decision is a pure function of ``(in_channel, node, dest)`` —
the turn model's routing relations are Markovian by construction (the
permitted next hops depend only on how the header arrived, where it is,
and where it is going), and every algorithm shipped in
:mod:`repro.routing` advertises this via
:attr:`~repro.routing.base.RoutingAlgorithm.cacheable`.  The simulator
therefore never needs to recompute a route: the engine asks a
:class:`RouteCache` instead, which resolves each distinct routing state
once and answers every later visit with a dict lookup.

The cache can optionally *resolve* the returned channels through a
caller-supplied mapping (the engine passes its ``Channel ->
ChannelState`` table), so the hot loop receives pre-resolved candidate
tuples and skips the per-candidate dict lookups too.

The working set is bounded by the number of reachable routing states —
at most ``channels x nodes`` keys, and in practice far fewer, since only
states visited by actual traffic are materialized.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.routing.base import RoutingAlgorithm
from repro.topology.channels import Channel, NodeId

__all__ = ["RouteCache"]

#: A routing state: (incoming channel or None, current node, destination).
RouteKey = Tuple[Optional[Channel], NodeId, NodeId]


class RouteCache:
    """Memoizes ``routing.route`` over ``(in_channel, node, dest)`` keys.

    Args:
        routing: the algorithm to memoize; must be pure (``cacheable``).
        resolve: optional mapping applied to each returned channel once,
            at fill time (e.g. the engine's channel-state lookup).  When
            omitted, the cache stores the raw channel tuples.
        source: optional *raw* cache (one built without ``resolve``)
            consulted on a miss before falling back to
            ``routing.route``.  A warm sweep shares one raw cache per
            ``(topology, algorithm)`` across every run, so a routing
            state any earlier run visited costs this cache a dict
            lookup plus resolution — never a route recomputation.  The
            source must memoize the same algorithm (same name and key
            shape); it is dropped on :meth:`retarget`, because a
            degraded relation no longer matches the shared table.

    Attributes:
        hits: lookups answered from this cache's own table (excluding
            the first fetch of a prewarmed entry).
        misses: lookups that had to call ``routing.route`` (here or
            anywhere down the source chain).
        prefilled: lookups answered by prewarmed state without any
            route computation — the first fetch of an entry installed
            via :meth:`prefill`, or a source-chain answer the source
            already held.  Reported by ``repro bench`` so warm runs
            show their true no-recompute rate instead of inflated
            ``misses``.
        prefilled_entries: total entries ever installed via
            :meth:`prefill` (regardless of whether they were fetched).
    """

    __slots__ = ("routing", "_resolve", "_table", "_keyed_on_in_channel",
                 "_source", "hits", "misses", "prefilled",
                 "prefilled_entries", "_prefilled_pending")

    def __init__(
        self,
        routing: RoutingAlgorithm,
        resolve: Optional[Callable[[Channel], object]] = None,
        source: Optional["RouteCache"] = None,
    ):
        if not getattr(routing, "cacheable", True):
            raise ValueError(
                f"{routing.name} declares cacheable=False; its routing "
                "decisions cannot be memoized"
            )
        self.routing = routing
        self._resolve = resolve
        self._table: Dict[tuple, tuple] = {}
        # An algorithm that provably ignores in_channel gets one key per
        # (node, dest), collapsing every arrival channel of a router —
        # fewer misses and cheaper keys.
        self._keyed_on_in_channel = getattr(routing, "uses_in_channel", True)
        if source is not None:
            if source._resolve is not None:
                raise ValueError(
                    "a route-cache source must store raw channels "
                    "(it was built with a resolve mapping)"
                )
            if source._keyed_on_in_channel != self._keyed_on_in_channel:
                raise ValueError(
                    "route-cache source keys routes differently "
                    "(uses_in_channel mismatch)"
                )
            if source.routing.name != routing.name:
                raise ValueError(
                    f"route-cache source memoizes {source.routing.name!r}, "
                    f"not {routing.name!r}"
                )
        self._source = source
        self.hits = 0
        self.misses = 0
        self.prefilled = 0
        self.prefilled_entries = 0
        # Keys installed by prefill() and not yet fetched: their first
        # lookup counts as ``prefilled`` (the route was never computed
        # here), later lookups as plain ``hits``.
        self._prefilled_pending: set = set()

    def candidates(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> tuple:
        """The (resolved) output candidates for one routing state.

        Returns the same tuple object on every lookup of the same key;
        an empty tuple means the algorithm offered no route (the caller
        decides whether that is an error).
        """
        if self._keyed_on_in_channel:
            key = (in_channel, node, dest)
        else:
            key = (node, dest)
        table = self._table
        cached = table.get(key)
        if cached is not None:
            pending = self._prefilled_pending
            if pending and key in pending:
                pending.discard(key)
                self.prefilled += 1
            else:
                self.hits += 1
            return cached
        source = self._source
        if source is not None:
            channels, warm = source.lookup(in_channel, node, dest)
        else:
            channels = tuple(self.routing.route(in_channel, node, dest))
            warm = False
        resolve = self._resolve
        if resolve is not None:
            resolved = tuple(resolve(channel) for channel in channels)
        else:
            resolved = channels
        table[key] = resolved
        if warm:
            self.prefilled += 1
        else:
            self.misses += 1
        return resolved

    def lookup(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Tuple[tuple, bool]:
        """Like :meth:`candidates`, plus whether the answer was warm.

        Returns ``(candidates, warm)`` where ``warm`` is True when the
        answer came from already-memoized or prewarmed state anywhere
        in the chain — i.e. no ``routing.route`` call happened.  This
        is the chaining primitive consumers use to account a downstream
        fill as ``prefilled`` rather than a ``miss``.
        """
        if self._keyed_on_in_channel:
            key = (in_channel, node, dest)
        else:
            key = (node, dest)
        table = self._table
        cached = table.get(key)
        if cached is not None:
            pending = self._prefilled_pending
            if pending and key in pending:
                pending.discard(key)
                self.prefilled += 1
            else:
                self.hits += 1
            return cached, True
        source = self._source
        if source is not None:
            channels, warm = source.lookup(in_channel, node, dest)
        else:
            channels = tuple(self.routing.route(in_channel, node, dest))
            warm = False
        resolve = self._resolve
        if resolve is not None:
            resolved = tuple(resolve(channel) for channel in channels)
        else:
            resolved = channels
        table[key] = resolved
        if warm:
            self.prefilled += 1
        else:
            self.misses += 1
        return resolved, warm

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        """Drop all memoized routes (counters are kept)."""
        self._table.clear()
        self._prefilled_pending.clear()

    def prefill(self, table: Dict[tuple, tuple]) -> None:
        """Install precomputed raw entries (counters untouched).

        Only raw caches (no ``resolve``) accept a prefill — the entries
        are channel tuples, not resolved states.  Entries this cache
        already holds win over the incoming ones (they are identical by
        purity; keeping them preserves tuple identity for callers).
        """
        if self._resolve is not None:
            raise ValueError(
                "cannot prefill a resolving cache with raw channel tuples"
            )
        added = [key for key in table if key not in self._table]
        merged = dict(table)
        merged.update(self._table)
        self._table = merged
        self.prefilled_entries += len(added)
        self._prefilled_pending.update(added)

    def export_table(self) -> Dict[tuple, tuple]:
        """A snapshot of the memoized entries (raw caches only)."""
        if self._resolve is not None:
            raise ValueError(
                "a resolving cache's entries are per-run states; only "
                "raw caches export portable tables"
            )
        return dict(self._table)

    def retarget(self, routing: RoutingAlgorithm) -> None:
        """Swap the memoized algorithm, keeping compatible entries.

        Used by runtime fault injection when the degraded algorithm is a
        filtered view of the same base relation: entries for untouched
        routing states remain valid (the caller invalidates the touched
        ones via :meth:`invalidate_channels`).  The replacement must be
        cacheable and share the old algorithm's key shape.
        """
        if not getattr(routing, "cacheable", True):
            raise ValueError(
                f"{routing.name} declares cacheable=False; it cannot "
                "replace a memoized algorithm"
            )
        if getattr(routing, "uses_in_channel", True) != self._keyed_on_in_channel:
            raise ValueError(
                f"{routing.name} keys routes differently than the cached "
                "algorithm (uses_in_channel mismatch); build a new cache"
            )
        self.routing = routing
        # The shared source memoizes the healthy relation; the degraded
        # one must re-derive its decisions, so stop consulting it.
        self._source = None

    def invalidate_channels(self, channels: Iterable[Channel]) -> int:
        """Drop every entry whose decision could involve ``channels``.

        A cached candidate tuple holds output channels of the key's
        node, so an entry can only mention a channel whose source node
        equals that key's node — dropping every key at the changed
        channels' source nodes over-approximates exactly the stale set.

        Returns:
            The number of entries dropped.
        """
        nodes = {channel.src for channel in channels}
        if not nodes:
            return 0
        table = self._table
        # key is (in_channel, node, dest) or (node, dest); the node is
        # always the second-to-last component.
        stale = [key for key in table if key[-2] in nodes]
        pending = self._prefilled_pending
        for key in stale:
            del table[key]
            pending.discard(key)
        return len(stale)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered without computing a route
        (own-table hits plus prewarmed answers; 0.0 when unused)."""
        total = self.hits + self.prefilled + self.misses
        return (self.hits + self.prefilled) / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"RouteCache({self.routing.name}, entries={len(self._table)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"prefilled={self.prefilled})"
        )
