"""The n-dimensional mesh analogs of west-first and north-last (Section 4.1).

* All-but-one-negative-first (ABONF): route first adaptively in the
  negative directions of all but one dimension (dimension ``n-1`` stays
  out of the first phase), then adaptively in the other directions.
* All-but-one-positive-last (ABOPL): route first adaptively in the
  negative directions and the positive direction of dimension 0, then
  adaptively in the remaining positive directions.

For 2D meshes ABONF *is* west-first and ABOPL *is* north-last, which is
why Section 6 labels the mesh curves ABONF and ABOPL.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.restrictions import abonf_restriction, abopl_restriction
from repro.routing.base import RoutingAlgorithm
from repro.routing.turn_table import TurnRestrictionRouting
from repro.topology.channels import Channel, NodeId
from repro.topology.mesh import Mesh

__all__ = [
    "AllButOneNegativeFirstRouting",
    "AllButOnePositiveLastRouting",
    "abonf_nonminimal",
    "abopl_nonminimal",
]


class AllButOneNegativeFirstRouting(RoutingAlgorithm):
    """Minimal ABONF: negative hops of dimensions ``0..n-2`` first."""

    name = "abonf"
    minimal = True
    uses_in_channel = False

    def __init__(self, topology: Mesh):
        super().__init__(topology)
        self._lanes = self.coordinate_lanes()

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        last_dim = self.topology.n_dims - 1
        lanes = self._lanes
        if lanes is not None:
            first_phase = []
            productive = []
            for dim, is_neg, channel in lanes[node]:
                if is_neg:
                    if dest[dim] < node[dim]:
                        productive.append(channel)
                        if dim != last_dim:
                            first_phase.append(channel)
                elif dest[dim] > node[dim]:
                    productive.append(channel)
            if first_phase:
                return tuple(first_phase)
            return tuple(productive)
        productive = self.productive_channels(node, dest)
        first_phase = [
            ch
            for ch in productive
            if ch.direction.is_negative and ch.direction.dim != last_dim
        ]
        if first_phase:
            return tuple(first_phase)
        return tuple(productive)


class AllButOnePositiveLastRouting(RoutingAlgorithm):
    """Minimal ABOPL: positive hops of dimensions ``1..n-1`` last."""

    name = "abopl"
    minimal = True
    uses_in_channel = False

    def __init__(self, topology: Mesh):
        super().__init__(topology)
        self._lanes = self.coordinate_lanes()

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        lanes = self._lanes
        if lanes is not None:
            first_phase = []
            productive = []
            for dim, is_neg, channel in lanes[node]:
                if is_neg:
                    if dest[dim] < node[dim]:
                        productive.append(channel)
                        first_phase.append(channel)
                elif dest[dim] > node[dim]:
                    productive.append(channel)
                    if dim == 0:
                        first_phase.append(channel)
            if first_phase:
                return tuple(first_phase)
            return tuple(productive)
        productive = self.productive_channels(node, dest)
        first_phase = [
            ch
            for ch in productive
            if ch.direction.is_negative or ch.direction.dim == 0
        ]
        if first_phase:
            return tuple(first_phase)
        return tuple(productive)


def abonf_nonminimal(topology: Mesh) -> TurnRestrictionRouting:
    """Nonminimal ABONF via the generic turn-table router."""
    restriction = abonf_restriction(topology.n_dims)
    return TurnRestrictionRouting(topology, restriction, minimal=False, name="abonf")


def abopl_nonminimal(topology: Mesh) -> TurnRestrictionRouting:
    """Nonminimal ABOPL via the generic turn-table router."""
    restriction = abopl_restriction(topology.n_dims)
    return TurnRestrictionRouting(topology, restriction, minimal=False, name="abopl")
