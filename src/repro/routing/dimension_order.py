"""Nonadaptive dimension-order routing: xy for meshes, e-cube for cubes.

The xy routing algorithm routes a packet first along the x dimension
(dimension 0) and then along the y dimension; the e-cube algorithm routes a
packet first along the lowest dimension and then along higher and higher
dimensions (paper, Section 1).  Both are the same rule — resolve the lowest
dimension in which the current node differs from the destination — so one
class serves meshes and hypercubes alike.  These are the paper's
nonadaptive baselines in Section 6.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.routing.base import RoutingAlgorithm
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId
from repro.topology.hypercube import Hypercube

__all__ = ["DimensionOrderRouting", "xy_routing", "yx_routing", "ecube_routing"]


class DimensionOrderRouting(RoutingAlgorithm):
    """Route one dimension at a time, in a fixed dimension order.

    Deadlock free because dimensions are visited in a fixed order, and
    nonadaptive: exactly one output channel is ever offered.  The default
    order is ascending — xy routing on meshes and e-cube on hypercubes;
    pass a custom ``dimension_order`` for variants such as yx routing.
    """

    minimal = True
    uses_in_channel = False

    def __init__(
        self,
        topology: Topology,
        name: str = "",
        dimension_order: Optional[Sequence[int]] = None,
    ):
        super().__init__(topology)
        if dimension_order is None:
            dimension_order = tuple(range(topology.n_dims))
        if sorted(dimension_order) != list(range(topology.n_dims)):
            raise ValueError(
                f"dimension order must permute 0..{topology.n_dims - 1}: "
                f"{dimension_order}"
            )
        self.dimension_order = tuple(dimension_order)
        # Per-node direction -> channel table, preferring the mesh channel
        # over a wraparound in the same direction — exactly the fallback
        # order of the channel_in_direction pair below, precomputed so the
        # hot path is two dict lookups.
        self._channel_table = {}
        for node in topology.nodes():
            per_direction = {}
            for channel in topology.out_channels(node):
                prior = per_direction.get(channel.direction)
                if prior is None or (prior.wraparound and not channel.wraparound):
                    per_direction[channel.direction] = channel
            self._channel_table[node] = per_direction
        if name:
            self.name = name
        elif self.dimension_order != tuple(range(topology.n_dims)):
            self.name = "dimension-order" + "".join(
                str(d) for d in self.dimension_order
            )
        else:
            self.name = "e-cube" if isinstance(topology, Hypercube) else "xy"

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        # minimal_directions (not raw coordinate compares) so torus
        # subclasses that account for wraparound shortcuts stay correct.
        minimal = self.topology.minimal_directions(node, dest)
        if not minimal:
            return ()
        table = self._channel_table[node]
        for dim in self.dimension_order:
            for direction in minimal:
                if direction.dim == dim:
                    channel = table.get(direction)
                    return (channel,) if channel is not None else ()
        return ()


def xy_routing(topology: Topology) -> DimensionOrderRouting:
    """The xy routing algorithm for 2D meshes."""
    if topology.n_dims != 2:
        raise ValueError("xy routing is defined for 2D meshes")
    return DimensionOrderRouting(topology, name="xy")


def ecube_routing(topology: Hypercube) -> DimensionOrderRouting:
    """The e-cube routing algorithm for hypercubes."""
    if not isinstance(topology, Hypercube):
        raise ValueError("e-cube routing is defined for hypercubes")
    return DimensionOrderRouting(topology, name="e-cube")


def yx_routing(topology: Topology) -> DimensionOrderRouting:
    """yx routing for 2D meshes: the y dimension first, then x.

    The mirror of xy routing; paired with it in lane-split virtual-channel
    routing, the two cover every minimal quadrant path between them.
    """
    if topology.n_dims != 2:
        raise ValueError("yx routing is defined for 2D meshes")
    return DimensionOrderRouting(topology, name="yx", dimension_order=(1, 0))
