"""Negative-first routing for meshes of any dimension (Sections 3.3, 4.1).

Route a packet first adaptively in the negative directions and then
adaptively in the positive directions.  The prohibited turns are the
``n (n-1)`` turns from a positive direction to a negative direction —
exactly the Theorem 1 minimum, which makes negative-first the witness for
the sufficiency half of Theorem 6.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.restrictions import negative_first_restriction
from repro.routing.base import RoutingAlgorithm
from repro.routing.turn_table import TurnRestrictionRouting
from repro.topology.channels import Channel, NodeId
from repro.topology.mesh import Mesh

__all__ = ["NegativeFirstRouting", "negative_first_nonminimal"]


class NegativeFirstRouting(RoutingAlgorithm):
    """Minimal negative-first routing for an n-dimensional mesh."""

    name = "negative-first"
    minimal = True
    uses_in_channel = False

    def __init__(self, topology: Mesh):
        super().__init__(topology)
        # Per-node coordinate table (None on topologies where the
        # coordinate-compare rule does not hold; route() then falls back
        # to the generic direction machinery).
        self._lanes = self.coordinate_lanes()

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        lanes = self._lanes
        if lanes is not None:
            negative = []
            positive = []
            for dim, is_neg, channel in lanes[node]:
                if is_neg:
                    if dest[dim] < node[dim]:
                        negative.append(channel)
                elif dest[dim] > node[dim]:
                    positive.append(channel)
            if negative:
                # All negative hops come before any positive hop.
                return tuple(negative)
            return tuple(positive)
        productive = self.productive_channels(node, dest)
        negative = [ch for ch in productive if ch.direction.is_negative]
        if negative:
            # All negative hops come before any positive hop.
            return tuple(negative)
        return tuple(productive)


def negative_first_nonminimal(topology: Mesh) -> TurnRestrictionRouting:
    """Nonminimal negative-first via the generic turn-table router.

    The bottom path of Figure 10b — adaptive escape even when the minimal
    algorithm has a single path — is this mode: routing can detour along
    extra negative hops and recover with the permitted
    negative-to-positive reversals.
    """
    restriction = negative_first_restriction(topology.n_dims)
    return TurnRestrictionRouting(
        topology, restriction, minimal=False, name="negative-first"
    )
