"""Routing algorithms that use virtual channels (extra lanes).

The paper positions the turn model against approaches that "achieve
adaptiveness and deadlock freedom at the expense of adding physical or
virtual channels" (Section 1) and notes that minimal deadlock-free routing
on k-ary n-cubes is impossible *without* extra channels (Section 4.2).
This module supplies the two classic extra-channel designs the comparison
implies:

* :class:`DatelineTorusRouting` — minimal dimension-order routing on a
  torus with two lanes per channel.  Within each ring a packet travels
  the short way around; it uses lane 0 while the wraparound (the
  "dateline") is still ahead and lane 1 after crossing it, which breaks
  the ring cycles exactly as in Dally and Seitz's torus routing chip.

* :class:`LaneSplitRouting` — each lane runs its own deadlock-free
  routing algorithm, and a packet commits to one lane at injection.
  Because packets never change lanes, the combined channel dependency
  graph is the disjoint union of the per-lane graphs, hence acyclic.
  With an xy lane and a yx lane this yields fully adaptive first-hop
  choice (every minimal quadrant path is available through one of the
  lanes) at the cost the paper declines to pay.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.routing.base import RoutingAlgorithm
from repro.topology.channels import Channel, NodeId
from repro.topology.torus import Torus
from repro.topology.virtual import VirtualChannelTopology

__all__ = ["DatelineTorusRouting", "LaneSplitRouting", "yx_routing_order", "o1turn_routing"]


class DatelineTorusRouting(RoutingAlgorithm):
    """Minimal dimension-order torus routing on two lanes per channel.

    Args:
        topology: a :class:`VirtualChannelTopology` over a
            :class:`~repro.topology.torus.Torus` with at least 2 lanes.
    """

    name = "dateline-dor"
    minimal = True
    uses_in_channel = False  # lane choice derives from (node, dest) alone

    def __init__(self, topology: VirtualChannelTopology):
        if not isinstance(topology, VirtualChannelTopology) or not isinstance(
            topology.base, Torus
        ):
            raise ValueError(
                "dateline routing needs a VirtualChannelTopology over a Torus"
            )
        if topology.lanes < 2:
            raise ValueError("dateline routing needs at least 2 lanes")
        super().__init__(topology)
        self._torus: Torus = topology.base

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        for dim in range(self.topology.n_dims):
            cur, want = node[dim], dest[dim]
            if cur == want:
                continue
            offset = self._torus.ring_offset(cur, want)
            sign = 1 if offset > 0 else -1
            # The physical hop: the mesh channel when it exists in the
            # travel direction, otherwise the wraparound at the ring edge.
            next_coord = (cur + sign) % self._torus.k
            lane = self._lane(cur, want, sign)
            for channel in self.topology.out_channels(node):
                if (
                    channel.direction.dim == dim
                    and channel.dst[dim] == next_coord
                    and channel.lane == lane
                    and self._travels(channel, cur, next_coord, sign)
                ):
                    return (channel,)
            raise AssertionError(
                f"no lane-{lane} channel from {node} toward {dest} in dim {dim}"
            )
        return ()

    def _travels(self, channel: Channel, cur: int, next_coord: int, sign: int) -> bool:
        """Whether this channel is the physical hop cur -> next_coord."""
        if channel.wraparound:
            # The wraparound connects the two ring edges; it is the travel
            # hop exactly when the modular step leaves the mesh range.
            return cur + sign != next_coord
        return cur + sign == next_coord

    def _lane(self, cur: int, want: int, sign: int) -> int:
        """Lane 0 while the dateline is ahead, lane 1 after crossing it.

        Travelling in the positive direction, a packet with ``cur > want``
        still has the wraparound ahead (it must pass coordinate k-1 and
        jump to 0), so it rides lane 0; once ``cur < want`` the wraparound
        is behind and it rides lane 1.  Symmetrically for negative travel.
        Lane-0 rings are never entered at the post-dateline edge and
        lane-1 rings never take the wraparound, so neither lane's ring
        closes — the dependency cycles the Section 4.2 algorithms avoid
        nonminimally are broken here with the extra channel instead.
        """
        if sign > 0:
            return 0 if cur > want else 1
        return 0 if cur < want else 1


def yx_routing_order(n_dims: int) -> tuple:
    """Dimension order for yx routing: highest dimension first."""
    return tuple(reversed(range(n_dims)))


class LaneSplitRouting(RoutingAlgorithm):
    """One deadlock-free algorithm per lane; packets commit at injection.

    Args:
        topology: a :class:`VirtualChannelTopology` with exactly as many
            lanes as ``per_lane`` entries.
        per_lane: factory per lane, called with the *base* topology; the
            resulting algorithm's channels are mapped into that lane.
        chooser: picks the lane for a packet, given (source, destination);
            defaults to balancing by the zero-load quadrant: lane index
            ``(src + dest coordinate parity)`` — override for smarter
            policies.  Must be deterministic (Markovian routing needs the
            lane to be recoverable from the incoming channel).
        name: label for reports.
    """

    minimal = True
    uses_in_channel = True  # the arrival lane pins the packet's algorithm

    def __init__(
        self,
        topology: VirtualChannelTopology,
        per_lane: Sequence[Callable[[object], RoutingAlgorithm]],
        chooser: Optional[Callable[[NodeId, NodeId], int]] = None,
        name: str = "lane-split",
    ):
        if not isinstance(topology, VirtualChannelTopology):
            raise ValueError("lane-split routing needs a VirtualChannelTopology")
        if len(per_lane) != topology.lanes:
            raise ValueError(
                f"need one algorithm per lane: {len(per_lane)} != {topology.lanes}"
            )
        super().__init__(topology)
        self.name = name
        self._algorithms = [factory(topology.base) for factory in per_lane]
        self._chooser = chooser or self._default_chooser
        self.minimal = all(alg.minimal for alg in self._algorithms)

    def _default_chooser(self, src: NodeId, dest: NodeId) -> int:
        # Node ids are tuples of ints, whose hash CPython computes
        # seed-independently, so the lane choice — and every golden
        # digest downstream of it — is identical across interpreter
        # invocations under any PYTHONHASHSEED (pinned by
        # tests/routing/test_lane_hashseed.py).
        digest = hash((src, dest))  # repro-lint: allow[hash-stability] int-tuple operands only; PYTHONHASHSEED-independent
        return digest % self.topology.lanes

    def route(
        self, in_channel: Optional[Channel], node: NodeId, dest: NodeId
    ) -> Sequence[Channel]:
        if in_channel is None:
            lane = self._chooser(node, dest)
            if not 0 <= lane < self.topology.lanes:
                raise ValueError(f"lane chooser returned {lane}")
            base_in = None
        else:
            lane = in_channel.lane
            base_in = self._strip_lane(in_channel)
        algorithm = self._algorithms[lane]
        return tuple(
            self.topology.lane_of(channel, lane)
            for channel in algorithm.route(base_in, node, dest)
        )

    def _strip_lane(self, channel: Channel) -> Channel:
        from dataclasses import replace

        return replace(channel, lane=0)


def o1turn_routing(topology: VirtualChannelTopology) -> LaneSplitRouting:
    """Lane-split xy/yx routing on a two-lane 2D mesh.

    Lane 0 runs xy and lane 1 runs yx; each packet commits to one lane at
    injection (hash-balanced over the pair).  Between the two lanes every
    source-destination pair has both L-shaped minimal paths available,
    which repairs dimension-order routing's weakness on transpose-like
    permutations while remaining deadlock free — the classic
    virtual-channel alternative the turn model is positioned against.
    """
    from repro.routing.dimension_order import DimensionOrderRouting, yx_routing

    if topology.base.n_dims != 2:
        raise ValueError("o1turn routing is defined for 2D meshes")
    return LaneSplitRouting(
        topology,
        [lambda base: DimensionOrderRouting(base, name="xy"), yx_routing],
        name="o1turn",
    )
