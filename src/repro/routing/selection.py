"""Input and output selection policies (Section 6).

When a header flit has several output channels available, an *output
selection policy* picks one.  The paper's simulations use the xy policy —
favor the channel along the lowest dimension.  When several input channels
hold headers waiting for the same output, an *input selection policy*
arbitrates; the paper uses local first-come-first-served, which is fair and
prevents indefinite postponement.

Policies receive a :class:`SelectionContext` so smarter policies (studied
as future work in the paper and in our ablation benchmarks) can inspect
downstream buffer occupancy or draw randomness without the routing layer
depending on the simulator.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.topology.channels import Channel

__all__ = [
    "SelectionContext",
    "OutputSelectionPolicy",
    "XYSelection",
    "RandomSelection",
    "MostFreeSelection",
    "InputSelectionPolicy",
    "FCFSInputSelection",
    "RandomInputSelection",
    "make_output_policy",
    "make_input_policy",
]


@dataclass
class SelectionContext:
    """Information a selection policy may consult.

    Attributes:
        free_space: maps a channel to the free flit slots in its
            downstream buffer; the simulator provides this, and analytical
            callers may leave the default (which reports nothing free).
        rng: source of randomness for randomized policies.
        cycle: current simulation time, for time-dependent policies.
    """

    free_space: Callable[[Channel], int] = field(default=lambda channel: 0)
    # Seeded default: the simulator always supplies its own
    # config-seeded RNG, and analytical callers that never pass one get
    # a deterministic stream instead of OS-entropy seeding.
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    cycle: int = 0


class OutputSelectionPolicy(ABC):
    """Chooses one output channel among the available candidates.

    Attributes:
        ranking: when the policy is a pure, context-free ranking of
            channels, a function mapping a channel to its sort key —
            ``select`` must equal ``min(candidates, key=ranking)`` (ties
            to the earliest candidate).  The simulator then pre-ranks
            channels once and skips the ``select`` call on its hot path.
            Context-dependent or randomized policies leave it ``None``.
    """

    name: str = "output-policy"
    ranking: Optional[Callable[[Channel], tuple]] = None

    @abstractmethod
    def select(
        self, candidates: Sequence[Channel], context: SelectionContext
    ) -> Channel:
        """Pick one channel from ``candidates`` (never empty)."""

    def _require(self, candidates: Sequence[Channel]) -> None:
        if not candidates:
            raise ValueError("selection requires at least one candidate")


class XYSelection(OutputSelectionPolicy):
    """The paper's xy policy: favor the channel along the lowest dimension.

    Ties within a dimension (a torus edge node offering both a mesh and a
    wraparound channel west) go to the mesh channel.
    """

    name = "xy"
    ranking = staticmethod(lambda ch: (ch.direction.dim, ch.wraparound))

    def select(
        self, candidates: Sequence[Channel], context: SelectionContext
    ) -> Channel:
        self._require(candidates)
        return min(candidates, key=lambda ch: (ch.direction.dim, ch.wraparound))


class RandomSelection(OutputSelectionPolicy):
    """Pick uniformly at random among the candidates."""

    name = "random"

    def select(
        self, candidates: Sequence[Channel], context: SelectionContext
    ) -> Channel:
        self._require(candidates)
        return context.rng.choice(list(candidates))


class MostFreeSelection(OutputSelectionPolicy):
    """Favor the channel with the most free downstream buffer space.

    Ties fall back to the xy order.  This is the "local congestion"
    style of policy the paper's future-work section points at.
    """

    name = "most-free"

    def select(
        self, candidates: Sequence[Channel], context: SelectionContext
    ) -> Channel:
        self._require(candidates)
        return min(
            candidates,
            key=lambda ch: (-context.free_space(ch), ch.direction.dim, ch.wraparound),
        )


class InputSelectionPolicy(ABC):
    """Orders competing header requests for the same output channel.

    Attributes:
        stateless: whether :meth:`priority` is a pure function of the
            arrival cycle — no randomness, no context dependence — and
            *strictly increasing* in it (an earlier arrival never sorts
            after a later one).  The simulator exploits this to keep the
            waiter list incrementally ordered instead of re-sorting it
            every cycle; policies that draw randomness or invert arrival
            order must leave it False.
    """

    name: str = "input-policy"
    stateless: bool = False

    @abstractmethod
    def priority(self, arrival_cycle: int, context: SelectionContext) -> tuple:
        """Sort key for a request; lower wins."""


class FCFSInputSelection(InputSelectionPolicy):
    """Local first-come-first-served: the header that arrived first wins.

    Fair, and therefore free of indefinite postponement (Section 6).
    """

    name = "fcfs"
    stateless = True

    def priority(self, arrival_cycle: int, context: SelectionContext) -> tuple:
        return (arrival_cycle,)


class RandomInputSelection(InputSelectionPolicy):
    """Arbitrate uniformly at random (an ablation against FCFS)."""

    name = "random-input"

    def priority(self, arrival_cycle: int, context: SelectionContext) -> tuple:
        return (context.rng.random(),)


_OUTPUT_POLICIES = {
    "xy": XYSelection,
    "random": RandomSelection,
    "most-free": MostFreeSelection,
}


def make_output_policy(name: str) -> OutputSelectionPolicy:
    """Construct an output selection policy by name.

    Args:
        name: one of ``"xy"``, ``"random"``, ``"most-free"``.
    """
    try:
        return _OUTPUT_POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(_OUTPUT_POLICIES))
        raise ValueError(f"unknown output policy {name!r}; known: {known}") from None


_INPUT_POLICIES = {
    "fcfs": FCFSInputSelection,
    "random-input": RandomInputSelection,
}


def make_input_policy(name: str) -> InputSelectionPolicy:
    """Construct an input selection policy by name.

    Args:
        name: one of ``"fcfs"``, ``"random-input"``.
    """
    try:
        return _INPUT_POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(_INPUT_POLICIES))
        raise ValueError(f"unknown input policy {name!r}; known: {known}") from None
