"""Structured run manifests: one JSON document per executed point.

A manifest is the durable record of *how* a result was produced: the
full experiment spec and its content hash, the code version (``git
describe``), wall-clock timing and cache provenance, the certification
verdict the executor enforced, the resilience ledger for faulted runs,
and the observability metrics summary when collection was enabled.
:class:`~repro.analysis.executor.SweepExecutor` writes one per point
when constructed with ``manifest_dir=...``; ``repro report`` renders
them back into channel heatmaps and timelines without touching the
simulator.

Manifests wear the shared artifact envelope
(:mod:`repro.obs.envelope`) with ``tool == "manifest"`` and are named
``manifest-<spec-hash>.json``, so a directory of manifests is keyed
exactly like a result cache.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.obs.envelope import attach_envelope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.executor import ExperimentSpec
    from repro.sim.stats import SimulationResult

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "git_describe",
    "load_manifest",
    "iter_manifests",
    "manifest_path",
    "write_manifest",
]

#: Version of the manifest body layout (inside the shared envelope).
MANIFEST_SCHEMA_VERSION = 1


def git_describe(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The repository's ``git describe --always --dirty``, or ``None``.

    Never raises: a manifest written outside a work tree (or without
    git on PATH) simply records no code version.
    """
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    described = proc.stdout.strip()
    return described or None


def build_manifest(
    *,
    spec: "ExperimentSpec",
    result: "SimulationResult",
    wall_time_s: float,
    cached: bool,
    resilience: Optional[Dict[str, Any]] = None,
    metrics: Optional[Dict[str, Any]] = None,
    certification: Optional[Dict[str, Any]] = None,
    series: str = "",
    index: int = 0,
    git_version: Optional[str] = None,
    executor: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the manifest document for one completed point.

    Args:
        spec: the experiment spec that was run.
        result: its simulation result (re-serialized in full, so a
            manifest alone reproduces every reported number).
        wall_time_s: seconds the simulation took (0.0 for cache hits).
        cached: whether the result came from the result cache.
        resilience: the fault run's ledger summary, if any.
        metrics: the obs metrics summary, if collection was enabled.
        certification: the executor's certification verdict, e.g.
            ``{"required": True, "certified": True}``.
        series: sweep-series label the point belonged to.
        index: position within its series.
        git_version: code version; defaults to :func:`git_describe`.
        executor: how the executor ran the point, e.g.
            ``{"jobs": 8, "warm": True}`` — the effective worker count
            (after a ``jobs=None`` request resolves to the CPU count)
            and whether warm-state reuse was on.
    """
    from repro.analysis.results_io import result_to_dict

    spec_hash = spec.content_hash()
    body: Dict[str, Any] = {
        "manifest_version": MANIFEST_SCHEMA_VERSION,
        # repro-lint: allow[no-wallclock] manifest creation stamp: provenance metadata only, never digested or cached on
        "created_unix": round(time.time(), 3),
        "git_describe": (
            git_version if git_version is not None else git_describe()
        ),
        "point": {"series": series, "index": index},
        "spec": spec.to_dict(),
        "timings": {"wall_time_s": wall_time_s, "cached": cached},
        "executor": executor,
        "certification": certification,
        "resilience": resilience,
        "metrics": metrics,
        "result": result_to_dict(result),
    }
    return attach_envelope(body, "manifest", spec_hash=spec_hash)


def manifest_path(root: Union[str, Path], spec_hash: str) -> Path:
    """Where the manifest for ``spec_hash`` lives under ``root``."""
    return Path(root) / f"manifest-{spec_hash}.json"


def write_manifest(
    manifest: Dict[str, Any], root: Union[str, Path]
) -> Path:
    """Persist one manifest under ``root``; returns the file path.

    The file is keyed by the manifest's own ``spec_hash``, so rewriting
    the same point (e.g. a cache hit on a later sweep) overwrites its
    previous manifest rather than accumulating duplicates.
    """
    spec_hash = manifest.get("spec_hash")
    if not spec_hash:
        raise ValueError("manifest carries no spec_hash")
    target = manifest_path(root, str(spec_hash))
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(manifest, indent=2, sort_keys=False))
    return target


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read one manifest, validating its envelope and body version."""
    from repro.obs.envelope import load_envelope

    manifest = load_envelope(path, expect_tool="manifest")
    version = manifest.get("manifest_version")
    if not isinstance(version, int) or version > MANIFEST_SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported manifest_version {version!r}")
    return manifest


def iter_manifests(root: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load every manifest under ``root``, ordered by (series, index).

    Non-manifest JSON files are skipped silently, so a directory shared
    with a result cache still reads cleanly.
    """
    manifests: List[Dict[str, Any]] = []
    for path in sorted(Path(root).glob("manifest-*.json")):
        try:
            manifests.append(load_manifest(path))
        except (ValueError, OSError):
            continue
    manifests.sort(
        key=lambda m: (
            m.get("point", {}).get("series", ""),
            m.get("point", {}).get("index", 0),
        )
    )
    return manifests
