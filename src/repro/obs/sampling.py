"""Reservoir sampling for unbounded metric streams.

A run at saturation delivers hundreds of thousands of packets; keeping
every latency would dwarf the result payload.  :class:`ReservoirSampler`
keeps a uniform random sample of fixed capacity using Vitter's
algorithm R, drawing from its **own** private :class:`random.Random`
stream — never the simulation's workload or selection RNGs — which is
what lets the observability layer promise bit-invisibility while still
producing statistically honest percentiles.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

from repro.sim.stats import percentile

__all__ = ["ReservoirSampler"]


class ReservoirSampler:
    """Uniform fixed-capacity sample of a stream (algorithm R).

    Every offered value has probability ``capacity / population`` of
    being in the reservoir at any point, regardless of arrival order.
    Determinism contract: the same seed and the same offered stream
    yield the same reservoir, byte for byte — pinned by
    ``tests/obs/test_sampling.py``.
    """

    __slots__ = ("capacity", "population", "_rng", "_values")

    def __init__(self, capacity: int, seed: int = 1) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0: {capacity}")
        self.capacity = capacity
        self.population = 0
        self._rng = random.Random(seed)
        self._values: List[float] = []

    def offer(self, value: float) -> None:
        """Consider one stream value for inclusion in the reservoir."""
        self.population += 1
        if self.capacity == 0:
            return
        if len(self._values) < self.capacity:
            self._values.append(value)
            return
        slot = self._rng.randrange(self.population)
        if slot < self.capacity:
            self._values[slot] = value

    def values(self) -> List[float]:
        """The current reservoir contents, in insertion/replacement order."""
        return list(self._values)

    def summary(self) -> Dict[str, Any]:
        """JSON-ready distribution summary of the sampled stream.

        Percentiles use the same nearest-rank convention as the
        engine's end-of-run statistics (:func:`repro.sim.stats.percentile`).
        """
        values = self._values
        return {
            "population": self.population,
            "capacity": self.capacity,
            "sampled": len(values),
            "mean": (sum(values) / len(values)) if values else 0.0,
            "min": float(min(values)) if values else 0.0,
            "p50": percentile(values, 0.50),
            "p90": percentile(values, 0.90),
            "p99": percentile(values, 0.99),
            "max": float(max(values)) if values else 0.0,
        }
