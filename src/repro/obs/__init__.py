"""Observability: sampling metrics, run manifests, and reports.

The layer has three floors, all optional and all bit-invisible to the
simulation itself:

* **collection** (:mod:`~repro.obs.spec`, :mod:`~repro.obs.sampling`,
  :mod:`~repro.obs.metrics`): an :class:`ObsSpec` on
  :class:`~repro.analysis.executor.ExperimentSpec` enables a
  :class:`MetricsCollector` the engine consults through the same cheap
  ``is not None`` hook discipline as the fault controller;
* **persistence** (:mod:`~repro.obs.envelope`,
  :mod:`~repro.obs.manifest`): every CLI ``--out`` artifact shares one
  JSON envelope, and the executor writes a structured manifest per
  point (spec hash, git describe, timings, certification verdict,
  resilience ledger, metric summaries);
* **rendering** (:mod:`~repro.obs.report`): ``repro report`` turns
  manifests back into channel-utilization heatmaps and throughput
  timelines, text-first with optional matplotlib.

Every name is re-exported lazily: the executor imports
``repro.obs.spec`` while :mod:`repro.resilience` (imported by the
metrics module for its channel encoding) imports the executor back, so
an eager package init would complete that cycle.
"""

#: Lazily re-exported names and the submodules providing them (see the
#: module docstring for why the package init must stay import-free).
_LAZY = {
    "ObsSpec": "spec",
    "ReservoirSampler": "sampling",
    "MetricsCollector": "metrics",
    "OBS_SCHEMA_VERSION": "metrics",
    "ENVELOPE_SCHEMA_VERSION": "envelope",
    "attach_envelope": "envelope",
    "load_envelope": "envelope",
    "save_envelope": "envelope",
    "MANIFEST_SCHEMA_VERSION": "manifest",
    "build_manifest": "manifest",
    "git_describe": "manifest",
    "iter_manifests": "manifest",
    "load_manifest": "manifest",
    "manifest_path": "manifest",
    "write_manifest": "manifest",
    "hottest_channels": "report",
    "node_utilization_grid": "report",
    "plot_manifest": "report",
    "render_channel_heatmap": "report",
    "render_manifest_report": "report",
    "render_timeline_table": "report",
    "report_payload": "report",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value
    return value


__all__ = [
    "ObsSpec",
    "ReservoirSampler",
    "MetricsCollector",
    "OBS_SCHEMA_VERSION",
    "ENVELOPE_SCHEMA_VERSION",
    "attach_envelope",
    "load_envelope",
    "save_envelope",
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "git_describe",
    "iter_manifests",
    "load_manifest",
    "manifest_path",
    "write_manifest",
    "hottest_channels",
    "node_utilization_grid",
    "plot_manifest",
    "render_channel_heatmap",
    "render_manifest_report",
    "render_timeline_table",
    "report_payload",
]

assert set(__all__) >= set(_LAZY), "lazy re-exports missing from __all__"
