"""The shared JSON envelope of every ``--out`` artifact and manifest.

Every JSON document the CLI writes — ``repro sweep/verify/resilience/
bench/report --out`` and the executor's run manifests — carries the
same three top-level keys so artifacts compose and downstream tooling
can dispatch without guessing:

* ``schema_version``: integer version of the envelope itself;
* ``tool``: which producer wrote the document (``"sweep"``,
  ``"verify"``, ``"resilience"``, ``"bench"``, ``"report"``,
  ``"manifest"``);
* ``spec_hash``: content hash of the governing
  :class:`~repro.analysis.executor.ExperimentSpec`, when the document
  describes exactly one spec (absent otherwise).

The envelope is *merged into* the producer's existing payload rather
than nesting it, so historical payload keys (``kind``, ``series``,
``cells``, ...) keep their position and pre-envelope consumers keep
working.  Schema documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = [
    "ENVELOPE_SCHEMA_VERSION",
    "attach_envelope",
    "load_envelope",
    "save_envelope",
]

#: Version of the shared ``--out`` envelope (``schema_version`` key).
ENVELOPE_SCHEMA_VERSION = 1

_ENVELOPE_KEYS = ("schema_version", "tool", "spec_hash")


def attach_envelope(
    payload: Dict[str, Any],
    tool: str,
    *,
    spec_hash: Optional[str] = None,
) -> Dict[str, Any]:
    """A copy of ``payload`` with the envelope keys merged in front.

    Raises ``ValueError`` if the payload already uses an envelope key —
    producers must not invent their own versions of these fields.
    """
    if not tool:
        raise ValueError("tool name must be non-empty")
    for key in _ENVELOPE_KEYS:
        if key in payload:
            raise ValueError(f"payload already defines envelope key {key!r}")
    envelope: Dict[str, Any] = {
        "schema_version": ENVELOPE_SCHEMA_VERSION,
        "tool": tool,
    }
    if spec_hash is not None:
        envelope["spec_hash"] = spec_hash
    envelope.update(payload)
    return envelope


def save_envelope(
    payload: Dict[str, Any],
    tool: str,
    path: Union[str, Path],
    *,
    spec_hash: Optional[str] = None,
    indent: int = 2,
) -> Dict[str, Any]:
    """Attach the envelope and write the document to ``path``.

    Parent directories are created.  Returns the enveloped document.
    """
    document = attach_envelope(payload, tool, spec_hash=spec_hash)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=indent, sort_keys=False))
    return document


def load_envelope(
    path: Union[str, Path],
    *,
    expect_tool: Optional[str] = None,
) -> Dict[str, Any]:
    """Read an enveloped JSON document, validating the envelope.

    Raises ``ValueError`` if the document has no envelope, claims an
    unknown future ``schema_version``, or — when ``expect_tool`` is
    given — was written by a different tool.
    """
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict) or "schema_version" not in document:
        raise ValueError(f"{path}: not an enveloped repro JSON document")
    version = document["schema_version"]
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"{path}: bad schema_version {version!r}")
    if version > ENVELOPE_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version} is newer than supported "
            f"({ENVELOPE_SCHEMA_VERSION})"
        )
    tool = document.get("tool")
    if expect_tool is not None and tool != expect_tool:
        raise ValueError(
            f"{path}: expected a {expect_tool!r} document, found {tool!r}"
        )
    return document
