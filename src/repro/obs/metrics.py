"""The sampling metrics collector the engine consults during a run.

:class:`MetricsCollector` follows the same cheap hook discipline as the
resilience :class:`~repro.resilience.controller.FaultController`: the
engine holds an ``Optional`` reference and every hook site is a single
``is not None`` test, so a run without observability pays a handful of
comparisons per cycle and nothing else.  When enabled, every hook is
**read-only** with respect to simulation state — the collector inspects
counters and channel occupancy, never mutates them, and draws random
numbers only from its private reservoir stream — which is what makes
instrumentation bit-invisible to the golden digests
(``tests/obs/test_digest_invisibility.py``).

What is collected (all knobs on :class:`~repro.obs.spec.ObsSpec`):

* counters and gauges: flits moved, packet injections and deliveries,
  park/wake events of the waiter-parking optimization;
* per-channel utilization (cycles a channel had an owner) and buffer
  occupancy accumulators, sampled every ``sample_every`` executed cycle;
* a reservoir-sampled packet latency distribution;
* a throughput/latency timeline bucketed by ``timeline_window`` cycles.

Cycles skipped by the engine's idle fast-forward are never sampled —
they are, by construction, cycles on which nothing happened — so
utilization denominators count *observed* cycles; the summary reports
``cycles_total``, ``cycles_executed`` and ``cycles_observed`` so
downstream consumers can normalize either way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.obs.sampling import ReservoirSampler
from repro.obs.spec import ObsSpec
from repro.resilience.schedule import channel_to_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import WormholeSimulator
    from repro.sim.packet import Packet
    from repro.sim.resources import ChannelState

__all__ = ["OBS_SCHEMA_VERSION", "MetricsCollector"]

#: Version of the metrics-summary dict layout produced by
#: :meth:`MetricsCollector.summary` (bumped on breaking key changes).
OBS_SCHEMA_VERSION = 1


class _TimelineBucket:
    """Mutable accumulator for one ``timeline_window``-wide cycle span."""

    __slots__ = (
        "start",
        "flit_moves",
        "injected_packets",
        "delivered_packets",
        "delivered_flits",
        "latency_sum",
    )

    def __init__(self, start: int) -> None:
        self.start = start
        self.flit_moves = 0
        self.injected_packets = 0
        self.delivered_packets = 0
        self.delivered_flits = 0
        self.latency_sum = 0.0

    def to_dict(self, window: int) -> Dict[str, Any]:
        delivered = self.delivered_packets
        return {
            "start": self.start,
            "end": self.start + window,
            "flit_moves": self.flit_moves,
            "injected_packets": self.injected_packets,
            "delivered_packets": delivered,
            "delivered_flits": self.delivered_flits,
            "avg_latency_cycles": (
                self.latency_sum / delivered if delivered else 0.0
            ),
        }


class MetricsCollector:
    """Gathers run metrics through the engine's observability hooks.

    Construct one per run, pass it to
    :class:`~repro.sim.engine.WormholeSimulator` (or ``simulate(...,
    obs=...)``), and read :meth:`summary` afterwards.  A collector is
    single-use: it binds to exactly one simulator.
    """

    def __init__(self, spec: Optional[ObsSpec] = None) -> None:
        self.spec = spec if spec is not None else ObsSpec()
        #: Headers parked on channel wake lists (engine-incremented).
        self.park_events = 0
        #: Parked headers woken by a channel release (engine-incremented).
        self.wake_events = 0
        #: ``on_cycle_end`` invocations (cycles the collector saw).
        self.cycles_observed = 0
        self.deliveries = 0
        self.delivered_flits = 0
        self._reservoir = ReservoirSampler(
            self.spec.latency_reservoir, seed=self.spec.reservoir_seed
        )
        self._bound = False
        self._finished = False
        self._channels: List[Any] = []
        self._states: List["ChannelState"] = []
        self._busy: List[int] = []
        self._occupancy: List[int] = []
        self._channel_samples = 0
        self._buckets: Dict[int, _TimelineBucket] = {}
        self._last_flit_moves = 0
        self._last_injected = 0
        self._totals: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Engine hooks

    def bind(self, sim: "WormholeSimulator") -> None:
        """Attach to a simulator (called once, from the engine's init)."""
        if self._bound:
            raise RuntimeError("MetricsCollector is single-use; already bound")
        self._bound = True
        if self.spec.channels:
            states = sim.network_channel_states
            # topology.channels() order: deterministic and shared with
            # the engine's own state table.
            self._channels = list(states.keys())
            self._states = [states[ch] for ch in self._channels]
            self._busy = [0] * len(self._channels)
            self._occupancy = [0] * len(self._channels)
        self._last_flit_moves = sim.flit_moves
        self._last_injected = sim.total_injected

    def on_packet_delivered(self, packet: "Packet", cycle: int) -> None:
        """One packet fully consumed at its destination on ``cycle``."""
        latency = cycle - packet.create_time
        self.deliveries += 1
        self.delivered_flits += packet.size
        self._reservoir.offer(latency)
        if self.spec.timeline:
            bucket = self._bucket(cycle)
            bucket.delivered_packets += 1
            bucket.delivered_flits += packet.size
            bucket.latency_sum += latency

    def on_cycle_end(self, cycle: int, sim: "WormholeSimulator") -> None:
        """Sample engine state at the end of one executed cycle."""
        self.cycles_observed += 1
        spec = self.spec
        if spec.timeline:
            moved = sim.flit_moves
            injected = sim.total_injected
            if moved != self._last_flit_moves or injected != self._last_injected:
                bucket = self._bucket(cycle)
                bucket.flit_moves += moved - self._last_flit_moves
                bucket.injected_packets += injected - self._last_injected
                self._last_flit_moves = moved
                self._last_injected = injected
        if spec.channels and cycle % spec.sample_every == 0:
            self._channel_samples += 1
            busy = self._busy
            occupancy = self._occupancy
            for index, state in enumerate(self._states):
                if state.owner is not None:
                    busy[index] += 1
                count = state.count
                if count:
                    occupancy[index] += count

    def finish(self, sim: "WormholeSimulator") -> None:
        """Capture end-of-run totals (called once after the main loop)."""
        self._finished = True
        self._totals = {
            "cycles_total": sim.cycle + 1,
            "cycles_executed": sim.cycles_executed,
            "flit_moves": sim.flit_moves,
            "injected_packets": sim.total_injected,
            "delivered_packets": sim.total_delivered,
        }

    # ------------------------------------------------------------------
    # Reporting

    def _bucket(self, cycle: int) -> _TimelineBucket:
        start = (cycle // self.spec.timeline_window) * self.spec.timeline_window
        bucket = self._buckets.get(start)
        if bucket is None:
            bucket = _TimelineBucket(start)
            self._buckets[start] = bucket
        return bucket

    def _channel_summary(self) -> Optional[Dict[str, Any]]:
        if not self.spec.channels:
            return None
        samples = self._channel_samples
        per_channel: List[Dict[str, Any]] = []
        for index, channel in enumerate(self._channels):
            busy = self._busy[index]
            occupancy = self._occupancy[index]
            per_channel.append(
                {
                    "channel": channel_to_dict(channel),
                    "busy_samples": busy,
                    "occupancy_sum": occupancy,
                    "utilization": busy / samples if samples else 0.0,
                    "mean_occupancy": occupancy / samples if samples else 0.0,
                }
            )
        return {
            "samples": samples,
            "sample_every": self.spec.sample_every,
            "per_channel": per_channel,
        }

    def _timeline_summary(self) -> Optional[Dict[str, Any]]:
        if not self.spec.timeline:
            return None
        window = self.spec.timeline_window
        buckets = [
            self._buckets[start].to_dict(window)
            for start in sorted(self._buckets)
        ]
        return {"window": window, "buckets": buckets}

    def summary(self) -> Dict[str, Any]:
        """The full JSON-ready metrics summary for this run.

        Layout (``obs_schema_version`` 1): ``spec`` echoes the knobs,
        ``counters`` holds run totals plus park/wake event counts,
        ``latency_cycles`` the reservoir distribution, ``channels`` the
        per-channel accumulators (or ``None`` when disabled) and
        ``timeline`` the bucketed throughput/latency series (or
        ``None``).  Documented in ``docs/observability.md``.
        """
        counters = dict(self._totals)
        counters["cycles_observed"] = self.cycles_observed
        counters["park_events"] = self.park_events
        counters["wake_events"] = self.wake_events
        counters["observed_deliveries"] = self.deliveries
        counters["observed_delivered_flits"] = self.delivered_flits
        return {
            "obs_schema_version": OBS_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "counters": counters,
            "latency_cycles": self._reservoir.summary(),
            "channels": self._channel_summary(),
            "timeline": self._timeline_summary(),
        }

    def latency_values(self) -> List[float]:
        """The reservoir's raw latency samples (for tests and plots)."""
        return self._reservoir.values()

    @property
    def finished(self) -> bool:
        """Whether the bound run has completed (``finish`` was called)."""
        return self._finished

    def channel_records(self) -> List[Tuple[Any, int, int]]:
        """Raw ``(channel, busy_samples, occupancy_sum)`` triples."""
        return [
            (channel, self._busy[index], self._occupancy[index])
            for index, channel in enumerate(self._channels)
        ]
