"""Render run manifests into channel heatmaps and timeline tables.

Everything here consumes the plain-dict metric summaries produced by
:class:`~repro.obs.metrics.MetricsCollector` (usually via a manifest
from :mod:`repro.obs.manifest`) — never the simulator — so ``repro
report`` can reconstruct where congestion concentrated from a manifest
file alone, long after the run.  Output is plain text by default; an
optional matplotlib path (:func:`plot_manifest`) renders the same data
graphically and degrades to a clear error when the library is absent.

The heatmap draws per-node utilization for any topology whose node
coordinates are 2-D (meshes and tori); other topologies fall back to
the hottest-channels table, which is topology-agnostic.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "hottest_channels",
    "node_utilization_grid",
    "plot_manifest",
    "render_channel_heatmap",
    "render_manifest_report",
    "render_timeline_table",
    "report_payload",
]


def _format_channel(record: Dict[str, Any]) -> str:
    src = tuple(record["src"])
    dst = tuple(record["dst"])
    arrow = "~>" if record.get("wraparound") else "->"
    lane = record.get("lane", 0)
    suffix = f" lane{lane}" if lane else ""
    return f"{src}{arrow}{dst}{suffix}"


def hottest_channels(
    channels: Dict[str, Any], top: int = 8
) -> List[Dict[str, Any]]:
    """The ``top`` per-channel records by utilization, busiest first.

    Ties break on the channel encoding so the ordering is stable across
    runs and platforms.
    """
    records = list(channels.get("per_channel", ()))
    records.sort(
        key=lambda r: (
            -r["utilization"],
            -r["occupancy_sum"],
            str(r["channel"]),
        )
    )
    return records[:top]


def node_utilization_grid(
    channels: Dict[str, Any],
) -> Optional[List[List[float]]]:
    """Per-node outgoing-link utilization on a 2-D coordinate grid.

    ``grid[y][x]`` is the *maximum* utilization over the channels
    leaving node ``(x, y)`` — the hotspot signal: a node is only as
    congested as its busiest output.  Returns ``None`` when any node
    coordinate is not 2-D (hypercubes, higher-dimensional meshes).
    """
    records = channels.get("per_channel", ())
    if not records:
        return None
    best: Dict[Tuple[int, int], float] = {}
    max_x = 0
    max_y = 0
    for record in records:
        src = record["channel"]["src"]
        dst = record["channel"]["dst"]
        if len(src) != 2 or len(dst) != 2:
            return None
        for x, y in (tuple(src), tuple(dst)):
            max_x = max(max_x, int(x))
            max_y = max(max_y, int(y))
        node = (int(src[0]), int(src[1]))
        utilization = float(record["utilization"])
        if utilization > best.get(node, -1.0):
            best[node] = utilization
    return [
        [best.get((x, y), 0.0) for x in range(max_x + 1)]
        for y in range(max_y + 1)
    ]


def render_channel_heatmap(
    channels: Optional[Dict[str, Any]], top: int = 8
) -> str:
    """Text heatmap of channel utilization plus the hottest channels.

    Grid cells are integer percentages of sampled cycles the node's
    busiest outgoing channel had an owner; rows are printed north (high
    ``y``) to south so the table reads like the paper's mesh figures.
    """
    if not channels or not channels.get("per_channel"):
        return "channel metrics: not collected"
    lines: List[str] = []
    samples = channels.get("samples", 0)
    lines.append(
        "Channel utilization heatmap "
        f"(% busy of {samples} sampled cycles; "
        "cell = max over the node's outgoing channels)"
    )
    grid = node_utilization_grid(channels)
    if grid is not None:
        width = len(grid[0])
        for y in range(len(grid) - 1, -1, -1):
            cells = " ".join(f"{round(grid[y][x] * 100):3d}" for x in range(width))
            lines.append(f"  y={y:<2d} {cells}")
        lines.append(
            "       " + " ".join(f"{x:3d}" for x in range(width)) + "   (x)"
        )
    else:
        lines.append("  (no 2-D node grid for this topology)")
    lines.append(f"Hottest channels (top {top}):")
    for record in hottest_channels(channels, top):
        lines.append(
            f"  {_format_channel(record['channel']):<24} "
            f"util={record['utilization'] * 100:5.1f}%  "
            f"mean_occ={record['mean_occupancy']:.2f}"
        )
    return "\n".join(lines)


def render_timeline_table(
    timeline: Optional[Dict[str, Any]], max_rows: int = 24
) -> str:
    """The bucketed throughput/latency timeline as an aligned table."""
    if not timeline or not timeline.get("buckets"):
        return "timeline metrics: not collected"
    window = timeline["window"]
    buckets = timeline["buckets"]
    lines = [
        f"Timeline ({window}-cycle windows; {len(buckets)} non-empty)",
        f"  {'cycles':>13}  {'flits':>7}  {'inj':>5}  {'dlv':>5}  "
        f"{'dlv flits':>9}  {'avg lat':>8}",
    ]
    shown = buckets[:max_rows]
    for bucket in shown:
        span = f"{bucket['start']}-{bucket['end']}"
        lines.append(
            f"  {span:>13}  {bucket['flit_moves']:>7}  "
            f"{bucket['injected_packets']:>5}  "
            f"{bucket['delivered_packets']:>5}  "
            f"{bucket['delivered_flits']:>9}  "
            f"{bucket['avg_latency_cycles']:>8.1f}"
        )
    if len(buckets) > len(shown):
        lines.append(f"  ... {len(buckets) - len(shown)} more windows")
    return "\n".join(lines)


def _render_scalars(title: str, payload: Dict[str, Any]) -> List[str]:
    lines = [f"{title}:"]
    for key in sorted(payload):
        value = payload[key]
        if isinstance(value, float):
            lines.append(f"  {key}: {value:.4g}")
        elif isinstance(value, (int, str, bool)) or value is None:
            lines.append(f"  {key}: {value}")
    return lines


def render_manifest_report(
    manifest: Dict[str, Any], top: int = 8, max_rows: int = 24
) -> str:
    """The full text report for one run manifest.

    Sections: provenance header (spec, hash, git, timing,
    certification), headline results, the resilience ledger when
    present, then the channel heatmap and timeline when metrics were
    collected.
    """
    spec = manifest.get("spec", {})
    timings = manifest.get("timings", {})
    point = manifest.get("point", {})
    lines: List[str] = []
    lines.append(
        f"== {spec.get('topology', '?')} {spec.get('routing', '?')} "
        f"{spec.get('pattern', '?')} load={spec.get('load', '?')} "
        f"seed={spec.get('seed', '?')} =="
    )
    spec_hash = str(manifest.get("spec_hash", ""))
    lines.append(
        f"spec_hash={spec_hash[:12]}  git={manifest.get('git_describe')}  "
        f"series={point.get('series') or '-'}  index={point.get('index', 0)}"
    )
    source = "cache" if timings.get("cached") else (
        f"{timings.get('wall_time_s', 0.0):.2f}s"
    )
    certification = manifest.get("certification") or {}
    lines.append(
        f"run: {source}  certification: "
        f"required={certification.get('required', False)} "
        f"certified={certification.get('certified', False)}"
    )
    resilience_spec = spec.get("resilience")
    if resilience_spec:
        lines.append(
            f"faults: {resilience_spec.get('fault_count', 0)} "
            f"(seed {resilience_spec.get('fault_seed')}, "
            f"policy {resilience_spec.get('policy')})"
        )
    result = manifest.get("result") or {}
    if result:
        lines.append(
            f"result: avg_latency={result.get('avg_latency_cycles', 0.0):.1f}cyc  "
            f"delivered={result.get('total_delivered', 0)}/"
            f"{result.get('total_injected', 0)} pkts  "
            f"deadlocked={result.get('deadlocked', False)}"
        )
    resilience = manifest.get("resilience")
    if resilience:
        lines.extend(_render_scalars("resilience ledger", resilience))
    metrics = manifest.get("metrics")
    if metrics:
        counters = metrics.get("counters") or {}
        if counters:
            lines.extend(_render_scalars("counters", counters))
        latency = metrics.get("latency_cycles") or {}
        if latency.get("population"):
            lines.append(
                f"latency reservoir: n={latency['population']} "
                f"p50={latency['p50']:.1f} p90={latency['p90']:.1f} "
                f"p99={latency['p99']:.1f} max={latency['max']:.1f}"
            )
        lines.append(render_channel_heatmap(metrics.get("channels"), top=top))
        lines.append(
            render_timeline_table(metrics.get("timeline"), max_rows=max_rows)
        )
    else:
        lines.append("metrics: not collected (run with --obs or ObsSpec)")
    return "\n".join(lines)


def report_payload(
    manifests: List[Dict[str, Any]], top: int = 8
) -> Dict[str, Any]:
    """The ``repro report --out`` body: one summary entry per manifest."""
    entries: List[Dict[str, Any]] = []
    for manifest in manifests:
        metrics = manifest.get("metrics") or {}
        channels = metrics.get("channels")
        entries.append(
            {
                "spec_hash": manifest.get("spec_hash"),
                "spec": manifest.get("spec"),
                "point": manifest.get("point"),
                "counters": metrics.get("counters"),
                "latency_cycles": metrics.get("latency_cycles"),
                "hottest_channels": (
                    hottest_channels(channels, top) if channels else None
                ),
                "resilience": manifest.get("resilience"),
            }
        )
    return {"manifests": entries}


def plot_manifest(manifest: Dict[str, Any], out_path: str) -> str:
    """Render one manifest's heatmap and timeline with matplotlib.

    Saves a two-panel figure to ``out_path`` and returns the path.
    Raises ``RuntimeError`` when matplotlib is not installed — the text
    renderers above are the dependency-free path.
    """
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError as exc:  # pragma: no cover - env-dependent
        raise RuntimeError(
            "matplotlib is not installed; use the text report instead"
        ) from exc

    metrics = manifest.get("metrics") or {}
    channels = metrics.get("channels") or {}
    timeline = metrics.get("timeline") or {}
    grid = node_utilization_grid(channels) if channels else None
    figure, (left, right) = plt.subplots(1, 2, figsize=(11, 4.5))
    spec = manifest.get("spec", {})
    figure.suptitle(
        f"{spec.get('topology')} {spec.get('routing')} "
        f"{spec.get('pattern')} load={spec.get('load')}"
    )
    if grid is not None:
        image = left.imshow(grid, origin="lower", cmap="viridis",
                            vmin=0.0, vmax=1.0)
        left.set_title("max outgoing-channel utilization")
        left.set_xlabel("x")
        left.set_ylabel("y")
        figure.colorbar(image, ax=left, fraction=0.046)
    else:
        left.set_title("no 2-D grid for this topology")
        left.axis("off")
    buckets = timeline.get("buckets") or []
    if buckets:
        starts = [bucket["start"] for bucket in buckets]
        right.plot(starts, [b["flit_moves"] for b in buckets],
                   label="flits moved")
        right.plot(starts, [b["delivered_flits"] for b in buckets],
                   label="flits delivered")
        right.set_title("throughput per window")
        right.set_xlabel("cycle")
        right.legend()
    else:
        right.set_title("no timeline collected")
        right.axis("off")
    figure.tight_layout()
    figure.savefig(out_path, dpi=150)
    plt.close(figure)
    return out_path
