"""Observability knobs as pure data (:class:`ObsSpec`).

The spec travels on :class:`~repro.analysis.executor.ExperimentSpec`
exactly like :class:`~repro.analysis.executor.ResilienceSpec` does: all
primitives, frozen, picklable, and content-hashable — and **omitted from
the canonical serialization when ``None``**, so every spec hash and
cache entry minted before observability existed is unchanged.  This
module deliberately imports nothing from the simulator or the executor;
it is leaf vocabulary both can share.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["ObsSpec"]


@dataclass(frozen=True)
class ObsSpec:
    """What the metrics subsystem samples during one run.

    Instrumentation is guaranteed bit-invisible: enabling any
    combination of these knobs never changes a run's
    :class:`~repro.sim.stats.SimulationResult` or trace digest, because
    the collector only reads engine state and draws from its own
    private RNG stream.

    Attributes:
        sample_every: channel-state sampling interval in cycles (1 =
            sample every executed cycle).  Larger intervals trade
            heatmap fidelity for collection overhead.
        timeline_window: width, in cycles, of each throughput/latency
            timeline bucket.
        latency_reservoir: capacity of the packet-latency reservoir
            sample (0 disables latency sampling; deliveries are still
            counted).
        reservoir_seed: seed of the reservoir's private RNG — private
            precisely so sampling can never perturb the workload or
            selection-policy streams.
        channels: collect per-channel utilization and buffer-occupancy
            accumulators (the heatmap data).
        timeline: collect the bucketed throughput/latency timeline.
    """

    sample_every: int = 1
    timeline_window: int = 200
    latency_reservoir: int = 1024
    reservoir_seed: int = 1
    channels: bool = True
    timeline: bool = True

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError(f"sample_every must be >= 1: {self.sample_every}")
        if self.timeline_window < 1:
            raise ValueError(
                f"timeline_window must be >= 1: {self.timeline_window}"
            )
        if self.latency_reservoir < 0:
            raise ValueError(
                f"latency_reservoir must be >= 0: {self.latency_reservoir}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict; inverse of :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ObsSpec":
        """Rebuild a spec saved by :meth:`to_dict`."""
        return cls(**data)
