"""The stable programmatic API: one import for the whole harness.

Programmatic users should import from here rather than from individual
submodules (and especially not from :mod:`repro.cli`); this facade is
what stays stable as the internals are resharded for scale.

Describe an experiment as data, then run it::

    from repro.api import ExperimentSpec, SweepExecutor

    spec = ExperimentSpec(topology="mesh:16x16", routing="negative-first",
                          pattern="transpose", load=0.2)
    result = spec.run()                      # one point, in-process

    executor = SweepExecutor(jobs=4, cache_dir=".sweep-cache")
    series = executor.sweep("mesh:16x16", "negative-first", "transpose",
                            loads=[0.05, 0.1, 0.2, 0.3, 0.4])

or use the classic conveniences (``simulate``, ``sweep_loads``), which
accept both live objects and names/spec strings.  See
``docs/experiments_api.md`` for the full tour.
"""

from __future__ import annotations

from repro.analysis.executor import (
    ConfigSpec,
    ExecutorHooks,
    ExecutorMetrics,
    ExperimentSpec,
    PointOutcome,
    PointSpec,
    ProgressPrinter,
    ResilienceSpec,
    ResolvedSpec,
    ResultCache,
    SweepExecutor,
    resolve_spec,
    run_spec,
)
from repro.resilience import (
    FaultController,
    FaultSchedule,
    FaultSweepResult,
    fault_sweep,
    render_fault_table,
)
from repro.analysis.sweep import (
    SweepPoint,
    SweepSeries,
    default_loads,
    sweep_loads,
    truncate_at_saturation,
)
from repro.routing.registry import (
    UnknownNameError,
    available_algorithms,
    canonical_name,
    make_routing,
)
from repro.sim.config import SimulationConfig
from repro.sim.simulator import simulate
from repro.sim.stats import SimulationResult
from repro.topology.spec import parse_topology, topology_spec
from repro.traffic.permutations import available_patterns, make_pattern
from repro.traffic.workload import PAPER_SIZES, SizeDistribution

__all__ = [
    # Experiment descriptions.
    "ExperimentSpec",
    "ConfigSpec",
    "PointSpec",
    "ResolvedSpec",
    "resolve_spec",
    "run_spec",
    # Execution engine.
    "SweepExecutor",
    "ResultCache",
    "ExecutorHooks",
    "ExecutorMetrics",
    "ProgressPrinter",
    "PointOutcome",
    # Classic conveniences.
    "simulate",
    "sweep_loads",
    "default_loads",
    "truncate_at_saturation",
    "SweepPoint",
    "SweepSeries",
    "SimulationConfig",
    "SimulationResult",
    # Runtime fault injection.
    "ResilienceSpec",
    "FaultSchedule",
    "FaultController",
    "fault_sweep",
    "FaultSweepResult",
    "render_fault_table",
    # Registries and specs.
    "make_routing",
    "available_algorithms",
    "make_pattern",
    "available_patterns",
    "canonical_name",
    "UnknownNameError",
    "parse_topology",
    "topology_spec",
    # Workload sizing.
    "PAPER_SIZES",
    "SizeDistribution",
]
