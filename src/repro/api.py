"""The stable programmatic API: one import for the whole harness.

Programmatic users should import from here rather than from individual
submodules (and especially not from :mod:`repro.cli`); this facade is
what stays stable as the internals are resharded for scale.

The single entry point is :func:`run`.  Give it a spec, or name the
point inline with keywords; either way it returns a
:class:`~repro.analysis.executor.RunResult` carrying the simulation
result plus the optional sidecars (resilience ledger, obs metrics)::

    from repro.api import ObsSpec, run

    out = run(topology="mesh:16x16", routing="negative-first",
              pattern="transpose", load=0.2, obs=True)
    print(out.result.avg_latency_cycles)
    print(out.metrics["counters"])          # bit-invisible sampling

    spec = out.spec                          # reusable, hashable
    again = run(spec, cache_dir=".sweep-cache")   # cached re-run

Sweeps and fault sweeps keep their dedicated drivers
(:meth:`SweepExecutor.sweep`, :func:`fault_sweep`), both reachable from
here, and algorithm synthesis runs through :func:`run_synthesis` with a
:class:`SynthSpec` (see ``docs/synthesis.md``).  The pre-facade entry points (``simulate``, ``sweep_loads``,
``run_spec``) still work but emit :class:`DeprecationWarning`; see
``docs/experiments_api.md`` for the migration table.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Optional, Sequence, Tuple, Union

from repro.analysis.executor import (
    ConfigSpec,
    ExecutorHooks,
    ExecutorMetrics,
    ExperimentSpec,
    PointOutcome,
    PointSpec,
    ProgressPrinter,
    ResilienceSpec,
    ResolvedSpec,
    ResultCache,
    RunResult,
    SweepExecutor,
    resolve_spec,
)
from repro.analysis.executor import run_spec as _run_spec
from repro.analysis.sweep import (
    SweepPoint,
    SweepSeries,
    default_loads,
    truncate_at_saturation,
)
from repro.analysis.sweep import sweep_loads as _sweep_loads
from repro.obs.manifest import build_manifest, load_manifest, write_manifest
from repro.obs.metrics import MetricsCollector
from repro.obs.report import render_manifest_report
from repro.obs.spec import ObsSpec
from repro.resilience import (
    FaultController,
    FaultSchedule,
    FaultSweepResult,
    fault_sweep,
    render_fault_table,
)
from repro.routing.base import RoutingAlgorithm
from repro.routing.registry import (
    UnknownNameError,
    available_algorithms,
    canonical_name,
    make_routing,
)
from repro.sim.config import SimulationConfig
from repro.sim.simulator import simulate as _simulate
from repro.sim.stats import SimulationResult
from repro.synth import (
    SynthesisResult,
    SynthSpec,
    render_synthesis,
    run_synthesis,
)
from repro.topology.base import Topology
from repro.topology.spec import parse_topology, topology_spec
from repro.traffic.permutations import available_patterns, make_pattern
from repro.traffic.workload import PAPER_SIZES, SizeDistribution

__all__ = [
    # The facade.
    "run",
    "RunResult",
    # Experiment descriptions.
    "ExperimentSpec",
    "ConfigSpec",
    "ResilienceSpec",
    "ObsSpec",
    "PointSpec",
    "ResolvedSpec",
    "resolve_spec",
    # Execution engine.
    "SweepExecutor",
    "ResultCache",
    "ExecutorHooks",
    "ExecutorMetrics",
    "ProgressPrinter",
    "PointOutcome",
    # Observability.
    "MetricsCollector",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "render_manifest_report",
    # Runtime fault injection.
    "FaultSchedule",
    "FaultController",
    "fault_sweep",
    "FaultSweepResult",
    "render_fault_table",
    # Sweep vocabulary.
    "default_loads",
    "truncate_at_saturation",
    "SweepPoint",
    "SweepSeries",
    "SimulationConfig",
    "SimulationResult",
    # Algorithm synthesis.
    "SynthSpec",
    "SynthesisResult",
    "run_synthesis",
    "render_synthesis",
    # Registries and specs.
    "make_routing",
    "available_algorithms",
    "make_pattern",
    "available_patterns",
    "canonical_name",
    "UnknownNameError",
    "parse_topology",
    "topology_spec",
    # Workload sizing.
    "PAPER_SIZES",
    "SizeDistribution",
    # Deprecated shims (DeprecationWarning; kept one release for
    # migration).
    "simulate",
    "sweep_loads",
    "run_spec",
]

_UNSET = object()


def _coerce_sizes(
    sizes: Union[SizeDistribution, Sequence[Tuple[int, float]], None],
) -> Tuple[Tuple[int, float], ...]:
    if sizes is None:
        return PAPER_SIZES.choices
    if isinstance(sizes, SizeDistribution):
        return sizes.choices
    return tuple((int(s), float(p)) for s, p in sizes)


def _coerce_config(
    config: Union[SimulationConfig, ConfigSpec, None],
) -> ConfigSpec:
    if config is None:
        return ConfigSpec()
    if isinstance(config, ConfigSpec):
        return config
    return ConfigSpec.from_config(config)


def _coerce_obs(obs: Union[ObsSpec, bool, None]) -> Optional[ObsSpec]:
    if obs is None or obs is False:
        return None
    if obs is True:
        return ObsSpec()
    return obs


def run(
    spec: Optional[ExperimentSpec] = None,
    *,
    topology: Union[str, Topology, None] = None,
    routing: Union[str, RoutingAlgorithm, None] = None,
    pattern: Optional[str] = None,
    load: Optional[float] = None,
    sizes: Union[SizeDistribution, Sequence[Tuple[int, float]], None] = None,
    config: Union[SimulationConfig, ConfigSpec, None] = None,
    seed: int = 1,
    resilience: Optional[ResilienceSpec] = None,
    obs: Union[ObsSpec, bool, None] = None,
    cache_dir: Optional[str] = None,
    manifest_dir: Optional[str] = None,
) -> RunResult:
    """Run one simulation point and return everything it produced.

    The facade over every run path: plain, faulted (``resilience``),
    instrumented (``obs``), cached (``cache_dir``), and manifest-writing
    (``manifest_dir``) — all combinations return the same
    :class:`RunResult` shape.

    Describe the point either with a ready-made
    :class:`ExperimentSpec`::

        run(spec)
        run(spec, obs=True, cache_dir=".cache")

    or inline with keywords (all arguments besides ``spec`` are
    keyword-only)::

        run(topology="mesh:16x16", routing="west-first",
            pattern="uniform", load=0.1, seed=3)

    Args:
        spec: a complete point description; mutually exclusive with
            ``topology``/``routing``/``pattern``/``load``/``sizes``/
            ``config``/``seed``.  ``resilience`` and ``obs`` may still
            be given to override the spec's own settings.
        topology: topology instance or spec string (``"mesh:16x16"``).
        routing: routing algorithm instance or registry name.
        pattern: traffic pattern registry name.
        load: offered load in flits per node per cycle.
        sizes: packet-size distribution (defaults to the paper's mix).
        config: a :class:`SimulationConfig` or :class:`ConfigSpec`.
        seed: workload RNG seed.
        resilience: optional runtime fault injection spec.
        obs: observability — ``True`` for default collection, or an
            :class:`ObsSpec` for tuned knobs.  Bit-invisible to the
            result.
        cache_dir: reuse/populate an on-disk result cache.
        manifest_dir: write a structured run manifest for the point.

    Returns:
        The point's :class:`RunResult` (result plus resilience ledger,
        metrics summary, and cache provenance).
    """
    if spec is not None:
        if not isinstance(spec, ExperimentSpec):
            raise TypeError(
                "run() takes an ExperimentSpec positionally; name the "
                "point with keyword arguments instead "
                "(run(topology=..., routing=..., ...))"
            )
        named = {
            "topology": topology,
            "routing": routing,
            "pattern": pattern,
            "load": load,
            "sizes": sizes,
            "config": config,
        }
        clashing = sorted(name for name, value in named.items() if value is not None)
        if clashing or seed != 1:
            clashing = clashing or ["seed"]
            raise TypeError(
                f"run() got both a spec and point fields {clashing}; "
                "use dataclasses.replace(spec, ...) to vary a spec"
            )
        if resilience is not None:
            spec = dataclasses.replace(spec, resilience=resilience)
        if obs is not None:
            spec = dataclasses.replace(spec, obs=_coerce_obs(obs))
    else:
        missing = [
            name
            for name, value in (
                ("topology", topology),
                ("routing", routing),
                ("pattern", pattern),
                ("load", load),
            )
            if value is None
        ]
        if missing:
            raise TypeError(
                f"run() needs a spec or the point fields {missing}"
            )
        if isinstance(topology, Topology):
            topology = topology_spec(topology)
        if isinstance(routing, RoutingAlgorithm):
            routing = routing.name
        assert topology is not None and routing is not None
        assert pattern is not None and load is not None
        spec = ExperimentSpec(
            topology=topology,
            routing=routing,
            pattern=pattern,
            load=float(load),
            sizes=_coerce_sizes(sizes),
            config=_coerce_config(config),
            seed=seed,
            resilience=resilience,
            obs=_coerce_obs(obs),
        )

    if cache_dir is None and manifest_dir is None:
        return spec.run_full()
    executor = SweepExecutor(
        jobs=1, cache_dir=cache_dir, manifest_dir=manifest_dir
    )
    (outcome,) = executor.run_points([PointSpec(spec=spec)])
    return RunResult(
        spec=spec,
        result=outcome.result,
        resilience=outcome.resilience,
        metrics=outcome.metrics,
        cached=outcome.cached,
        wall_time_s=outcome.wall_time_s,
    )


def _deprecated(old: str, use: str) -> None:
    warnings.warn(
        f"repro.api.{old} is deprecated; use {use} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def simulate(*args, **kwargs) -> SimulationResult:
    """Deprecated alias for :func:`repro.sim.simulator.simulate`.

    Use :func:`run` (which returns a :class:`RunResult`; its ``result``
    field is what this returned).  Forwards unchanged in the meantime.
    """
    _deprecated("simulate", "repro.api.run(...)")
    return _simulate(*args, **kwargs)


def sweep_loads(*args, **kwargs) -> SweepSeries:
    """Deprecated alias for :func:`repro.analysis.sweep.sweep_loads`.

    Use :meth:`SweepExecutor.sweep`, which adds caching, parallelism,
    certification, and manifests.  Forwards unchanged in the meantime.
    """
    _deprecated("sweep_loads", "SweepExecutor().sweep(...)")
    return _sweep_loads(*args, **kwargs)


def run_spec(spec: ExperimentSpec) -> SimulationResult:
    """Deprecated alias for :meth:`ExperimentSpec.run`.

    Use :func:`run`, which returns the full :class:`RunResult`; this
    returned only the bare :class:`SimulationResult`.
    """
    _deprecated("run_spec", "repro.api.run(spec).result")
    return _run_spec(spec)
