"""Reproduction of "The Turn Model for Adaptive Routing" (Glass & Ni).

The package is organized as the paper is:

* :mod:`repro.core` — the turn model itself: direction/turn algebra,
  abstract cycles, prohibited-turn restrictions, the Dally-Seitz channel
  dependency test, channel-numbering deadlock certificates, and the
  degree-of-adaptiveness formulas.
* :mod:`repro.topology` — n-dimensional meshes, k-ary n-cubes, and
  hypercubes.
* :mod:`repro.routing` — the derived routing algorithms (west-first,
  north-last, negative-first, ABONF, ABOPL, p-cube, the torus
  extensions) and the nonadaptive baselines (xy, e-cube), plus
  input/output selection policies.
* :mod:`repro.sim` — the flit-level wormhole network simulator of the
  paper's Section 6 evaluation.
* :mod:`repro.traffic` — uniform, matrix-transpose, reverse-flip, and
  other workloads.
* :mod:`repro.analysis` — load sweeps, sustainable-throughput search,
  text reports.
* :mod:`repro.experiments` — one driver per paper table and figure.

Quickstart::

    from repro.topology import Mesh2D
    from repro.sim import simulate

    result = simulate(Mesh2D(8, 8), "negative-first", "transpose",
                      offered_load=0.1)
    print(result.summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
