"""Reproduction of "The Turn Model for Adaptive Routing" (Glass & Ni).

The package is organized as the paper is:

* :mod:`repro.core` — the turn model itself: direction/turn algebra,
  abstract cycles, prohibited-turn restrictions, the Dally-Seitz channel
  dependency test, channel-numbering deadlock certificates, and the
  degree-of-adaptiveness formulas.
* :mod:`repro.topology` — n-dimensional meshes, k-ary n-cubes, and
  hypercubes.
* :mod:`repro.routing` — the derived routing algorithms (west-first,
  north-last, negative-first, ABONF, ABOPL, p-cube, the torus
  extensions) and the nonadaptive baselines (xy, e-cube), plus
  input/output selection policies.
* :mod:`repro.sim` — the flit-level wormhole network simulator of the
  paper's Section 6 evaluation.
* :mod:`repro.traffic` — uniform, matrix-transpose, reverse-flip, and
  other workloads.
* :mod:`repro.analysis` — load sweeps, the parallel sweep executor and
  its on-disk result cache, sustainable-throughput search, text reports.
* :mod:`repro.experiments` — one driver per paper table and figure.
* :mod:`repro.api` — the stable facade programmatic users should import
  from (:class:`~repro.analysis.executor.ExperimentSpec`,
  :class:`~repro.analysis.executor.SweepExecutor`, ``simulate``,
  ``sweep_loads``, ``parse_topology``, the registries).

Quickstart::

    from repro.api import parse_topology, simulate

    result = simulate(parse_topology("mesh:8x8"), "negative-first",
                      "transpose", offered_load=0.1)
    print(result.summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
