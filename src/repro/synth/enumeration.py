"""Step 4 as a search space: enumerate candidate prohibition sets.

The turn model's Step 4 prohibits exactly one 90-degree turn from each
of the ``n (n-1)`` abstract cycles; the candidate space is therefore the
cartesian product of the cycles — ``4 ** (n (n-1))`` choices, 16 of them
for a 2D mesh (Section 3's census).  This module walks that space in a
deterministic order behind a topology-generic gate: meshes and
hypercubes share the direction algebra, so one enumerator serves both,
while wraparound topologies are rejected (their Step 5 channel surgery
is not representable as a pure prohibition set).
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, List, Optional, Tuple

from repro.core.model import TurnModel
from repro.core.turns import Turn, abstract_cycles
from repro.topology.base import Topology
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh

__all__ = [
    "candidate_space_size",
    "enumerate_candidates",
    "synthesis_dims",
    "turn_model_for",
]


def synthesis_dims(topology: Topology) -> int:
    """The dimensionality synthesis runs at for this topology.

    Raises:
        ValueError: for topology families outside the synthesizable
            gate.  Meshes and hypercubes share the signed-direction
            algebra the enumeration is built on; tori need Step 5's
            wraparound treatment and the hex/oct meshes have their own
            direction systems.
    """
    if not isinstance(topology, (Mesh, Hypercube)):
        raise ValueError(
            f"synthesis covers meshes and hypercubes, not "
            f"{type(topology).__name__}"
        )
    if topology.n_dims < 2:
        raise ValueError("synthesis needs at least two dimensions")
    return topology.n_dims


def turn_model_for(topology: Topology) -> TurnModel:
    """The :class:`TurnModel` instance backing a synthesis run."""
    return TurnModel(synthesis_dims(topology))


def candidate_space_size(n_dims: int) -> int:
    """``4 ** (n (n-1))``: one of four turns per abstract cycle."""
    return 4 ** (n_dims * (n_dims - 1))


def enumerate_candidates(
    n_dims: int, max_candidates: Optional[int] = None
) -> Tuple[List[FrozenSet[Turn]], bool]:
    """The one-turn-per-cycle prohibition sets, in deterministic order.

    The order is the cartesian product of :func:`abstract_cycles` in
    their canonical order — the same order every run, so a capped
    enumeration is a *prefix* of the space and resuming with a larger
    cap only appends.

    Args:
        n_dims: dimensionality of the target network.
        max_candidates: stop after this many; ``None`` enumerates all
            :func:`candidate_space_size` of them.

    Returns:
        ``(candidates, truncated)`` — ``truncated`` is True when the cap
        cut the enumeration short, which downstream census counts must
        surface rather than silently report as full coverage.
    """
    space = itertools.product(*abstract_cycles(n_dims))
    if max_candidates is not None:
        sliced = itertools.islice(space, max_candidates)
        candidates = [frozenset(choice) for choice in sliced]
        truncated = len(candidates) == max_candidates and (
            max_candidates < candidate_space_size(n_dims)
        )
        return candidates, truncated
    return [frozenset(choice) for choice in space], False
