"""Turn-model synthesis: enumerate, certify, and rank routing algorithms.

The paper derives its partially adaptive algorithms by hand: prohibit
the minimum turns to break every abstract cycle (Step 4), check the
survivors, and keep the ones unique up to symmetry.  This package
mechanizes that derivation end to end:

- :mod:`repro.synth.enumeration` — the one-turn-per-cycle candidate
  space (16 sets for a 2D mesh, ``4**(n(n-1))`` in general),
- :mod:`repro.synth.symmetry` — quotient by the signed-permutation
  group, yielding canonical :class:`SymmetryClass` representatives,
- :mod:`repro.synth.certify` — exact deadlock/connectivity/livelock
  proofs through :mod:`repro.verify`,
- :mod:`repro.synth.score` — degree-of-adaptiveness ranking,
- :mod:`repro.synth.compile` — certified winners become runnable
  routers under self-describing ``synth*`` registry names,
- :mod:`repro.synth.engine` — the pipeline; :func:`run_synthesis`
  reproduces the Section 3 census (12 deadlock-free of 16, three
  unique algorithms: west-first, north-last, negative-first),
- :mod:`repro.synth.report` — the census table for ``repro synth``.
"""

from repro.synth.certify import candidate_target, certify_candidates
from repro.synth.compile import (
    compile_candidate,
    rediscovered_algorithms,
    rediscovery_missing,
)
from repro.synth.engine import CandidateOutcome, SynthesisResult, run_synthesis
from repro.synth.enumeration import (
    candidate_space_size,
    enumerate_candidates,
    synthesis_dims,
    turn_model_for,
)
from repro.synth.report import render_synthesis
from repro.synth.score import (
    adaptiveness_score,
    named_restrictions,
    scoring_topology,
)
from repro.synth.spec import (
    SYNTH_SPEC_VERSION,
    SynthSpec,
    default_synth_config,
    normalize_topology_spec,
)
from repro.synth.symmetry import SymmetryClass, classify_candidates, orbit_of

__all__ = [
    "SYNTH_SPEC_VERSION",
    "CandidateOutcome",
    "SymmetryClass",
    "SynthSpec",
    "SynthesisResult",
    "adaptiveness_score",
    "candidate_space_size",
    "candidate_target",
    "certify_candidates",
    "classify_candidates",
    "compile_candidate",
    "default_synth_config",
    "enumerate_candidates",
    "named_restrictions",
    "normalize_topology_spec",
    "orbit_of",
    "rediscovered_algorithms",
    "rediscovery_missing",
    "render_synthesis",
    "run_synthesis",
    "scoring_topology",
    "synthesis_dims",
    "turn_model_for",
]
