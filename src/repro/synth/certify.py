"""Batch certification of enumerated candidates through ``repro.verify``.

Every candidate is wrapped as a nonminimal
:class:`~repro.routing.turn_table.TurnRestrictionRouting` — the router
whose channel dependency graph *is* the turn-induced graph Step 4
validates (every permitted turn at every node is usable) — and fed to
:func:`repro.verify.verify_batch` under the three property proofs:
deadlock freedom (the exact CDG checker with an explicit channel
numbering or a cycle witness), connectivity, and livelock freedom.  A
refutation here is a census *datum*, not an error: the paper's four
deadlocked 2D prohibitions are expected to be refuted, and the checker
producing exactly those four refutations is what reproduces the 12/4
split.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence

from repro.core.restrictions import TurnRestriction
from repro.core.turns import Turn
from repro.routing.synth_names import synth_name
from repro.routing.turn_table import TurnRestrictionRouting
from repro.topology.base import Topology
from repro.verify.report import TargetReport
from repro.verify.suite import PROOF_CHECKERS, VerifyTarget, verify_batch

__all__ = ["candidate_target", "certify_candidates"]


def candidate_target(
    topology: Topology,
    topology_label: str,
    prohibited: FrozenSet[Turn],
) -> VerifyTarget:
    """One candidate as a verify target.

    The router runs in nonminimal mode so its routing CDG mirrors the
    turn-induced dependency graph (a minimal router's CDG is a strict
    subgraph, which could mask a deadlock the turn graph exhibits).  No
    180-degree reversals are granted — Step 6 extends only candidates
    that already certify.
    """
    name = synth_name(topology.n_dims, prohibited)
    restriction = TurnRestriction(topology.n_dims, prohibited, name=name)
    routing = TurnRestrictionRouting(topology, restriction, minimal=False)
    return VerifyTarget(
        label=f"{topology_label}/{name}",
        topology_label=topology_label,
        topology=topology,
        routing=routing,
    )


def certify_candidates(
    topology: Topology,
    topology_label: str,
    candidates: Sequence[FrozenSet[Turn]],
) -> Dict[str, TargetReport]:
    """Certify candidates in one batch, keyed by synthesized name.

    Runs :data:`~repro.verify.PROOF_CHECKERS` only — the analytic
    checks (closed-form adaptiveness, Theorem 1 audit) compare against
    the paper's *named* algorithms and have nothing to say about a
    fresh candidate.
    """
    targets: List[VerifyTarget] = [
        candidate_target(topology, topology_label, prohibited)
        for prohibited in candidates
    ]
    report = verify_batch(targets, PROOF_CHECKERS)
    return {
        synth_name(topology.n_dims, prohibited): target_report
        for prohibited, target_report in zip(candidates, report.targets)
    }
