"""Rank certified candidates by degree of adaptiveness.

The paper's figure of merit for a partially adaptive algorithm is its
degree of adaptiveness ``S``: how many shortest paths it permits per
source-destination pair, normalized by the fully adaptive count
(Sections 3.4 and 4.1).  Candidates are scored by
:func:`repro.core.adaptiveness.average_adaptiveness_ratio` — exhaustive
path counting through the compiled minimal router — on a radix-capped
copy of the target topology: the ratio is a per-pair average whose
ordering is stable across mesh sizes, while exhaustive counting on a
large target mesh would dominate the whole synthesis run.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.core.adaptiveness import average_adaptiveness_ratio
from repro.core.restrictions import (
    TurnRestriction,
    abonf_restriction,
    abopl_restriction,
    negative_first_restriction,
    north_last_restriction,
    west_first_restriction,
)
from repro.core.turns import Turn
from repro.routing.synth_names import synth_name
from repro.routing.turn_table import TurnRestrictionRouting
from repro.topology.base import Topology
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh, Mesh2D

__all__ = ["adaptiveness_score", "named_restrictions", "scoring_topology"]


def scoring_topology(topology: Topology, radix_cap: int) -> Topology:
    """The topology adaptiveness scores are computed on.

    Meshes are shrunk to at most ``radix_cap`` nodes per dimension
    (never below the original radix); hypercubes score as themselves —
    their radix is already 2.
    """
    if isinstance(topology, Hypercube):
        return topology
    assert isinstance(topology, Mesh)
    shape = tuple(min(radix, radix_cap) for radix in topology.shape)
    if shape == tuple(topology.shape):
        return topology
    if len(shape) == 2:
        return Mesh2D(*shape)
    return Mesh(shape)


def adaptiveness_score(
    topology: Topology, prohibited: FrozenSet[Turn]
) -> float:
    """Mean ``S_candidate / S_fully-adaptive`` over all ordered pairs.

    Counts through the compiled *minimal* router — the ``S`` metric is
    about shortest paths, and the minimal router offers exactly the
    permitted distance-decreasing hops.
    """
    name = synth_name(topology.n_dims, prohibited)
    restriction = TurnRestriction(topology.n_dims, prohibited, name=name)
    routing = TurnRestrictionRouting(topology, restriction, minimal=True)
    return average_adaptiveness_ratio(topology, routing.route)


def named_restrictions(n_dims: int) -> Dict[str, TurnRestriction]:
    """The paper's named prohibition sets at this dimensionality.

    The rediscovery check compares each certified symmetry class
    against these: for 2D, west-first, north-last, and negative-first
    (Section 3); for higher dimensions, negative-first and the
    all-but-one families (Section 4.1).  ABONF and ABOPL specialize to
    west-first and north-last at ``n == 2`` and are omitted there.
    """
    if n_dims == 2:
        return {
            "west-first": west_first_restriction(),
            "north-last": north_last_restriction(),
            "negative-first": negative_first_restriction(2),
        }
    return {
        "negative-first": negative_first_restriction(n_dims),
        "abonf": abonf_restriction(n_dims),
        "abopl": abopl_restriction(n_dims),
    }
