"""The synthesis pipeline: enumerate → quotient → certify → score → rank.

:func:`run_synthesis` drives the whole derivation the paper performs by
hand in Section 3:

1. enumerate the one-turn-per-cycle prohibition sets
   (:mod:`repro.synth.enumeration`),
2. quotient them by the mesh's symmetry group
   (:mod:`repro.synth.symmetry`),
3. certify deadlock/connectivity/livelock with the exact checkers
   (:mod:`repro.synth.certify` over :mod:`repro.verify`) — for 2D this
   reproduces the census: 16 candidates, 12 deadlock-free, 4 deadlocked,
4. check which certified classes rediscover the paper's named
   algorithms up to symmetry (:mod:`repro.synth.compile`),
5. score survivors by degree of adaptiveness (:mod:`repro.synth.score`)
   and, when asked, by simulated throughput through the warm
   :class:`~repro.analysis.executor.SweepExecutor`, then rank.

Everything downstream of the spec is deterministic: the enumeration
order, class names, certification verdicts, scores, and — because each
simulated point is fully determined by its
:class:`~repro.analysis.executor.ExperimentSpec` — the per-point result
digests are bit-identical across reruns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.executor import ExperimentSpec, PointSpec, SweepExecutor
from repro.analysis.sweep import SweepPoint
from repro.core.restrictions import turn_to_payload
from repro.sim.digest import result_digest
from repro.synth.certify import certify_candidates
from repro.synth.compile import rediscovered_algorithms, rediscovery_missing
from repro.synth.enumeration import (
    candidate_space_size,
    enumerate_candidates,
    synthesis_dims,
)
from repro.synth.score import adaptiveness_score, scoring_topology
from repro.synth.spec import SynthSpec
from repro.synth.symmetry import SymmetryClass, classify_candidates
from repro.topology.spec import parse_topology, topology_spec
from repro.verify.report import REFUTED, TargetReport

__all__ = ["CandidateOutcome", "SynthesisResult", "run_synthesis"]

#: Progress callback: one short human-readable line per pipeline stage.
Progress = Callable[[str], None]


@dataclass(frozen=True)
class CandidateOutcome:
    """Everything the pipeline established about one symmetry class.

    Attributes:
        name: the class's synthesized canonical name (also the registry
            name its compiled router resolves under).
        members: synthesized names of the enumerated members.
        orbit_size: full orbit size under the symmetry group.
        prohibited: the representative's prohibited turns as payload
            quadruples (JSON-ready).
        deadlock_free: verdict of the exact CDG check.
        certified: whether every property proof passed (deadlock,
            connectivity, livelock).
        rediscovers: the paper algorithm this class is symmetric to,
            or ``None`` for an unnamed shape.
        adaptiveness: mean ``S/S_f`` score; ``None`` for refuted
            classes (a deadlocking candidate has no meaningful degree
            of adaptiveness).
        report: the representative's full certification report.
        simulation: per-load simulated points (``load``, ``digest``,
            ``throughput_flits_per_usec``, ``avg_latency_usec``,
            ``sustainable``); empty when simulation was off or the
            class was refuted.
    """

    name: str
    members: Tuple[str, ...]
    orbit_size: int
    prohibited: Tuple[Tuple[int, int, int, int], ...]
    deadlock_free: bool
    certified: bool
    rediscovers: Optional[str]
    adaptiveness: Optional[float]
    report: TargetReport
    simulation: Tuple[Dict[str, Any], ...] = ()

    @property
    def sustainable_throughput(self) -> float:
        """Best sustainable simulated throughput (0.0 when none)."""
        sustainable = [
            point["throughput_flits_per_usec"]
            for point in self.simulation
            if point["sustainable"]
        ]
        return max(sustainable, default=0.0)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (the per-candidate manifest payload)."""
        return {
            "name": self.name,
            "members": list(self.members),
            "orbit_size": self.orbit_size,
            "prohibited": [list(turn) for turn in self.prohibited],
            "deadlock_free": self.deadlock_free,
            "certified": self.certified,
            "rediscovers": self.rediscovers,
            "adaptiveness": self.adaptiveness,
            "report": self.report.to_dict(),
            "simulation": [dict(point) for point in self.simulation],
        }


@dataclass(frozen=True)
class SynthesisResult:
    """The full outcome of one synthesis run.

    Attributes:
        spec: the spec that ran.
        n_dims: dimensionality synthesized at.
        candidate_space: size of the full Step 4 space.
        enumerated: candidates actually enumerated.
        truncated: whether ``max_candidates`` cut enumeration short
            (census counts then cover a prefix, not the space).
        deadlock_free: enumerated candidates whose class passed the
            exact CDG check — 12 for the full 2D census.
        deadlocked: enumerated candidates refuted — 4 for 2D.
        outcomes: one entry per symmetry class, sorted by name.
        ranked: certified class names, best first — by sustainable
            simulated throughput (when simulation ran), then
            adaptiveness, then name.
        missing_rediscovery: a paper algorithm no class matched
            (``None`` when all were rediscovered; non-``None`` on a
            full enumeration means the pipeline itself is broken).
    """

    spec: SynthSpec
    n_dims: int
    candidate_space: int
    enumerated: int
    truncated: bool
    deadlock_free: int
    deadlocked: int
    outcomes: Tuple[CandidateOutcome, ...]
    ranked: Tuple[str, ...]
    missing_rediscovery: Optional[str]

    @property
    def best(self) -> Optional[CandidateOutcome]:
        """The top-ranked certified class, or ``None`` if all refuted."""
        if not self.ranked:
            return None
        by_name = {outcome.name: outcome for outcome in self.outcomes}
        return by_name[self.ranked[0]]

    def to_payload(self) -> Dict[str, Any]:
        """The ``synth-report.json`` payload (pre-envelope)."""
        return {
            "spec": self.spec.to_dict(),
            "n_dims": self.n_dims,
            "census": {
                "candidate_space": self.candidate_space,
                "enumerated": self.enumerated,
                "truncated": self.truncated,
                "deadlock_free": self.deadlock_free,
                "deadlocked": self.deadlocked,
                "classes": len(self.outcomes),
                "certified_classes": len(self.ranked),
            },
            "ranked": list(self.ranked),
            "missing_rediscovery": self.missing_rediscovery,
            "candidates": [outcome.to_dict() for outcome in self.outcomes],
        }


def _simulate_classes(
    spec: SynthSpec,
    names: List[str],
    executor: Optional[SweepExecutor],
    progress: Optional[Progress],
) -> Dict[str, Tuple[Dict[str, Any], ...]]:
    """Simulate every certified class at every load, digesting results.

    One flat ``run_points`` call so a warm executor batches all the
    points of one class onto one warm ``(topology, routing)`` context.
    """
    points = [
        PointSpec(
            spec=ExperimentSpec(
                topology=spec.topology,
                routing=name,
                pattern=spec.pattern,
                load=load,
                config=spec.config,
                seed=spec.seed,
            ),
            series=name,
            index=index,
        )
        for name in names
        for index, load in enumerate(spec.loads)
    ]
    if progress is not None:
        progress(
            f"simulating {len(names)} certified classes x "
            f"{len(spec.loads)} loads ({len(points)} points)"
        )
    own_executor = executor is None
    live = executor if executor is not None else SweepExecutor(jobs=1)
    try:
        outcomes = live.run_points(points)
    finally:
        if own_executor:
            live.close()
    simulated: Dict[str, List[Dict[str, Any]]] = {name: [] for name in names}
    for outcome in outcomes:
        sweep_point = SweepPoint.from_result(outcome.result)
        simulated[outcome.point.series].append(
            {
                "load": outcome.point.spec.load,
                "digest": result_digest(outcome.result),
                "throughput_flits_per_usec": (
                    sweep_point.throughput_flits_per_usec
                ),
                "avg_latency_usec": sweep_point.avg_latency_usec,
                "sustainable": sweep_point.sustainable,
            }
        )
    return {name: tuple(points) for name, points in simulated.items()}


def run_synthesis(
    spec: SynthSpec,
    executor: Optional[SweepExecutor] = None,
    progress: Optional[Progress] = None,
) -> SynthesisResult:
    """Run the full synthesis pipeline for one spec.

    Args:
        spec: what to synthesize (see :class:`~repro.synth.SynthSpec`).
        executor: executor for simulation ranking; ``None`` builds a
            private serial one when ``spec.simulate`` is set.  Pass a
            warm multi-job executor to parallelize ranking sweeps.
        progress: optional per-stage narration callback.

    Returns:
        The :class:`SynthesisResult`; deterministic for a given spec.
    """
    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    topology = parse_topology(spec.topology)
    topology_label = topology_spec(topology)
    n_dims = synthesis_dims(topology)

    candidates, truncated = enumerate_candidates(n_dims, spec.max_candidates)
    space = candidate_space_size(n_dims)
    say(
        f"enumerated {len(candidates)}/{space} candidates"
        + (" (truncated by --max-candidates)" if truncated else "")
    )

    classes = classify_candidates(candidates, n_dims)
    say(f"{len(classes)} symmetry classes under the {2 ** n_dims}*{n_dims}!-element group")

    if spec.certify_representatives_only:
        reports = certify_candidates(
            topology, topology_label, [cls.representative for cls in classes]
        )
        class_report = {cls.name: reports[cls.name] for cls in classes}
    else:
        # Cross-check mode: certify every enumerated candidate and
        # require symmetric candidates to agree before trusting the
        # class verdict.
        all_reports = certify_candidates(
            topology,
            topology_label,
            [member for cls in classes for member in cls.members],
        )
        class_report = {}
        for cls in classes:
            member_reports = [
                all_reports[name] for name in cls.member_names()
            ]
            verdicts = {report.certified for report in member_reports}
            if len(verdicts) > 1:
                raise RuntimeError(
                    f"symmetry class {cls.name} has members with "
                    "conflicting certification verdicts — the symmetry "
                    "group or the certifier is wrong"
                )
            class_report[cls.name] = all_reports[cls.name]

    def deadlock_free(report: TargetReport) -> bool:
        return all(
            check.verdict != REFUTED
            for check in report.checks
            if check.check == "deadlock-freedom"
        )

    free = sum(
        cls.size for cls in classes if deadlock_free(class_report[cls.name])
    )
    say(
        f"census: {len(candidates)} candidates -> {free} deadlock-free, "
        f"{len(candidates) - free} deadlocked"
    )

    matches = rediscovered_algorithms(
        [cls for cls in classes if class_report[cls.name].certified], n_dims
    )
    missing = rediscovery_missing(matches, n_dims)
    if missing is not None:
        say(f"WARNING: no class rediscovered {missing}")

    score_topology = scoring_topology(topology, spec.score_radix_cap)
    scores: Dict[str, float] = {}
    for cls in classes:
        if class_report[cls.name].certified:
            scores[cls.name] = adaptiveness_score(
                score_topology, cls.representative
            )
    say(
        f"scored {len(scores)} certified classes on "
        f"{topology_spec(score_topology)}"
    )

    certified_names = sorted(scores)
    simulation: Dict[str, Tuple[Dict[str, Any], ...]] = {}
    if spec.simulate and certified_names:
        simulation = _simulate_classes(
            spec, certified_names, executor, progress
        )

    def rank_key(name: str) -> Tuple[float, float, str]:
        sustainable = 0.0
        if name in simulation:
            points = [p for p in simulation[name] if p["sustainable"]]
            sustainable = max(
                (p["throughput_flits_per_usec"] for p in points), default=0.0
            )
        return (-sustainable, -scores[name], name)

    ranked = tuple(sorted(certified_names, key=rank_key))

    outcomes = tuple(
        CandidateOutcome(
            name=cls.name,
            members=tuple(cls.member_names()),
            orbit_size=cls.orbit_size,
            prohibited=tuple(
                tuple(turn_to_payload(turn))
                for turn in sorted(cls.representative)
            ),
            deadlock_free=deadlock_free(class_report[cls.name]),
            certified=class_report[cls.name].certified,
            rediscovers=matches.get(cls.name),
            adaptiveness=scores.get(cls.name),
            report=class_report[cls.name],
            simulation=simulation.get(cls.name, ()),
        )
        for cls in classes
    )

    return SynthesisResult(
        spec=spec,
        n_dims=n_dims,
        candidate_space=space,
        enumerated=len(candidates),
        truncated=truncated,
        deadlock_free=free,
        deadlocked=len(candidates) - free,
        outcomes=outcomes,
        ranked=ranked,
        missing_rediscovery=missing,
    )
