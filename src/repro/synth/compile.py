"""Compile certified candidates into runnable, registry-named routers.

The synthesis pipeline's last hop to executable form: a certified
prohibition set becomes a
:class:`~repro.routing.turn_table.TurnRestrictionRouting` under its
synthesized canonical name (``synth2-nw.sw``).  Because the name is
self-describing, compilation goes through the ordinary registry
(:func:`repro.routing.registry.make_routing`) — the same resolution path
sweep workers take — so a compiled winner is guaranteed to rebuild
identically in any process that sees its name.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Sequence

from repro.core.turns import Turn
from repro.routing.registry import make_routing
from repro.routing.synth_names import synth_name
from repro.routing.turn_table import TurnRestrictionRouting
from repro.synth.score import named_restrictions
from repro.synth.symmetry import SymmetryClass
from repro.topology.base import Topology

__all__ = [
    "compile_candidate",
    "rediscovered_algorithms",
    "rediscovery_missing",
]


def compile_candidate(
    topology: Topology,
    prohibited: FrozenSet[Turn],
    minimal: bool = True,
) -> TurnRestrictionRouting:
    """Build the runnable router a certified candidate describes.

    Resolution goes through the registry by synthesized name rather
    than constructing directly, so compiling here and resolving in a
    sweep worker are provably the same code path.
    """
    name = synth_name(topology.n_dims, prohibited, minimal=minimal)
    routing = make_routing(name, topology)
    assert isinstance(routing, TurnRestrictionRouting)
    return routing


def rediscovered_algorithms(
    classes: Sequence[SymmetryClass], n_dims: int
) -> Dict[str, str]:
    """Map class names to the paper algorithms they are equivalent to.

    A class rediscovers a named algorithm when the algorithm's
    prohibited-turn set lies in the class's symmetry orbit — the
    "unique up to symmetry" sense in which Section 3 counts three
    algorithms among twelve survivors.  Classes matching nothing are
    absent from the map (for 2D there is exactly one such deadlock-free
    shape: none, all three free classes are named).
    """
    named = named_restrictions(n_dims)
    matches: Dict[str, str] = {}
    for cls in classes:
        for paper_name, restriction in named.items():
            if cls.contains(restriction.prohibited):
                matches[cls.name] = paper_name
                break
    return matches


def rediscovery_missing(
    matches: Dict[str, str], n_dims: int
) -> Optional[str]:
    """The first paper algorithm no class rediscovered, or ``None``.

    A full (untruncated) enumeration must rediscover every named
    algorithm; the engine surfaces a miss loudly instead of shipping a
    census that silently lost west-first.
    """
    found = set(matches.values())
    for paper_name in named_restrictions(n_dims):
        if paper_name not in found:
            return paper_name
    return None
