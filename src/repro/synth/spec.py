"""The frozen, hashable description of one synthesis run.

A :class:`SynthSpec` is to ``repro synth`` what
:class:`~repro.analysis.executor.ExperimentSpec` is to ``repro sweep``:
pure primitives, canonicalized on construction, serializable both ways,
and content-hashable — so synthesis artifacts carry a ``spec_hash`` that
pins exactly which run produced them, and re-running the same spec is
detectable as such.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.analysis.executor import ConfigSpec
from repro.routing.registry import canonical_name

__all__ = [
    "SYNTH_SPEC_VERSION",
    "SynthSpec",
    "default_synth_config",
    "normalize_topology_spec",
]

#: Version tag mixed into every synthesis content hash.  Bump when the
#: pipeline's semantics change in a way that invalidates old artifacts.
SYNTH_SPEC_VERSION = 1

#: ``mesh4x4`` → (``mesh``, ``4x4``): a spec string whose colon was
#: dropped, as the paper-style shorthand writes it.
_COLONLESS_RE = re.compile(r"^(mesh|cube|torus|hex|oct)([0-9].*)$")


def normalize_topology_spec(spec: str) -> str:
    """Canonicalize a topology spec, accepting the colonless shorthand.

    ``"mesh4x4"``, ``" Mesh:4x4 "``, and ``"mesh:4x4"`` all normalize to
    ``"mesh:4x4"`` — the form :func:`repro.topology.spec.parse_topology`
    parses.  Strings that match neither form pass through stripped and
    lowercased; the parser reports them properly.
    """
    cleaned = spec.strip().lower()
    match = _COLONLESS_RE.match(cleaned)
    if match is not None:
        return f"{match.group(1)}:{match.group(2)}"
    return cleaned


def default_synth_config() -> ConfigSpec:
    """The quick simulation windows synthesis ranking defaults to.

    Ranking only needs relative order among a handful of candidates, so
    the windows are a fraction of a paper-figure sweep's — but the
    measurement window must stay long enough for the sustainability
    check's acceptance-ratio guard to settle (a few dozen packets at
    light load); shorter windows misreport light loads as saturated.
    The spec's ``config`` field accepts any :class:`ConfigSpec` when
    fidelity matters.
    """
    return ConfigSpec(
        warmup_cycles=1_000, measure_cycles=5_000, drain_cycles=2_000
    )


@dataclass(frozen=True)
class SynthSpec:
    """One synthesis run as pure data.

    Attributes:
        topology: target topology spec string (``"mesh:4x4"``; the
            colonless shorthand ``"mesh4x4"`` is accepted).
        max_candidates: cap on enumerated candidates; ``None`` enumerates
            the full ``4 ** (n (n-1))`` space (16 for 2D — only small
            ``n`` is exhaustively enumerable).
        certify_representatives_only: certify one representative per
            symmetry class and let members inherit the verdict (the
            quotient the turn model itself takes); ``False`` certifies
            every enumerated candidate individually, as a cross-check.
        simulate: also rank certified candidates by simulated throughput
            through the warm :class:`~repro.api.SweepExecutor`.
        pattern: traffic pattern registry name for simulation ranking.
        loads: offered loads simulated per candidate.
        seed: workload RNG seed for simulation ranking.
        config: simulator configuration for ranking runs.
        score_radix_cap: per-dimension radix cap of the mesh the
            adaptiveness score is computed on (path counting is
            exhaustive over node pairs, so scoring a 16x16 target mesh
            directly would dominate the run without changing the order).
    """

    topology: str = "mesh:4x4"
    max_candidates: Optional[int] = None
    certify_representatives_only: bool = True
    simulate: bool = False
    pattern: str = "uniform"
    loads: Tuple[float, ...] = (0.1, 0.2, 0.3)
    seed: int = 1
    config: ConfigSpec = field(default_factory=default_synth_config)
    score_radix_cap: int = 6

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "topology", normalize_topology_spec(self.topology)
        )
        object.__setattr__(self, "pattern", canonical_name(self.pattern))
        object.__setattr__(
            self, "loads", tuple(float(load) for load in self.loads)
        )
        if self.max_candidates is not None and self.max_candidates < 1:
            raise ValueError(
                f"max_candidates must be >= 1 or None: {self.max_candidates}"
            )
        if self.score_radix_cap < 2:
            raise ValueError(
                f"score_radix_cap must be >= 2: {self.score_radix_cap}"
            )
        if not self.loads:
            raise ValueError("loads must be non-empty")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict; inverse of :meth:`from_dict`."""
        payload = dataclasses.asdict(self)
        payload["loads"] = list(self.loads)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SynthSpec":
        """Rebuild a spec saved by :meth:`to_dict`."""
        data = dict(payload)
        config = data.get("config")
        if config is not None:
            data["config"] = ConfigSpec(**config)
        data["loads"] = tuple(data.get("loads", ()))
        return cls(**data)

    def canonical_json(self) -> str:
        """A canonical serialization: stable key order, no whitespace."""
        payload = {"version": SYNTH_SPEC_VERSION, "spec": self.to_dict()}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """SHA-256 of the canonical serialization (stable across runs)."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()
