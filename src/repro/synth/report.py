"""Human-readable rendering of a synthesis run.

The JSON artifact (:meth:`~repro.synth.engine.SynthesisResult.to_payload`
under an :mod:`repro.obs` envelope) is the machine-readable record; this
module renders the same result as the census table the paper derives in
Section 3 — one row per symmetry class with its verdicts, rediscovery
label, and scores — for the ``repro synth`` terminal output.
"""

from __future__ import annotations

from typing import List

from repro.synth.engine import CandidateOutcome, SynthesisResult

__all__ = ["render_synthesis"]


def _class_row(outcome: CandidateOutcome, rank: int) -> str:
    """One census-table row for a symmetry class."""
    if not outcome.deadlock_free:
        verdict = "DEADLOCK"
    elif not outcome.certified:
        verdict = "REFUTED"
    else:
        verdict = "certified"
    rediscovers = outcome.rediscovers or "-"
    adaptiveness = (
        f"{outcome.adaptiveness:.4f}" if outcome.adaptiveness is not None else "-"
    )
    shown_rank = f"#{rank}" if rank else "-"
    row = (
        f"  {shown_rank:>3}  {outcome.name:<24} x{len(outcome.members):<3}"
        f" {verdict:<9} {rediscovers:<14} S/Sf={adaptiveness}"
    )
    if outcome.simulation:
        row += f" thr={outcome.sustainable_throughput:.3f}"
    return row


def render_synthesis(result: SynthesisResult) -> str:
    """Render one synthesis run as a census table plus summary lines."""
    lines: List[str] = []
    lines.append(
        f"synthesis on {result.spec.topology} "
        f"({result.n_dims}D, candidate space {result.candidate_space})"
    )
    truncated = " (TRUNCATED)" if result.truncated else ""
    lines.append(
        f"census: {result.enumerated} enumerated{truncated} -> "
        f"{result.deadlock_free} deadlock-free, "
        f"{result.deadlocked} deadlocked, "
        f"{len(result.outcomes)} symmetry classes "
        f"({len(result.ranked)} certified)"
    )
    lines.append("")
    rank_of = {name: i + 1 for i, name in enumerate(result.ranked)}
    for outcome in result.outcomes:
        lines.append(_class_row(outcome, rank_of.get(outcome.name, 0)))
    lines.append("")
    if result.missing_rediscovery is not None:
        lines.append(
            f"WARNING: {result.missing_rediscovery} was not rediscovered"
            + (" (enumeration truncated)" if result.truncated else "")
        )
    best = result.best
    if best is not None:
        label = f" (= {best.rediscovers})" if best.rediscovers else ""
        lines.append(f"best: {best.name}{label}")
    else:
        lines.append("best: none certified")
    return "\n".join(lines)
