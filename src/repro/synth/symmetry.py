"""Quotient the candidate space by the topology's symmetry group.

Section 3 reduces the twelve deadlock-free 2D prohibitions to three
unique algorithms "when the symmetries of the mesh are taken into
account"; this module performs that reduction for any dimensionality
using the signed-permutation group (``2**n n!`` relabellings — the
dihedral group D4 when ``n == 2``).  Every candidate's orbit is computed
once, enumerated candidates falling in the same orbit share one
:class:`SymmetryClass`, and each class is named after its
lexicographically smallest member's synthesized name — a deterministic
canonical representative, so certification work is done once per class
instead of once per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.core.model import apply_symmetry, signed_permutation_symmetries
from repro.core.turns import Turn
from repro.routing.synth_names import synth_name

__all__ = ["SymmetryClass", "classify_candidates", "orbit_of"]


def orbit_of(
    prohibited: FrozenSet[Turn], n_dims: int
) -> FrozenSet[FrozenSet[Turn]]:
    """Every relabelling of a prohibition set under the symmetry group."""
    return frozenset(
        apply_symmetry(symmetry, prohibited)
        for symmetry in signed_permutation_symmetries(n_dims)
    )


@dataclass(frozen=True)
class SymmetryClass:
    """One equivalence class of enumerated candidates.

    Attributes:
        name: the synthesized name of the canonical representative —
            the lexicographically smallest member name, so the same
            class always gets the same label.
        n_dims: dimensionality the class lives in.
        members: the *enumerated* candidates in the orbit, sorted by
            synthesized name (a truncated enumeration may hold only part
            of the orbit).
        orbit_size: size of the full orbit under the symmetry group,
            whether or not every orbit element was enumerated.
    """

    name: str
    n_dims: int
    members: Tuple[FrozenSet[Turn], ...]
    orbit_size: int

    @property
    def representative(self) -> FrozenSet[Turn]:
        """The canonical member (the one the class is named after)."""
        return self.members[0]

    @property
    def size(self) -> int:
        """How many enumerated candidates the class accounts for."""
        return len(self.members)

    def member_names(self) -> List[str]:
        """The synthesized names of the enumerated members, in order."""
        return [synth_name(self.n_dims, member) for member in self.members]

    def contains(self, prohibited: FrozenSet[Turn]) -> bool:
        """Whether a prohibition set is equivalent to this class.

        Checks the *full* orbit, not just the enumerated members, so a
        named algorithm is rediscovered even when the enumeration was
        truncated before its exact turn set appeared.
        """
        return prohibited in orbit_of(self.representative, self.n_dims)


def classify_candidates(
    candidates: Iterable[FrozenSet[Turn]], n_dims: int
) -> List[SymmetryClass]:
    """Group candidates into symmetry classes, sorted by class name.

    Each orbit is computed once (for its first-seen member) and reused
    for every later member that hashes into it, so classification is
    ``O(candidates + classes * |group|)``.
    """
    orbits: List[FrozenSet[FrozenSet[Turn]]] = []
    orbit_members: Dict[int, List[FrozenSet[Turn]]] = {}
    index_of: Dict[FrozenSet[Turn], int] = {}
    for candidate in candidates:
        index = index_of.get(candidate)
        if index is None:
            orbit = orbit_of(candidate, n_dims)
            index = len(orbits)
            orbits.append(orbit)
            for element in orbit:
                index_of[element] = index
            orbit_members[index] = []
        orbit_members[index].append(candidate)
    classes = []
    for index, orbit in enumerate(orbits):
        members = sorted(
            set(orbit_members[index]),
            key=lambda member: synth_name(n_dims, member),
        )
        classes.append(
            SymmetryClass(
                name=synth_name(n_dims, members[0]),
                n_dims=n_dims,
                members=tuple(members),
                orbit_size=len(orbit),
            )
        )
    return sorted(classes, key=lambda cls: cls.name)
