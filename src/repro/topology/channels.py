"""Nodes and directed channels of a direct network.

A node is identified by its coordinate tuple, as in the paper's formal
definition of an n-dimensional mesh.  A *channel* is a unidirectional link
from one router to a neighboring router; the paper's networks connect each
pair of neighbors with a pair of unidirectional channels (Section 6).

Each channel carries the virtual *direction* in which it routes packets
(Step 1 of the turn model partitions channels by this direction).  For
wraparound channels of a k-ary n-cube the classification is a routing-policy
choice — Section 4.2 classifies the wraparound channel leaving the east edge
as a channel *to the west* — so the direction stored on a wraparound channel
is the virtual direction assigned by the topology builder, not necessarily
the sign of the coordinate arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.directions import Direction

__all__ = ["NodeId", "Channel"]

#: A node identifier: the node's coordinate tuple.
NodeId = Tuple[int, ...]


@dataclass(frozen=True, order=True)
class Channel:
    """A unidirectional channel from ``src`` to ``dst``.

    Attributes:
        src: coordinates of the router the channel leaves.
        dst: coordinates of the router the channel enters.
        direction: the virtual direction in which the channel routes
            packets (used to classify turns).
        wraparound: whether this is a torus wraparound channel.  The turn
            model handles wraparound channels separately (Step 5).
        lane: virtual-channel index.  Plain topologies use lane 0; a
            :class:`~repro.topology.virtual.VirtualChannelTopology`
            multiplexes several lanes onto each physical channel, which
            then share the physical bandwidth (Section 1's virtual
            channels).
    """

    src: NodeId
    dst: NodeId
    direction: Direction
    wraparound: bool = False
    lane: int = 0

    def __post_init__(self) -> None:
        # Channels key the simulator's hot dicts (channel states, route
        # cache), so their hash is computed millions of times per run.
        # Cache it — with the exact value the frozen dataclass would
        # generate (the hash of the field tuple), so hash-ordered
        # containers iterate identically with or without the cache.
        object.__setattr__(
            self,
            "_hash",
            # repro-lint: allow[hash-stability] int-tuple node ids, int-backed Direction, bool, int — all PYTHONHASHSEED-independent
            hash((self.src, self.dst, self.direction, self.wraparound, self.lane)),
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @property
    def physical(self) -> Tuple[NodeId, NodeId]:
        """The physical link this channel occupies (shared across lanes)."""
        return (self.src, self.dst)

    def __str__(self) -> str:
        wrap = "~" if self.wraparound else ""
        lane = f"#{self.lane}" if self.lane else ""
        return f"{self.src}{wrap}->{self.dst}{lane}"
