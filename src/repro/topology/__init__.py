"""Network topologies: n-dimensional meshes, k-ary n-cubes, hypercubes."""

from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId
from repro.topology.faults import FaultyTopology, random_channel_faults
from repro.topology.hexagonal import HexMesh
from repro.topology.octagonal import OctMesh
from repro.topology.hypercube import Hypercube, bits_to_node, node_to_bits
from repro.topology.mesh import Mesh, Mesh2D
from repro.topology.spec import parse_topology, topology_spec
from repro.topology.torus import Torus
from repro.topology.virtual import VirtualChannelTopology

__all__ = [
    "Topology",
    "parse_topology",
    "topology_spec",
    "Channel",
    "NodeId",
    "FaultyTopology",
    "random_channel_faults",
    "HexMesh",
    "OctMesh",
    "Mesh",
    "Mesh2D",
    "Torus",
    "VirtualChannelTopology",
    "Hypercube",
    "node_to_bits",
    "bits_to_node",
]
