"""n-dimensional mesh topology.

An n-dimensional mesh has ``k_0 x k_1 x ... x k_{n-1}`` nodes; two nodes are
neighbors when their coordinates agree in every dimension but one, where
they differ by exactly 1 (paper, Section 1).  Each pair of neighbors is
joined by a pair of unidirectional channels.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Iterable, Sequence

from repro.core.directions import Direction
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId

__all__ = ["Mesh", "Mesh2D"]


class Mesh(Topology):
    """An n-dimensional mesh with per-dimension radixes ``shape``."""

    def __init__(self, shape: Sequence[int]):
        shape = tuple(int(k) for k in shape)
        if not shape:
            raise ValueError("a mesh needs at least one dimension")
        if any(k < 2 for k in shape):
            raise ValueError(f"every dimension needs k >= 2, got shape {shape}")
        self._shape = shape

    @property
    def n_dims(self) -> int:
        return len(self._shape)

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    def nodes(self) -> Iterable[NodeId]:
        return itertools.product(*(range(k) for k in self._shape))

    def out_channels(self, node: NodeId) -> Sequence[Channel]:
        self.validate_node(node)
        return self._out_channels_cached(node)

    @lru_cache(maxsize=None)
    def _out_channels_cached(self, node: NodeId) -> tuple[Channel, ...]:
        channels = []
        for dim, k in enumerate(self._shape):
            for sign in (-1, 1):
                coord = node[dim] + sign
                if 0 <= coord < k:
                    dst = node[:dim] + (coord,) + node[dim + 1 :]
                    channels.append(Channel(node, dst, Direction(dim, sign)))
        return tuple(channels)

    def distance(self, src: NodeId, dst: NodeId) -> int:
        self.validate_node(src)
        self.validate_node(dst)
        return sum(abs(d - s) for s, d in zip(src, dst))


class Mesh2D(Mesh):
    """A 2D mesh of ``m`` columns (x, dimension 0) by ``n`` rows (y).

    Convenience subclass matching the paper's 2D terminology: dimension 0
    is x (west/east) and dimension 1 is y (south/north).
    """

    def __init__(self, m: int, n: int):
        super().__init__((m, n))

    @property
    def m(self) -> int:
        """Number of nodes along x (dimension 0)."""
        return self.shape[0]

    @property
    def n(self) -> int:
        """Number of nodes along y (dimension 1)."""
        return self.shape[1]
