"""Channel-fault injection.

The paper motivates nonminimal routing with fault tolerance: adaptiveness
"provides alternative paths for packets that encounter ... faulty
hardware" (Section 1).  :class:`FaultyTopology` wraps any topology and
removes a set of failed channels; the nonminimal turn-table router's
reachability oracle then automatically steers packets around the faults,
while minimal algorithms lose connectivity — the contrast the
fault-tolerance benchmark measures.

``distance`` and ``minimal_directions`` still report the healthy
topology's values: a packet's *minimal* hop count is a property of the
intact network, and detours around faults are accounted as nonminimal
hops (which is how the paper frames fault tolerance).
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterable, Sequence

from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId

__all__ = ["FaultyTopology", "random_channel_faults"]


class FaultyTopology(Topology):
    """A topology with some channels failed (removed).

    Args:
        base: the healthy topology.
        failed: the channels considered dead.  Channels must belong to
            ``base``; a fault applies to one unidirectional channel (fail
            both directions explicitly for a broken link).
    """

    def __init__(self, base: Topology, failed: Iterable[Channel]):
        self.base = base
        self.failed: FrozenSet[Channel] = frozenset(failed)
        known = set(base.channels())
        unknown = self.failed - known
        if unknown:
            raise ValueError(f"channels not in the base topology: {unknown}")

    @property
    def n_dims(self) -> int:
        return self.base.n_dims

    @property
    def shape(self) -> tuple[int, ...]:
        return self.base.shape

    def nodes(self):
        return self.base.nodes()

    def out_channels(self, node: NodeId) -> Sequence[Channel]:
        return tuple(
            ch for ch in self.base.out_channels(node) if ch not in self.failed
        )

    def distance(self, src: NodeId, dst: NodeId) -> int:
        return self.base.distance(src, dst)

    def __repr__(self) -> str:
        return f"FaultyTopology({self.base!r}, {len(self.failed)} failed)"


def random_channel_faults(
    topology: Topology,
    count: int,
    seed: int = 0,
    spare_local: bool = True,
) -> FaultyTopology:
    """Fail ``count`` channels chosen uniformly at random.

    Args:
        topology: the healthy topology.
        count: number of unidirectional channels to fail.
        seed: RNG seed, for reproducible fault sets.
        spare_local: unused placeholder for symmetry with simulators that
            model local-channel faults; injection/ejection channels are
            not part of the topology and are never failed here.

    Returns:
        The faulty topology.
    """
    channels = topology.channels()
    if count > len(channels):
        raise ValueError(
            f"cannot fail {count} of {len(channels)} channels"
        )
    rng = random.Random(seed)
    failed = rng.sample(channels, count)
    return FaultyTopology(topology, failed)
