"""Channel-fault injection.

The paper motivates nonminimal routing with fault tolerance: adaptiveness
"provides alternative paths for packets that encounter ... faulty
hardware" (Section 1).  :class:`FaultyTopology` wraps any topology and
removes a set of failed channels; the nonminimal turn-table router's
reachability oracle then automatically steers packets around the faults,
while minimal algorithms lose connectivity — the contrast the
fault-tolerance benchmark measures.

``distance`` and ``minimal_directions`` still report the healthy
topology's values: a packet's *minimal* hop count is a property of the
intact network, and detours around faults are accounted as nonminimal
hops (which is how the paper frames fault tolerance).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Sequence

from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId

__all__ = [
    "FaultyTopology",
    "is_strongly_connected",
    "random_channel_faults",
    "sample_fault_channels",
]


class FaultyTopology(Topology):
    """A topology with some channels failed (removed).

    Args:
        base: the healthy topology.
        failed: the channels considered dead.  Channels must belong to
            ``base``; a fault applies to one unidirectional channel (fail
            both directions explicitly for a broken link).
    """

    def __init__(self, base: Topology, failed: Iterable[Channel]):
        self.base = base
        self.failed: FrozenSet[Channel] = frozenset(failed)
        known = set(base.channels())
        unknown = self.failed - known
        if unknown:
            raise ValueError(f"channels not in the base topology: {unknown}")

    @property
    def n_dims(self) -> int:
        return self.base.n_dims

    @property
    def shape(self) -> tuple[int, ...]:
        return self.base.shape

    def nodes(self):
        return self.base.nodes()

    def out_channels(self, node: NodeId) -> Sequence[Channel]:
        return tuple(
            ch for ch in self.base.out_channels(node) if ch not in self.failed
        )

    def distance(self, src: NodeId, dst: NodeId) -> int:
        return self.base.distance(src, dst)

    def __repr__(self) -> str:
        return f"FaultyTopology({self.base!r}, {len(self.failed)} failed)"


def is_strongly_connected(topology: Topology) -> bool:
    """Whether every node can still reach every other node.

    Strong connectivity of the directed channel graph: one forward BFS
    from an arbitrary root plus one BFS over the reversed graph — the
    root reaches everyone and everyone reaches the root iff the graph is
    strongly connected.
    """
    nodes = list(topology.nodes())
    if len(nodes) <= 1:
        return True
    forward: Dict[NodeId, List[NodeId]] = {node: [] for node in nodes}
    reverse: Dict[NodeId, List[NodeId]] = {node: [] for node in nodes}
    for node in nodes:
        for channel in topology.out_channels(node):
            forward[node].append(channel.dst)
            reverse[channel.dst].append(node)
    root = nodes[0]
    for adjacency in (forward, reverse):
        seen = {root}
        frontier = deque((root,))
        while frontier:
            here = frontier.popleft()
            for neighbor in adjacency[here]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        if len(seen) != len(nodes):
            return False
    return True


def sample_fault_channels(
    topology: Topology,
    count: int,
    rng: random.Random,
    require_connected: bool = False,
    max_attempts: int = 20,
) -> List[Channel]:
    """Draw ``count`` distinct channels to fail, in sampling order.

    The shared sampling core of :func:`random_channel_faults` and
    :meth:`repro.resilience.FaultSchedule.random`: the first draw is
    exactly ``rng.sample(channels, count)``, so adding the connectivity
    option did not change any previously recorded fault set.

    Args:
        topology: the healthy topology.
        count: number of unidirectional channels to fail.
        rng: the (already seeded) random stream to draw from.
        require_connected: resample until the surviving network is
            strongly connected.
        max_attempts: bound on resampling before giving up.

    Raises:
        ValueError: when ``count`` exceeds the channel count, or when no
            connected sample is found within ``max_attempts`` draws.
    """
    channels = topology.channels()
    if count > len(channels):
        raise ValueError(f"cannot fail {count} of {len(channels)} channels")
    for _ in range(max(1, max_attempts)):
        failed = rng.sample(channels, count)
        if not require_connected:
            return failed
        if is_strongly_connected(FaultyTopology(topology, failed)):
            return failed
    raise ValueError(
        f"no sample of {count} channel faults left {topology!r} strongly "
        f"connected within {max_attempts} attempts; lower the fault count "
        "or pass require_connected=False"
    )


def random_channel_faults(
    topology: Topology,
    count: int,
    seed: int = 0,
    spare_local: bool = True,
    require_connected: bool = False,
    max_attempts: int = 20,
) -> FaultyTopology:
    """Fail ``count`` channels chosen uniformly at random.

    Args:
        topology: the healthy topology.
        count: number of unidirectional channels to fail.
        seed: RNG seed, for reproducible fault sets.
        spare_local: unused placeholder for symmetry with simulators that
            model local-channel faults; injection/ejection channels are
            not part of the topology and are never failed here.
        require_connected: resample (up to ``max_attempts`` draws) until
            the degraded network is strongly connected, and raise a
            :class:`ValueError` when no such sample is found.  Off by
            default: a disconnecting fault set is itself a measurement
            (the fault-tolerance sweep counts unroutable pairs), and the
            historical fault sets for a given seed stay identical.
        max_attempts: resampling bound used with ``require_connected``.

    Returns:
        The faulty topology.
    """
    rng = random.Random(seed)
    failed = sample_fault_channels(
        topology,
        count,
        rng,
        require_connected=require_connected,
        max_attempts=max_attempts,
    )
    return FaultyTopology(topology, failed)
