"""k-ary n-cube (torus) topology.

A k-ary n-cube is an n-dimensional mesh with modular neighbor arithmetic:
the change to ``mod k`` adds wraparound channels, giving the network
symmetry (paper, Section 1).  Following Section 4.2, each wraparound
channel is classified by the virtual direction in which it routes packets:
the wraparound channel leaving the east edge (coordinate ``k-1``) lands on
the west edge (coordinate ``0``) and is a channel *to the west* (negative
direction); its partner leaving the west edge is a channel to the east
(positive direction).
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Iterable, Sequence

from repro.core.directions import Direction
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId

__all__ = ["Torus"]


class Torus(Topology):
    """A k-ary n-cube: ``n`` dimensions of radix ``k``.

    Args:
        k: radix of every dimension; must be at least 3 (use
            :class:`~repro.topology.hypercube.Hypercube` for ``k == 2``,
            where the two ring channels of a dimension collapse into a
            single neighbor pair).
        n: number of dimensions.
    """

    def __init__(self, k: int, n: int):
        if k < 3:
            raise ValueError(
                f"a torus needs k >= 3 (got k={k}); use Hypercube for k=2"
            )
        if n < 1:
            raise ValueError(f"a torus needs n >= 1 dimensions, got {n}")
        self._k = k
        self._n = n

    @property
    def k(self) -> int:
        """Radix of each dimension."""
        return self._k

    @property
    def n_dims(self) -> int:
        return self._n

    @property
    def shape(self) -> tuple[int, ...]:
        return (self._k,) * self._n

    def nodes(self) -> Iterable[NodeId]:
        return itertools.product(range(self._k), repeat=self._n)

    def out_channels(self, node: NodeId) -> Sequence[Channel]:
        self.validate_node(node)
        return self._out_channels_cached(node)

    @lru_cache(maxsize=None)
    def _out_channels_cached(self, node: NodeId) -> tuple[Channel, ...]:
        channels = []
        k = self._k
        for dim in range(self._n):
            coord = node[dim]
            for sign in (-1, 1):
                neighbor_coord = coord + sign
                if 0 <= neighbor_coord < k:
                    dst = node[:dim] + (neighbor_coord,) + node[dim + 1 :]
                    channels.append(Channel(node, dst, Direction(dim, sign)))
            # Wraparound channels, classified per Section 4.2: the channel
            # leaving the edge node lands on the opposite edge and routes
            # packets back across the mesh, so it takes the direction that
            # points from its source edge toward its destination edge.
            if coord == k - 1:
                dst = node[:dim] + (0,) + node[dim + 1 :]
                channels.append(
                    Channel(node, dst, Direction(dim, -1), wraparound=True)
                )
            if coord == 0:
                dst = node[:dim] + (k - 1,) + node[dim + 1 :]
                channels.append(
                    Channel(node, dst, Direction(dim, 1), wraparound=True)
                )
        return tuple(channels)

    def distance(self, src: NodeId, dst: NodeId) -> int:
        self.validate_node(src)
        self.validate_node(dst)
        k = self._k
        return sum(min(abs(d - s), k - abs(d - s)) for s, d in zip(src, dst))

    def ring_offset(self, src_coord: int, dst_coord: int) -> int:
        """Signed shortest displacement from one ring coordinate to another.

        Positive means the short way around is toward higher coordinates.
        When the two ways are equally long (``k`` even, half-way apart),
        the positive way is reported.
        """
        delta = (dst_coord - src_coord) % self._k
        if delta <= self._k - delta:
            return delta
        return delta - self._k
