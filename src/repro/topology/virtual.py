"""Virtual channels: several lanes multiplexed onto each physical channel.

Adding a virtual channel to a physical channel "involves adding buffer
space and control logic to the two routers at the ends ... It also reduces
the bandwidths of the virtual channels already sharing the physical
channel" (Section 1).  :class:`VirtualChannelTopology` models exactly
that: every network channel of the base topology becomes ``lanes``
channels distinguished by their ``lane`` index, each with its own buffer
and wormhole ownership, while the simulator limits the *physical* link to
one flit per cycle across all its lanes.

This is the substrate for the algorithms the paper contrasts itself with:
deadlock-free *minimal* routing on k-ary n-cubes (impossible without
extra channels — Section 4.2) becomes possible with two lanes and the
dateline discipline, and a 2D mesh with two lanes supports fully adaptive
lane-split routing (see :mod:`repro.routing.virtual_channels`).
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from typing import Sequence

from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId

__all__ = ["VirtualChannelTopology"]


class VirtualChannelTopology(Topology):
    """A topology whose every network channel carries ``lanes`` lanes.

    Args:
        base: the physical topology.
        lanes: virtual channels per physical channel; at least 1.
    """

    def __init__(self, base: Topology, lanes: int):
        if lanes < 1:
            raise ValueError(f"need at least one lane, got {lanes}")
        if any(ch.lane != 0 for ch in base.channels()):
            raise ValueError("the base topology already has virtual lanes")
        self.base = base
        self.lanes = lanes

    @property
    def n_dims(self) -> int:
        return self.base.n_dims

    @property
    def shape(self) -> tuple[int, ...]:
        return self.base.shape

    def nodes(self):
        return self.base.nodes()

    def out_channels(self, node: NodeId) -> Sequence[Channel]:
        return self._out_channels_cached(node)

    @lru_cache(maxsize=None)
    def _out_channels_cached(self, node: NodeId) -> tuple[Channel, ...]:
        return tuple(
            replace(channel, lane=lane)
            for channel in self.base.out_channels(node)
            for lane in range(self.lanes)
        )

    def distance(self, src: NodeId, dst: NodeId) -> int:
        return self.base.distance(src, dst)

    def lane_of(self, channel: Channel, lane: int) -> Channel:
        """The sibling of ``channel`` in the given lane."""
        if not 0 <= lane < self.lanes:
            raise ValueError(f"lane {lane} out of range 0..{self.lanes - 1}")
        return replace(channel, lane=lane)

    def __repr__(self) -> str:
        return f"VirtualChannelTopology({self.base!r}, lanes={self.lanes})"
