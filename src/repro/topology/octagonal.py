"""Octagonal mesh topology (the paper's Section 7 future work).

An octagonal mesh adds both diagonals to the 2D mesh: interior nodes have
eight neighbors — the four compass directions plus the ``w`` diagonal
(dimension 2, ``+w`` moves ``(+1, +1)``) and the ``v`` anti-diagonal
(dimension 3, ``+v`` moves ``(+1, -1)``).  Distances follow the king-move
(Chebyshev) metric.

The coordinate-sum potential behind the negative-first proof no longer
separates the directions (``+v`` leaves the sum unchanged), but the
lexicographic potential ``phi = n*a + b`` does: every ``+`` direction
under this module's sign convention strictly increases ``phi`` and every
``-`` direction strictly decreases it, so the Theorem 5 argument — and
the octagonal negative-first algorithm built on it in
:mod:`repro.routing.oct_routing` — carries over.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Iterable, Sequence

from repro.core.directions import Direction
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId

__all__ = ["OctMesh", "V_AXIS"]

#: The same-sign diagonal axis: +w moves (+1, +1).
W_AXIS = 2
#: The anti-diagonal axis: +v moves (+1, -1) (sign follows the a axis).
V_AXIS = 3


class OctMesh(Topology):
    """An ``m x n`` octagonal (king-move) mesh."""

    def __init__(self, m: int, n: int):
        if m < 2 or n < 2:
            raise ValueError(f"an octagonal mesh needs m, n >= 2, got {m}x{n}")
        self._shape = (m, n)

    @property
    def n_dims(self) -> int:
        return 2

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def axis_count(self) -> int:
        """Movement axes: a, b, the diagonal w, and the anti-diagonal v."""
        return 4

    def nodes(self) -> Iterable[NodeId]:
        return itertools.product(range(self._shape[0]), range(self._shape[1]))

    def out_channels(self, node: NodeId) -> Sequence[Channel]:
        self.validate_node(node)
        return self._out_channels_cached(node)

    @lru_cache(maxsize=None)
    def _out_channels_cached(self, node: NodeId) -> tuple[Channel, ...]:
        a, b = node
        m, n = self._shape
        channels = []
        if a > 0:
            channels.append(Channel(node, (a - 1, b), Direction(0, -1)))
        if a + 1 < m:
            channels.append(Channel(node, (a + 1, b), Direction(0, 1)))
        if b > 0:
            channels.append(Channel(node, (a, b - 1), Direction(1, -1)))
        if b + 1 < n:
            channels.append(Channel(node, (a, b + 1), Direction(1, 1)))
        if a > 0 and b > 0:
            channels.append(Channel(node, (a - 1, b - 1), Direction(W_AXIS, -1)))
        if a + 1 < m and b + 1 < n:
            channels.append(Channel(node, (a + 1, b + 1), Direction(W_AXIS, 1)))
        if a + 1 < m and b > 0:
            channels.append(Channel(node, (a + 1, b - 1), Direction(V_AXIS, 1)))
        if a > 0 and b + 1 < n:
            channels.append(Channel(node, (a - 1, b + 1), Direction(V_AXIS, -1)))
        return tuple(channels)

    def distance(self, src: NodeId, dst: NodeId) -> int:
        """King-move (Chebyshev) distance: ``max(|dx|, |dy|)``."""
        self.validate_node(src)
        self.validate_node(dst)
        return max(abs(dst[0] - src[0]), abs(dst[1] - src[1]))

    def minimal_directions(self, src: NodeId, dst: NodeId) -> tuple[Direction, ...]:
        """Directions whose hop reduces the Chebyshev distance."""
        if src == dst:
            return ()
        here = self.distance(src, dst)
        return tuple(
            channel.direction
            for channel in self.out_channels(src)
            if self.distance(channel.dst, dst) == here - 1
        )

    def potential(self, node: NodeId) -> int:
        """The lexicographic potential ``phi = n*a + b``.

        Every positive-signed direction strictly increases it, every
        negative-signed direction strictly decreases it — the property
        the octagonal negative-first deadlock proof rests on.
        """
        return self._shape[1] * node[0] + node[1]
