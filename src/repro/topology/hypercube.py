"""Binary hypercube topology.

A hypercube is an n-dimensional mesh with every ``k_i = 2``, equivalently a
2-ary n-cube (paper, Section 1).  Every node has exactly one neighbor per
dimension — the node whose address differs in that bit — joined by a pair
of unidirectional channels.  The channel from a node whose bit is 0 to the
node whose bit is 1 travels in the positive direction of that dimension and
its partner travels in the negative direction, which is what makes p-cube
routing a special case of negative-first (Section 5).
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Iterable, Sequence

from repro.core.directions import Direction
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId

__all__ = ["Hypercube", "node_to_bits", "bits_to_node"]


class Hypercube(Topology):
    """A binary n-cube with ``2**n`` nodes.

    Node coordinates are bit tuples ``(x_0, ..., x_{n-1})``; dimension 0 is
    bit 0.  The paper writes addresses most-significant-bit first (e.g.
    source ``1011010100`` in the Section 5 table); use
    :func:`node_to_bits` / :func:`bits_to_node` to convert.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"a hypercube needs n >= 1 dimensions, got {n}")
        self._n = n

    @property
    def n_dims(self) -> int:
        return self._n

    @property
    def shape(self) -> tuple[int, ...]:
        return (2,) * self._n

    def nodes(self) -> Iterable[NodeId]:
        return itertools.product((0, 1), repeat=self._n)

    def out_channels(self, node: NodeId) -> Sequence[Channel]:
        self.validate_node(node)
        return self._out_channels_cached(node)

    @lru_cache(maxsize=None)
    def _out_channels_cached(self, node: NodeId) -> tuple[Channel, ...]:
        channels = []
        for dim in range(self._n):
            bit = node[dim]
            dst = node[:dim] + (1 - bit,) + node[dim + 1 :]
            sign = 1 if bit == 0 else -1
            channels.append(Channel(node, dst, Direction(dim, sign)))
        return tuple(channels)

    def distance(self, src: NodeId, dst: NodeId) -> int:
        """Hamming distance between the two addresses."""
        self.validate_node(src)
        self.validate_node(dst)
        return sum(s != d for s, d in zip(src, dst))


def node_to_bits(node: NodeId) -> str:
    """Render a node's bit tuple as the paper's bit-string notation.

    The paper writes addresses with bit ``x_0`` first, e.g. the node
    ``(x_0, x_1, ..., x_{n-1})`` prints as ``x_0 x_1 ... x_{n-1}``.
    """
    return "".join(str(bit) for bit in node)


def bits_to_node(bits: str) -> NodeId:
    """Parse the paper's bit-string notation into a node coordinate tuple."""
    if not bits or any(ch not in "01" for ch in bits):
        raise ValueError(f"expected a non-empty binary string, got {bits!r}")
    return tuple(int(ch) for ch in bits)
