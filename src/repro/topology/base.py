"""Abstract base class for direct-network topologies.

The turn-model core, the routing algorithms, and the wormhole simulator all
talk to topologies through this interface: nodes are coordinate tuples,
channels are directed ``Channel`` records, and movement is expressed in
virtual directions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import cached_property
from typing import Iterable, Optional, Sequence

from repro.core.directions import Direction
from repro.topology.channels import Channel, NodeId

__all__ = ["Topology"]


class Topology(ABC):
    """A direct network: a set of nodes joined by directed channels."""

    @property
    @abstractmethod
    def n_dims(self) -> int:
        """Number of dimensions of the topology."""

    @property
    @abstractmethod
    def shape(self) -> tuple[int, ...]:
        """Radix of each dimension, ``(k_0, ..., k_{n-1})``."""

    @abstractmethod
    def nodes(self) -> Iterable[NodeId]:
        """All node coordinate tuples, in lexicographic order."""

    @abstractmethod
    def out_channels(self, node: NodeId) -> Sequence[Channel]:
        """The channels leaving ``node``, in a deterministic order."""

    @abstractmethod
    def distance(self, src: NodeId, dst: NodeId) -> int:
        """Length of a shortest path from ``src`` to ``dst`` in hops."""

    @property
    def num_nodes(self) -> int:
        """Total number of nodes in the network."""
        total = 1
        for k in self.shape:
            total *= k
        return total

    @cached_property
    def _channel_list(self) -> list[Channel]:
        return [ch for node in self.nodes() for ch in self.out_channels(node)]

    def channels(self) -> list[Channel]:
        """Every channel in the network, grouped by source node."""
        return list(self._channel_list)

    @property
    def num_channels(self) -> int:
        """Total number of unidirectional network channels."""
        return len(self._channel_list)

    def in_channels(self, node: NodeId) -> list[Channel]:
        """The channels entering ``node``."""
        return [ch for ch in self._channel_list if ch.dst == node]

    def contains(self, node: NodeId) -> bool:
        """Whether ``node`` is a valid coordinate tuple of this network."""
        if len(node) != self.n_dims:
            return False
        return all(0 <= x < k for x, k in zip(node, self.shape))

    def validate_node(self, node: NodeId) -> None:
        """Raise ``ValueError`` if ``node`` is not in this network."""
        if not self.contains(node):
            raise ValueError(f"node {node} is not in a {self.shape} network")

    def channel_in_direction(
        self, node: NodeId, direction: Direction, wraparound: Optional[bool] = None
    ) -> Optional[Channel]:
        """The channel leaving ``node`` in ``direction``, if there is one.

        Args:
            node: the source node.
            direction: the virtual direction of the wanted channel.
            wraparound: when given, restrict the search to wraparound
                channels (``True``) or mesh channels (``False``).  A torus
                edge node can have both a mesh channel and a wraparound
                channel in the same virtual direction (Section 4.2), so
                callers that care must disambiguate.

        Returns:
            The matching channel, or ``None`` if the node has none.
        """
        for channel in self.out_channels(node):
            if channel.direction != direction:
                continue
            if wraparound is not None and channel.wraparound != wraparound:
                continue
            return channel
        return None

    def neighbor(self, node: NodeId, direction: Direction) -> Optional[NodeId]:
        """The node reached by the (mesh) channel in ``direction``.

        Returns ``None`` at a mesh boundary with no such channel.  Where a
        node has both a mesh and a wraparound channel in the direction,
        the mesh channel's endpoint is returned.
        """
        channel = self.channel_in_direction(node, direction, wraparound=False)
        if channel is None:
            channel = self.channel_in_direction(node, direction)
        return None if channel is None else channel.dst

    def offset(self, src: NodeId, dst: NodeId) -> tuple[int, ...]:
        """Per-dimension displacement ``dst - src`` (no wraparound)."""
        return tuple(d - s for s, d in zip(src, dst))

    @cached_property
    def _direction_pairs(self) -> tuple[tuple[Direction, Direction], ...]:
        """Interned ``(negative, positive)`` directions per dimension."""
        return tuple(
            (Direction(dim, -1), Direction(dim, 1)) for dim in range(self.n_dims)
        )

    def minimal_directions(self, src: NodeId, dst: NodeId) -> tuple[Direction, ...]:
        """Directions that reduce the (mesh) distance from ``src`` to ``dst``.

        These are the *productive* directions of minimal routing: one per
        dimension in which the two nodes differ, pointing toward the
        destination coordinate.  Subclasses with wraparound channels may
        override to account for shorter wrapped paths.
        """
        pairs = self._direction_pairs
        productive = []
        for dim, (s, d) in enumerate(zip(src, dst)):
            if d > s:
                productive.append(pairs[dim][1])
            elif d < s:
                productive.append(pairs[dim][0])
        return tuple(productive)

    def __repr__(self) -> str:
        shape = "x".join(str(k) for k in self.shape)
        return f"{type(self).__name__}({shape})"
