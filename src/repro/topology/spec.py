"""Topology spec strings: ``mesh:16x16``, ``cube:8``, ``torus:4x2``.

A spec string is the portable, hashable name of a topology.  It is what
the CLI accepts on the command line, what :class:`repro.api.ExperimentSpec`
stores so experiment points can be pickled across worker processes, and
what the result cache keys on.  :func:`parse_topology` turns a spec into
a topology instance; :func:`topology_spec` is its inverse.
"""

from __future__ import annotations

from repro.topology.base import Topology
from repro.topology.hexagonal import HexMesh
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh, Mesh2D
from repro.topology.octagonal import OctMesh
from repro.topology.torus import Torus

__all__ = ["parse_topology", "topology_spec"]


def parse_topology(spec: str) -> Topology:
    """Parse a topology spec: ``mesh:16x16``, ``cube:8``, ``torus:4x2``.

    Mesh specs take per-dimension radixes separated by ``x``; cube specs
    take the dimension count; torus specs take ``k x n``; hexagonal and
    octagonal meshes take ``m x n`` (``hex:6x6``, ``oct:6x6``).
    """
    kind, _, arg = spec.partition(":")
    if not arg:
        raise ValueError(f"topology spec needs a ':<size>' part: {spec!r}")
    if kind == "mesh":
        dims = tuple(int(part) for part in arg.split("x"))
        if len(dims) == 2:
            return Mesh2D(*dims)
        return Mesh(dims)
    if kind == "cube":
        return Hypercube(int(arg))
    if kind == "torus":
        k, _, n = arg.partition("x")
        return Torus(int(k), int(n or 2))
    if kind == "hex":
        m, _, n = arg.partition("x")
        return HexMesh(int(m), int(n or m))
    if kind == "oct":
        m, _, n = arg.partition("x")
        return OctMesh(int(m), int(n or m))
    raise ValueError(
        f"unknown topology kind {kind!r} (use mesh/cube/torus/hex/oct)"
    )


def topology_spec(topology: Topology) -> str:
    """The spec string that :func:`parse_topology` would parse back.

    Round-trips every topology the parser produces:
    ``parse_topology(topology_spec(t))`` equals ``t`` in kind and shape.
    """
    if isinstance(topology, Hypercube):
        return f"cube:{topology.n_dims}"
    if isinstance(topology, Torus):
        return f"torus:{topology.shape[0]}x{topology.n_dims}"
    if isinstance(topology, HexMesh):
        return f"hex:{topology.shape[0]}x{topology.shape[1]}"
    if isinstance(topology, OctMesh):
        return f"oct:{topology.shape[0]}x{topology.shape[1]}"
    if isinstance(topology, Mesh):
        return "mesh:" + "x".join(str(k) for k in topology.shape)
    raise TypeError(
        f"no spec string for topology type {type(topology).__name__}"
    )
