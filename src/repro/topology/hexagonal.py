"""Hexagonal mesh topology (the paper's Section 7 future work).

"Another obvious extension of our work is to apply the turn model to
other topologies, such as hexagonal ... In such topologies, the turns are
not necessarily 90-degrees and the abstract cycles are not necessarily
formed by four turns."

A hexagonal mesh is modeled on the axial lattice: nodes carry coordinates
``(a, b)`` and interior nodes have six neighbors — along the ``a`` axis
(dimension 0), the ``b`` axis (dimension 1), and the diagonal ``w`` axis
(dimension 2), where one ``+w`` hop moves ``(+1, +1)``.  The six
directions make 60- and 120-degree turns with each other, yet the
negative-first argument survives unchanged: every ``+`` hop increases the
coordinate sum and every ``-`` hop decreases it, so the Theorem 5 channel
numbering still certifies the hexagonal negative-first algorithm in
:mod:`repro.routing.hex_routing`.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Iterable, Sequence

from repro.core.directions import Direction
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId

__all__ = ["HexMesh"]

#: The diagonal axis: one +w hop adds (+1, +1) to the coordinates.
W_AXIS = 2


class HexMesh(Topology):
    """An ``m x n`` hexagonal mesh on axial coordinates.

    Channels exist along ``±a`` and ``±b`` wherever the neighbor is in
    range, and along ``±w`` (the ``(+1, +1)`` diagonal) wherever both
    coordinates stay in range.  Note ``n_dims`` is 2 — nodes carry two
    coordinates — while directions span three axes; the hex algorithms in
    :mod:`repro.routing.hex_routing` are written directly against this
    topology rather than through the mesh turn tables.
    """

    def __init__(self, m: int, n: int):
        if m < 2 or n < 2:
            raise ValueError(f"a hex mesh needs m, n >= 2, got {m}x{n}")
        self._shape = (m, n)

    @property
    def n_dims(self) -> int:
        return 2

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def axis_count(self) -> int:
        """Number of movement axes (a, b, and the diagonal w)."""
        return 3

    def nodes(self) -> Iterable[NodeId]:
        return itertools.product(range(self._shape[0]), range(self._shape[1]))

    def out_channels(self, node: NodeId) -> Sequence[Channel]:
        self.validate_node(node)
        return self._out_channels_cached(node)

    @lru_cache(maxsize=None)
    def _out_channels_cached(self, node: NodeId) -> tuple[Channel, ...]:
        a, b = node
        m, n = self._shape
        channels = []
        if a > 0:
            channels.append(Channel(node, (a - 1, b), Direction(0, -1)))
        if a + 1 < m:
            channels.append(Channel(node, (a + 1, b), Direction(0, 1)))
        if b > 0:
            channels.append(Channel(node, (a, b - 1), Direction(1, -1)))
        if b + 1 < n:
            channels.append(Channel(node, (a, b + 1), Direction(1, 1)))
        if a > 0 and b > 0:
            channels.append(Channel(node, (a - 1, b - 1), Direction(W_AXIS, -1)))
        if a + 1 < m and b + 1 < n:
            channels.append(Channel(node, (a + 1, b + 1), Direction(W_AXIS, 1)))
        return tuple(channels)

    def distance(self, src: NodeId, dst: NodeId) -> int:
        """Hex distance: diagonal hops cover one step of both axes.

        For displacement ``(dx, dy)``: when the components share a sign
        the diagonal does double duty and the distance is
        ``max(|dx|, |dy|)``; otherwise every hop helps only one axis and
        the distance is ``|dx| + |dy|``.
        """
        self.validate_node(src)
        self.validate_node(dst)
        dx = dst[0] - src[0]
        dy = dst[1] - src[1]
        if dx * dy > 0:
            return max(abs(dx), abs(dy))
        return abs(dx) + abs(dy)

    def minimal_directions(self, src: NodeId, dst: NodeId) -> tuple[Direction, ...]:
        """Directions whose hop reduces the hex distance to ``dst``."""
        if src == dst:
            return ()
        here = self.distance(src, dst)
        productive = []
        for channel in self.out_channels(src):
            if self.distance(channel.dst, dst) == here - 1:
                productive.append(channel.direction)
        return tuple(productive)
