"""The certification sweep: targets, runner, and the executor gate.

A :class:`VerifyTarget` names one ``(topology, routing algorithm)`` pair
and the verdict it is *expected* to get.  :func:`default_targets` builds
the standard sweep: every registered algorithm on every supported
topology, plus a faulted mesh, two virtual-channel configurations, and
the paper's two negative-control fixtures (Figure 1's unrestricted
adaptive routing and Figure 4's faulty prohibition), which the checkers
must refute — a sweep where the fixtures pass silently means the
verifier has lost its teeth.

:func:`certify` is the programmatic gate the sweep executor calls before
launching simulations: it raises :class:`CertificationError`, with the
refuting witnesses rendered, for any algorithm that fails its checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from repro.routing.base import RoutingAlgorithm
from repro.routing.registry import available_algorithms, make_routing
from repro.routing.virtual_channels import DatelineTorusRouting, o1turn_routing
from repro.sim.deadlock import figure4_routing, unrestricted_adaptive_routing
from repro.topology.base import Topology
from repro.topology.faults import random_channel_faults
from repro.topology.mesh import Mesh2D
from repro.topology.spec import parse_topology
from repro.topology.torus import Torus
from repro.topology.virtual import VirtualChannelTopology
from repro.verify.connectivity import check_connectivity
from repro.verify.deadlock import check_deadlock_freedom
from repro.verify.livelock import check_livelock_freedom
from repro.verify.properties import check_adaptiveness, check_turn_minimum
from repro.verify.report import (
    CheckResult,
    TargetReport,
    VerificationReport,
)

__all__ = [
    "CertificationError",
    "VerifyTarget",
    "REGISTRY_TOPOLOGIES",
    "PROOF_CHECKERS",
    "default_targets",
    "verify_target",
    "verify_batch",
    "verify_all",
    "certify",
    "recertify",
]

#: Topology specs the registry sweep covers: 2D and 3D meshes, a
#: hypercube, a torus, and the Section 7 hexagonal/octagonal meshes.
REGISTRY_TOPOLOGIES = (
    "mesh:5x4",
    "mesh:3x3x3",
    "cube:4",
    "torus:4x2",
    "hex:5x5",
    "oct:5x5",
)

#: Fault configuration for the faulted-mesh target: 2 channels failed on
#: a 5x5 mesh, seed chosen so the nonminimal west-first router keeps the
#: network connected (the certification itself re-proves that).
_FAULT_MESH = (5, 5)
_FAULT_COUNT = 2
_FAULT_SEED = 5


@dataclass(frozen=True)
class VerifyTarget:
    """One ``(topology, routing)`` pair to certify.

    Attributes:
        label: unique name of the target, e.g. ``"mesh:5x4/west-first"``.
        topology_label: the topology's spec string, or a descriptive
            label for faulted and virtual-channel topologies (which have
            no spec strings).
        topology: the network instance.
        routing: the algorithm instance.
        expect: ``"certified"`` or ``"refuted"`` — what the sweep
            expects; fixtures expect refutation.
    """

    label: str
    topology_label: str
    topology: Topology
    routing: RoutingAlgorithm
    expect: str = "certified"


def _registry_targets(
    topologies: Sequence[str], algorithms: Optional[Sequence[str]] = None
) -> List[VerifyTarget]:
    """Every registered algorithm on every listed topology spec."""
    targets: List[VerifyTarget] = []
    for spec in topologies:
        topology = parse_topology(spec)
        for name in available_algorithms(topology):
            if algorithms is not None and name not in algorithms:
                continue
            targets.append(
                VerifyTarget(
                    label=f"{spec}/{name}",
                    topology_label=spec,
                    topology=topology,
                    routing=make_routing(name, topology),
                )
            )
    return targets


def _faulted_target() -> VerifyTarget:
    """A faulted mesh served by the nonminimal west-first router."""
    m, n = _FAULT_MESH
    faulty = random_channel_faults(
        Mesh2D(m, n), _FAULT_COUNT, seed=_FAULT_SEED
    )
    label = f"mesh:{m}x{n}+faults{_FAULT_COUNT}@seed{_FAULT_SEED}"
    return VerifyTarget(
        label=f"{label}/west-first-nonminimal",
        topology_label=label,
        topology=faulty,
        routing=make_routing("west-first-nonminimal", faulty),
    )


def _virtual_channel_targets() -> List[VerifyTarget]:
    """The two extra-channel designs the paper is positioned against."""
    vc_mesh = VirtualChannelTopology(Mesh2D(4, 4), lanes=2)
    vc_torus = VirtualChannelTopology(Torus(4, 2), lanes=2)
    return [
        VerifyTarget(
            label="mesh:4x4+2vc/o1turn",
            topology_label="mesh:4x4+2vc",
            topology=vc_mesh,
            routing=o1turn_routing(vc_mesh),
        ),
        VerifyTarget(
            label="torus:4x2+2vc/dateline-dor",
            topology_label="torus:4x2+2vc",
            topology=vc_torus,
            routing=DatelineTorusRouting(vc_torus),
        ),
    ]


def _fixture_targets() -> List[VerifyTarget]:
    """The negative controls the checkers must refute.

    Figure 1's unrestricted adaptive routing (all turns permitted) and
    Figure 4's faulty prohibition (one turn per abstract cycle, badly
    chosen) both deadlock; the suite requires the checkers to reject
    them with cycle witnesses matching the paper's figures.
    """
    mesh4 = Mesh2D(4, 4)
    mesh5 = Mesh2D(5, 5)
    return [
        VerifyTarget(
            label="fixture:figure1/unrestricted-adaptive",
            topology_label="mesh:4x4",
            topology=mesh4,
            routing=unrestricted_adaptive_routing(mesh4),
            expect="refuted",
        ),
        VerifyTarget(
            label="fixture:figure4/figure-4-faulty",
            topology_label="mesh:5x5",
            topology=mesh5,
            routing=figure4_routing(mesh5),
            expect="refuted",
        ),
    ]


def default_targets(
    topologies: Optional[Sequence[str]] = None,
    algorithms: Optional[Sequence[str]] = None,
    include_extras: bool = True,
) -> List[VerifyTarget]:
    """The standard certification sweep.

    Args:
        topologies: topology specs to sweep; defaults to
            :data:`REGISTRY_TOPOLOGIES`.
        algorithms: restrict to these registry names (after
            canonicalization by the caller); ``None`` sweeps all.
        include_extras: include the faulted-mesh, virtual-channel, and
            negative-control fixture targets (skipped when an explicit
            topology or algorithm filter is given, since the extras are
            not registry entries).
    """
    filtered = topologies is not None or algorithms is not None
    targets = _registry_targets(topologies or REGISTRY_TOPOLOGIES, algorithms)
    if include_extras and not filtered:
        targets.append(_faulted_target())
        targets.extend(_virtual_channel_targets())
        targets.extend(_fixture_targets())
    return targets


#: A checker: ``(topology, routing) -> CheckResult``.
Checker = Callable[[Topology, RoutingAlgorithm], CheckResult]

#: The checkers every target runs, in report order.
_CHECKERS: Sequence[Checker] = (
    check_deadlock_freedom,
    check_connectivity,
    check_livelock_freedom,
    check_adaptiveness,
    check_turn_minimum,
)

#: The pure property proofs: deadlock freedom, connectivity, livelock
#: freedom.  Batch certification of *synthesized* candidates runs these
#: three — the remaining checkers compare against the paper's named
#: algorithms (closed-form adaptiveness, Theorem 1 turn counts), which a
#: freshly enumerated candidate has no entry in.
PROOF_CHECKERS: Sequence[Checker] = (
    check_deadlock_freedom,
    check_connectivity,
    check_livelock_freedom,
)


def verify_target(
    target: VerifyTarget, checkers: Optional[Sequence[Checker]] = None
) -> TargetReport:
    """Run the checkers (the full suite by default) against one target."""
    checks = tuple(
        checker(target.topology, target.routing)
        for checker in (checkers if checkers is not None else _CHECKERS)
    )
    return TargetReport(
        target=target.label,
        topology=target.topology_label,
        routing=target.routing.name,
        expect=target.expect,
        checks=checks,
    )


def verify_batch(
    targets: Iterable[VerifyTarget],
    checkers: Optional[Sequence[Checker]] = None,
) -> VerificationReport:
    """Certify a batch of targets under one checker set.

    The synthesis engine's certification entry point: it feeds every
    enumerated candidate (or one representative per symmetry class)
    through :data:`PROOF_CHECKERS` in a single call and reads verdicts
    off the report.  Unlike :func:`certify` this never raises on a
    refutation — a refuted candidate is a *result* of the census (one of
    the paper's 4 deadlocked prohibitions), not an error.
    """
    return VerificationReport(
        targets=tuple(verify_target(target, checkers) for target in targets)
    )


def verify_all(
    targets: Optional[Iterable[VerifyTarget]] = None,
) -> VerificationReport:
    """Certify a sweep of targets (the default sweep when none given)."""
    if targets is None:
        targets = default_targets()
    return verify_batch(targets)


class CertificationError(RuntimeError):
    """An algorithm failed static certification.

    Raised by :func:`certify` before a sweep launches; the message
    carries the refuting checks with their witnesses rendered, so the
    failure is diagnosable without re-running the verifier.
    """

    def __init__(self, report: TargetReport):
        self.report = report
        lines = [
            f"{report.routing} on {report.topology} failed certification:"
        ]
        for check in report.refutations():
            lines.append(f"  {check.check}: {check.detail}")
            if check.certificate is not None:
                rendered = check.certificate.data.get("rendered")
                if rendered:
                    lines.append(str(rendered))
        super().__init__("\n".join(lines))


def certify(
    topology: Topology,
    routing: RoutingAlgorithm,
    topology_label: str = "",
) -> TargetReport:
    """Certify one algorithm, raising on refutation.

    The executor's pre-launch gate: simulating an algorithm the static
    checkers refute wastes the sweep (and the paper's Figure 1 point is
    precisely that such algorithms wedge).

    Returns:
        The target report, when certification succeeds.

    Raises:
        CertificationError: when any check refutes its property.
    """
    label = topology_label or repr(topology)
    report = verify_target(
        VerifyTarget(
            label=f"{label}/{routing.name}",
            topology_label=label,
            topology=topology,
            routing=routing,
        )
    )
    if not report.certified:
        raise CertificationError(report)
    return report


def recertify(
    topology: Topology,
    routing: RoutingAlgorithm,
    topology_label: str = "",
) -> TargetReport:
    """Re-certify a degraded (faulted) configuration mid-run.

    The resilience subsystem's safety gate: every time a fault schedule
    changes the live topology, the new configuration must be re-proved
    deadlock-free before the simulation proceeds.  Only the
    deadlock-freedom checker runs — connectivity loss under faults is
    the quantity a resilience run *measures* (unroutable messages become
    drops or retransmissions, not errors), and the remaining checkers
    certify design-time properties a runtime fault cannot change.

    Returns:
        The (single-check) target report, when the proof succeeds.

    Raises:
        CertificationError: when the degraded configuration can deadlock.
    """
    label = topology_label or repr(topology)
    report = TargetReport(
        target=f"{label}/{routing.name}",
        topology=label,
        routing=routing.name,
        expect="certified",
        checks=(check_deadlock_freedom(topology, routing),),
    )
    if not report.certified:
        raise CertificationError(report)
    return report
