"""Static certification of routing algorithms (``repro verify``).

Machine-checkable proofs — not just boolean checks — that a routing
algorithm on a topology is deadlock free (explicit channel numbering per
Dally-Seitz and Theorems 2-5), connected (every pair routable, no
dead-end states), and livelock free (bounded walk length), plus analytic
cross-checks of the degree-of-adaptiveness closed forms and Theorem 1's
turn-prohibition minimum.  Refutations carry concrete witnesses: the
Figure 1 fixture renders as the paper's four-channel circular wait.

Entry points: :func:`verify_all` (the standard sweep, exposed as
``repro verify --all``), :func:`certify` (the executor's pre-launch
gate), and the individual ``check_*`` functions.
"""

from repro.verify.connectivity import check_connectivity
from repro.verify.deadlock import (
    check_deadlock_freedom,
    recheck_numbering_certificate,
)
from repro.verify.livelock import check_livelock_freedom
from repro.verify.properties import check_adaptiveness, check_turn_minimum
from repro.verify.report import (
    PROVED,
    REFUTED,
    SKIPPED,
    Certificate,
    CheckResult,
    TargetReport,
    VerificationReport,
)
from repro.verify.suite import (
    PROOF_CHECKERS,
    REGISTRY_TOPOLOGIES,
    CertificationError,
    VerifyTarget,
    certify,
    default_targets,
    recertify,
    verify_all,
    verify_batch,
    verify_target,
)

__all__ = [
    "PROVED",
    "REFUTED",
    "SKIPPED",
    "Certificate",
    "CheckResult",
    "TargetReport",
    "VerificationReport",
    "CertificationError",
    "VerifyTarget",
    "REGISTRY_TOPOLOGIES",
    "PROOF_CHECKERS",
    "certify",
    "check_adaptiveness",
    "check_connectivity",
    "check_deadlock_freedom",
    "check_livelock_freedom",
    "check_turn_minimum",
    "default_targets",
    "recertify",
    "recheck_numbering_certificate",
    "verify_all",
    "verify_batch",
    "verify_target",
]
