"""Deadlock-freedom certification (Theorems 2-5, Dally-Seitz).

The prover constructs an explicit channel numbering under which every
realizable routing step is strictly monotone — the executable form of the
paper's Theorem 2/3/5 proofs.  Named 2D algorithms get the paper's own
closed-form numbering schemes from :mod:`repro.core.numbering`; everything
else falls back to a topological numbering of the exact channel dependency
graph, which exists precisely when the graph is acyclic.

Refutations come with a :class:`~repro.core.channel_graph.CycleWitness`:
a shortest realizable dependency cycle rendered as channels, turns, and
example destinations, matching the paper's Figure 1 and Figure 4 pictures
for the two negative-control fixtures.

The certificate is machine checkable:
:func:`recheck_numbering_certificate` rebuilds the dependency graph and
replays the monotonicity argument edge by edge against the numbering
stored in the certificate, sharing no code with the prover's monotone
construction.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.core.channel_graph import CycleWitness, RouteFn, routing_cdg
from repro.core.digraph import Digraph
from repro.core.numbering import (
    negative_first_numbering,
    north_last_numbering,
    topological_numbering,
    west_first_numbering,
)
from repro.routing.base import RoutingAlgorithm
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh, Mesh2D
from repro.verify.report import PROVED, REFUTED, Certificate, CheckResult

__all__ = [
    "channel_key",
    "check_deadlock_freedom",
    "recheck_numbering_certificate",
    "witness_certificate",
]

#: Closed-form numbering schemes, keyed by the algorithm names they
#: certify.  Each entry maps to ``(scheme label, order, constructor,
#: topology guard)``; the constructor may still fail to certify (e.g. a
#: torus variant reusing a mesh name), in which case the prover falls
#: back to the topological numbering.
_Scheme = Tuple[str, str, Callable[[Topology], Dict[Channel, int]]]


def _closed_form_scheme(
    topology: Topology, routing: RoutingAlgorithm
) -> Optional[_Scheme]:
    """The paper's numbering scheme for this algorithm, if one applies."""
    name = routing.name
    if isinstance(topology, Mesh2D) and type(topology) is Mesh2D:
        if name.startswith("west-first"):
            return (
                "theorem-2-west-first",
                "decreasing",
                lambda t: west_first_numbering(t),  # type: ignore[arg-type]
            )
        if name.startswith("north-last"):
            return (
                "theorem-3-north-last",
                "increasing",
                lambda t: north_last_numbering(t),  # type: ignore[arg-type]
            )
    plain_mesh = type(topology) in (Mesh, Mesh2D, Hypercube)
    if plain_mesh and (
        name.startswith("negative-first") or name.startswith("p-cube")
    ):
        return ("theorem-5-negative-first", "increasing", negative_first_numbering)
    return None


def channel_key(channel: Channel) -> str:
    """A stable, human-readable string key for a channel.

    Certificates store numberings as JSON objects, so channels need a
    deterministic text form.  The key extends ``str(channel)`` with the
    direction, which disambiguates torus edge nodes where a mesh channel
    and a wraparound channel join the same endpoints.
    """
    return f"{channel} dir={channel.direction}"


def witness_certificate(witness: CycleWitness) -> Certificate:
    """Package a dependency cycle as a refutation certificate."""
    return Certificate(
        kind="dependency-cycle",
        summary=(
            f"realizable dependency cycle of {len(witness)} channels "
            f"({', '.join(name for name in witness.turn_names() if name != 'straight')})"
        ),
        data={
            "channels": [str(channel) for channel in witness.channels],
            "turns": witness.turn_names(),
            "dests": [
                list(dest) if dest is not None else None for dest in witness.dests
            ],
            "rendered": witness.render(),
        },
    )


def check_deadlock_freedom(
    topology: Topology, routing: RoutingAlgorithm
) -> CheckResult:
    """Prove or refute deadlock freedom for one routing relation.

    Proof: an explicit channel numbering (closed form when the paper has
    one, topological otherwise) under which every edge of the exact
    channel dependency graph is strictly monotone.  Refutation: a
    shortest realizable dependency cycle, rendered as channels and turns.
    """
    edge_dests: Dict[Tuple[Channel, Channel], NodeId] = {}
    graph = routing_cdg(topology, routing, edge_dests=edge_dests)
    cycle = graph.find_cycle()
    if cycle is not None:
        shortest = graph.shortest_cycle()
        witness = CycleWitness.from_channels(
            shortest if shortest is not None else cycle, edge_dests
        )
        return CheckResult(
            check="deadlock-freedom",
            verdict=REFUTED,
            detail=(
                f"channel dependency graph has a cycle of {len(witness)} "
                f"channels (turns: {', '.join(witness.turn_names())})"
            ),
            certificate=witness_certificate(witness),
        )

    scheme_name = "topological"
    order = "increasing"
    numbering: Optional[Dict[Channel, int]] = None
    scheme = _closed_form_scheme(topology, routing)
    if scheme is not None:
        candidate_name, candidate_order, build = scheme
        candidate = build(topology)
        if not _violations(graph, candidate, candidate_order):
            scheme_name, order, numbering = candidate_name, candidate_order, candidate
    if numbering is None:
        numbering = topological_numbering(graph)

    certificate = Certificate(
        kind="channel-numbering",
        summary=(
            f"{scheme_name} numbering of {graph.num_vertices} channels; every "
            f"one of {graph.num_edges} realizable dependencies strictly "
            f"{'decreases' if order == 'decreasing' else 'increases'}"
        ),
        data={
            "scheme": scheme_name,
            "order": order,
            "edges": graph.num_edges,
            "numbering": {
                channel_key(channel): number for channel, number in numbering.items()
            },
        },
    )
    return CheckResult(
        check="deadlock-freedom",
        verdict=PROVED,
        detail=(
            f"acyclic dependency graph; {scheme_name} numbering is strictly "
            f"{order} across all {graph.num_edges} dependencies"
        ),
        certificate=certificate,
    )


def _violations(
    graph: Digraph[Channel], numbering: Mapping[Channel, int], order: str
) -> int:
    """Count dependency edges that break the numbering's monotonicity."""
    count = 0
    for in_channel, out_channel in graph.edges():
        before = numbering[in_channel]
        after = numbering[out_channel]
        if order == "decreasing":
            count += 0 if after < before else 1
        else:
            count += 0 if after > before else 1
    return count


def recheck_numbering_certificate(
    topology: Topology, route_fn: RouteFn, certificate: Certificate
) -> bool:
    """Independently re-verify a channel-numbering certificate.

    Rebuilds the exact channel dependency graph from the routing relation
    and checks, edge by edge, that the numbering stored in the certificate
    is strictly monotone in the recorded order and covers every channel.
    This shares only the graph builder with the prover, so a bug in the
    numbering constructors cannot silently certify an unsafe algorithm.
    """
    if certificate.kind != "channel-numbering":
        return False
    order = certificate.data.get("order")
    if order not in ("increasing", "decreasing"):
        return False
    stored: Mapping[str, int] = certificate.data.get("numbering", {})
    graph = routing_cdg(topology, route_fn)
    for channel in graph.vertices():
        if channel_key(channel) not in stored:
            return False
    for in_channel, out_channel in graph.edges():
        before = stored[channel_key(in_channel)]
        after = stored[channel_key(out_channel)]
        if order == "decreasing" and not after < before:
            return False
        if order == "increasing" and not after > before:
            return False
    return True
