"""Livelock-freedom certification via walk-length bounds.

A wormhole packet livelocks when the algorithm can shuttle it forever
without delivery.  Over an *acyclic* channel dependency graph that is
impossible: every permitted walk visits a strictly monotone channel
sequence (the deadlock certificate's numbering), so its length is bounded
by the longest path of the graph.  This checker computes that bound
explicitly and emits it as the certificate — a concrete "no packet takes
more than B hops" statement, which for minimal algorithms collapses to
the network diameter and for the paper's nonminimal algorithms stays
finite because every misroute consumes monotone-numbered channels.

A cyclic dependency graph is refuted: the cycle is a permitted walk of
unbounded length (and a deadlock risk besides, which the deadlock checker
reports with the same witness).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.channel_graph import CycleWitness, RouteFn, routing_cdg
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId
from repro.verify.deadlock import witness_certificate
from repro.verify.report import PROVED, REFUTED, Certificate, CheckResult

__all__ = ["check_livelock_freedom"]


def check_livelock_freedom(topology: Topology, route_fn: RouteFn) -> CheckResult:
    """Prove or refute that every permitted walk has bounded length."""
    edge_dests: Dict[Tuple[Channel, Channel], NodeId] = {}
    graph = routing_cdg(topology, route_fn, edge_dests=edge_dests)
    cycle = graph.shortest_cycle()
    if cycle is not None:
        witness = CycleWitness.from_channels(cycle, edge_dests)
        return CheckResult(
            check="livelock-freedom",
            verdict=REFUTED,
            detail=(
                f"permitted walks can repeat a {len(witness)}-channel "
                "dependency cycle, so no hop bound exists"
            ),
            certificate=witness_certificate(witness),
        )

    path = graph.longest_path()
    bound = len(path)
    certificate = Certificate(
        kind="longest-path",
        summary=(
            f"every permitted walk ends within {bound} hops (longest path "
            f"of the acyclic dependency graph over {graph.num_vertices} "
            "channels)"
        ),
        data={
            "bound_hops": bound,
            "channels": graph.num_vertices,
            "dependencies": graph.num_edges,
            "longest_path": [str(channel) for channel in path],
        },
    )
    return CheckResult(
        check="livelock-freedom",
        verdict=PROVED,
        detail=(
            f"acyclic dependency graph bounds every permitted walk at "
            f"{bound} hops"
        ),
        certificate=certificate,
    )
