"""Connectivity certification: every pair routable, no dead-end states.

Deadlock freedom is worthless if the restriction disconnects the network —
the paper's Step 4 demands prohibitions that leave every source able to
reach every destination.  This checker proves, per destination, that

* every source has at least one permitted first hop from which some
  permitted walk delivers the packet (no unroutable pairs), and
* no reachable routing state is a dead end — a channel whose packet the
  algorithm leaves with no output (the base-class contract calls an empty
  result for a reachable state a bug).

Delivery is decided by reverse reachability over the per-destination
channel graph, so it is exact even when the dependency graph is cyclic
(where the livelock and deadlock checkers refute separately): a state
delivers iff *some* permitted walk from it ends at the destination.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

from repro.core.channel_graph import RouteFn
from repro.topology.base import Topology
from repro.topology.channels import Channel, NodeId
from repro.verify.report import PROVED, REFUTED, Certificate, CheckResult

__all__ = ["check_connectivity"]

#: How many counterexamples a refutation certificate keeps.
_SAMPLE = 20


def _closure_for_dest(
    topology: Topology, route_fn: RouteFn, dest: NodeId
) -> Tuple[Set[Channel], Dict[Channel, List[Channel]], List[Channel]]:
    """Forward closure of the routing relation toward one destination.

    Returns:
        ``(reached, outputs, dead_ends)``: every channel a packet bound
        for ``dest`` can hold, the outputs offered from each such channel,
        and the reached channels from which the algorithm offers nothing.
    """
    reached: Set[Channel] = set()
    outputs: Dict[Channel, List[Channel]] = {}
    dead_ends: List[Channel] = []
    frontier: deque[Channel] = deque()
    for source in topology.nodes():
        if source == dest:
            continue
        for first in route_fn(None, source, dest):
            if first not in reached:
                reached.add(first)
                frontier.append(first)
    while frontier:
        channel = frontier.popleft()
        if channel.dst == dest:
            continue
        outs = list(route_fn(channel, channel.dst, dest))
        outputs[channel] = outs
        if not outs:
            dead_ends.append(channel)
        for out in outs:
            if out not in reached:
                reached.add(out)
                frontier.append(out)
    return reached, outputs, dead_ends


def _delivering(
    reached: Set[Channel],
    outputs: Dict[Channel, List[Channel]],
    dest: NodeId,
) -> Set[Channel]:
    """The reached channels from which some permitted walk ends at ``dest``.

    Reverse breadth-first search from the accepting channels (those whose
    head is the destination) over the per-destination channel graph.
    """
    predecessors: Dict[Channel, List[Channel]] = {}
    for channel, outs in outputs.items():
        for out in outs:
            predecessors.setdefault(out, []).append(channel)
    delivering: Set[Channel] = {ch for ch in reached if ch.dst == dest}
    frontier: deque[Channel] = deque(delivering)
    while frontier:
        channel = frontier.popleft()
        for pred in predecessors.get(channel, ()):
            if pred not in delivering:
                delivering.add(pred)
                frontier.append(pred)
    return delivering


def check_connectivity(topology: Topology, route_fn: RouteFn) -> CheckResult:
    """Prove or refute that the routing relation connects the network."""
    unroutable: List[Tuple[NodeId, NodeId]] = []
    dead_end_states: List[Tuple[Channel, NodeId]] = []
    pairs = 0
    states = 0
    for dest in topology.nodes():
        reached, outputs, dead_ends = _closure_for_dest(topology, route_fn, dest)
        states += len(reached)
        dead_end_states.extend((channel, dest) for channel in dead_ends)
        delivering = _delivering(reached, outputs, dest)
        for source in topology.nodes():
            if source == dest:
                continue
            pairs += 1
            if not any(
                first in delivering for first in route_fn(None, source, dest)
            ):
                unroutable.append((source, dest))

    if unroutable or dead_end_states:
        certificate = Certificate(
            kind="connectivity-counterexample",
            summary=(
                f"{len(unroutable)} unroutable pairs, "
                f"{len(dead_end_states)} dead-end states"
            ),
            data={
                "unroutable_pairs": [
                    [list(src), list(dst)] for src, dst in unroutable[:_SAMPLE]
                ],
                "dead_ends": [
                    {"channel": str(channel), "dest": list(dest)}
                    for channel, dest in dead_end_states[:_SAMPLE]
                ],
                "unroutable_total": len(unroutable),
                "dead_end_total": len(dead_end_states),
            },
        )
        first_bad = (
            f"e.g. {unroutable[0][0]} cannot reach {unroutable[0][1]}"
            if unroutable
            else f"e.g. packet on {dead_end_states[0][0]} bound for "
            f"{dead_end_states[0][1]} has no output"
        )
        return CheckResult(
            check="connectivity",
            verdict=REFUTED,
            detail=(
                f"{len(unroutable)} of {pairs} pairs unroutable, "
                f"{len(dead_end_states)} reachable dead-end states; {first_bad}"
            ),
            certificate=certificate,
        )

    certificate = Certificate(
        kind="reachable-states",
        summary=(
            f"all {pairs} ordered pairs routable; "
            f"{states} reachable routing states, none a dead end"
        ),
        data={"pairs": pairs, "states": states, "dead_ends": 0},
    )
    return CheckResult(
        check="connectivity",
        verdict=PROVED,
        detail=(
            f"all {pairs} ordered (src, dst) pairs deliver; every one of "
            f"{states} reachable routing states offers an output"
        ),
        certificate=certificate,
    )
