"""Verification reports and machine-checkable certificates.

The static certification suite phrases every claim it proves or refutes
as a :class:`CheckResult` carrying a :class:`Certificate`: a JSON-ready
record with enough data for an independent checker to re-establish the
verdict without re-running the prover.  A deadlock-freedom certificate,
for example, carries the full channel numbering; re-checking it is a
single monotonicity pass over the dependency graph
(:func:`repro.verify.deadlock.recheck_numbering_certificate`).

A :class:`TargetReport` aggregates the checks for one
``(topology, routing algorithm)`` pair, and a :class:`VerificationReport`
aggregates the targets of a sweep.  Both serialize losslessly to JSON
(``to_dict`` / ``from_dict``), which is what ``repro verify --out``
writes and CI archives as an artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "PROVED",
    "REFUTED",
    "SKIPPED",
    "Certificate",
    "CheckResult",
    "TargetReport",
    "VerificationReport",
]

#: Verdict: the property holds, with a certificate proving it.
PROVED = "proved"
#: Verdict: the property fails, with a witness refuting it.
REFUTED = "refuted"
#: Verdict: the check does not apply to this target (no closed form, say).
SKIPPED = "skipped"

_VERDICTS = (PROVED, REFUTED, SKIPPED)


@dataclass(frozen=True)
class Certificate:
    """A machine-checkable artifact backing a verdict.

    Attributes:
        kind: what the data proves or refutes — ``"channel-numbering"``,
            ``"dependency-cycle"``, ``"reachable-states"``,
            ``"longest-path"``, ``"adaptiveness-table"``, or
            ``"turn-audit"``.
        summary: one human-readable line.
        data: the JSON-ready payload an independent checker consumes.
    """

    kind: str
    summary: str
    data: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict; inverse of :meth:`from_dict`."""
        return {"kind": self.kind, "summary": self.summary, "data": dict(self.data)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Certificate":
        """Rebuild a certificate saved by :meth:`to_dict`."""
        return cls(
            kind=str(payload["kind"]),
            summary=str(payload["summary"]),
            data=dict(payload.get("data", {})),
        )


@dataclass(frozen=True)
class CheckResult:
    """The outcome of one static checker on one target.

    Attributes:
        check: checker name — ``"deadlock-freedom"``, ``"connectivity"``,
            ``"livelock-freedom"``, ``"adaptiveness"``, or
            ``"turn-minimum"``.
        verdict: :data:`PROVED`, :data:`REFUTED`, or :data:`SKIPPED`.
        detail: one-line explanation of the verdict.
        certificate: the backing artifact; ``None`` for skipped checks.
    """

    check: str
    verdict: str
    detail: str = ""
    certificate: Optional[Certificate] = None

    def __post_init__(self) -> None:
        if self.verdict not in _VERDICTS:
            raise ValueError(
                f"verdict must be one of {_VERDICTS}, got {self.verdict!r}"
            )

    @property
    def ok(self) -> bool:
        """Whether the check did not refute its property."""
        return self.verdict != REFUTED

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict; inverse of :meth:`from_dict`."""
        payload: Dict[str, Any] = {
            "check": self.check,
            "verdict": self.verdict,
            "detail": self.detail,
        }
        if self.certificate is not None:
            payload["certificate"] = self.certificate.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CheckResult":
        """Rebuild a result saved by :meth:`to_dict`."""
        certificate = payload.get("certificate")
        return cls(
            check=str(payload["check"]),
            verdict=str(payload["verdict"]),
            detail=str(payload.get("detail", "")),
            certificate=(
                Certificate.from_dict(certificate) if certificate else None
            ),
        )


@dataclass(frozen=True)
class TargetReport:
    """Every check's outcome for one ``(topology, routing)`` pair.

    Attributes:
        target: unique label, e.g. ``"mesh:5x4/west-first"``.
        topology: topology label (a spec string when one exists; faulted
            and virtual-channel targets use descriptive labels).
        routing: routing algorithm name.
        expect: ``"certified"`` for production algorithms or
            ``"refuted"`` for the negative-control fixtures, whose whole
            point is to be rejected.
        checks: the individual checker outcomes.
    """

    target: str
    topology: str
    routing: str
    expect: str = "certified"
    checks: Tuple[CheckResult, ...] = ()

    def __post_init__(self) -> None:
        if self.expect not in ("certified", "refuted"):
            raise ValueError(f"expect must be certified|refuted: {self.expect!r}")

    @property
    def certified(self) -> bool:
        """Whether no check refuted its property."""
        return all(check.ok for check in self.checks)

    @property
    def as_expected(self) -> bool:
        """Whether the verdict matches what the suite expects.

        A production algorithm must certify; a negative-control fixture
        must be refuted (a fixture that silently passes means the
        checkers have lost their teeth).
        """
        return self.certified == (self.expect == "certified")

    @property
    def verdict(self) -> str:
        """``"certified"`` or ``"refuted"``, as established."""
        return "certified" if self.certified else "refuted"

    def refutations(self) -> List[CheckResult]:
        """The checks that refuted their property."""
        return [check for check in self.checks if not check.ok]

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict; inverse of :meth:`from_dict`."""
        return {
            "target": self.target,
            "topology": self.topology,
            "routing": self.routing,
            "expect": self.expect,
            "verdict": self.verdict,
            "as_expected": self.as_expected,
            "checks": [check.to_dict() for check in self.checks],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TargetReport":
        """Rebuild a report saved by :meth:`to_dict`."""
        return cls(
            target=str(payload["target"]),
            topology=str(payload["topology"]),
            routing=str(payload["routing"]),
            expect=str(payload.get("expect", "certified")),
            checks=tuple(
                CheckResult.from_dict(check) for check in payload.get("checks", ())
            ),
        )

    def render(self) -> str:
        """A compact multi-line text account of this target."""
        mark = "ok" if self.as_expected else "UNEXPECTED"
        lines = [f"{self.target}: {self.verdict} (expected {self.expect}) [{mark}]"]
        for check in self.checks:
            lines.append(f"  {check.check:18s} {check.verdict:8s} {check.detail}")
        return "\n".join(lines)


@dataclass(frozen=True)
class VerificationReport:
    """The outcome of one certification sweep.

    Attributes:
        targets: one report per ``(topology, routing)`` pair verified.
    """

    targets: Tuple[TargetReport, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether every target matched its expected verdict."""
        return all(target.as_expected for target in self.targets)

    @property
    def certified_count(self) -> int:
        """Number of targets established as certified."""
        return sum(1 for target in self.targets if target.certified)

    @property
    def refuted_count(self) -> int:
        """Number of targets established as refuted."""
        return sum(1 for target in self.targets if not target.certified)

    def unexpected(self) -> List[TargetReport]:
        """The targets whose verdict differs from the expectation."""
        return [target for target in self.targets if not target.as_expected]

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict; inverse of :meth:`from_dict`."""
        return {
            "ok": self.ok,
            "certified": self.certified_count,
            "refuted": self.refuted_count,
            "targets": [target.to_dict() for target in self.targets],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "VerificationReport":
        """Rebuild a report saved by :meth:`to_dict`."""
        return cls(
            targets=tuple(
                TargetReport.from_dict(target)
                for target in payload.get("targets", ())
            )
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize the full report (certificates included) to JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "VerificationReport":
        """Rebuild a report from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def render(self) -> str:
        """A text summary: one block per target, then totals."""
        lines = [target.render() for target in self.targets]
        lines.append(
            f"{len(self.targets)} targets: {self.certified_count} certified, "
            f"{self.refuted_count} refuted"
            + ("" if self.ok else " — UNEXPECTED VERDICTS PRESENT")
        )
        return "\n".join(lines)
