"""Analytic cross-checks: adaptiveness closed forms and the turn minimum.

Two checks beyond the safety trio:

* :func:`check_adaptiveness` compares the degree-of-adaptiveness closed
  forms of Sections 3.4, 4.1, and 5 (``S_west-first``, ``S_negative-first``,
  ``S_p-cube``, ...) against exhaustive shortest-path enumeration through
  the actual routing relation, over every ordered pair of nodes.  A
  mismatch means either the implementation or the formula has drifted —
  both have caught bugs in networks-on-chip codebases.

* :func:`check_turn_minimum` audits an algorithm's prohibited-turn set
  against Theorem 1 (at least ``n (n-1)`` turns must be prohibited) and
  the Step 4 necessary condition (every abstract cycle broken).  It also
  records whether the algorithm meets the minimum exactly, which is
  Theorem 6's tightness claim (negative-first does).

Both checks skip (rather than vacuously prove) targets the paper gives no
closed form or prohibition set for — torus, hexagonal, octagonal, and
virtual-channel algorithms.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.adaptiveness import (
    count_shortest_paths,
    s_abonf,
    s_abopl,
    s_ecube,
    s_fully_adaptive,
    s_negative_first,
    s_north_last,
    s_west_first,
)
from repro.core.restrictions import (
    TurnRestriction,
    abonf_restriction,
    abopl_restriction,
    negative_first_restriction,
    north_last_restriction,
    west_first_restriction,
)
from repro.core.turns import Turn, minimum_prohibited_turns, ninety_degree_turns
from repro.routing.base import RoutingAlgorithm
from repro.topology.base import Topology
from repro.topology.channels import NodeId
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh, Mesh2D
from repro.verify.report import PROVED, REFUTED, SKIPPED, Certificate, CheckResult

__all__ = ["check_adaptiveness", "check_turn_minimum"]

#: How many mismatches a refutation certificate keeps.
_SAMPLE = 20

ClosedForm = Callable[[NodeId, NodeId], int]


def _base_name(routing: RoutingAlgorithm) -> str:
    """The algorithm name with the nonminimal suffix stripped.

    A nonminimal variant permits exactly the minimal paths its minimal
    counterpart does (the enumeration counts distance-decreasing hops
    only), so it shares the closed form; likewise its restriction is the
    same turn set.
    """
    name = routing.name
    if name.endswith("-nonminimal"):
        return name[: -len("-nonminimal")]
    return name


#: Closed forms by base algorithm name (Sections 3.4, 4.1, and 5).
#: p-cube is negative-first specialized to binary coordinates, where
#: ``S_negative-first`` reduces to ``h_1! h_0! = S_p-cube``.
_CLOSED_FORMS: Dict[str, ClosedForm] = {
    "xy": s_ecube,
    "yx": s_ecube,
    "e-cube": s_ecube,
    "dimension-order": s_ecube,
    "west-first": s_west_first,
    "north-last": s_north_last,
    "negative-first": s_negative_first,
    "p-cube": s_negative_first,
    "abonf": s_abonf,
    "abopl": s_abopl,
    "unrestricted-adaptive": s_fully_adaptive,
}

#: Restriction constructors by base algorithm name, for the turn audit.
_RESTRICTIONS: Dict[str, Callable[[int], TurnRestriction]] = {
    "west-first": lambda n: west_first_restriction(),
    "north-last": lambda n: north_last_restriction(),
    "negative-first": negative_first_restriction,
    "p-cube": negative_first_restriction,
    "abonf": abonf_restriction,
    "abopl": abopl_restriction,
    "xy": lambda n: _dimension_order_restriction(n),
    "yx": lambda n: _dimension_order_restriction(n, reverse=True),
    "e-cube": lambda n: _dimension_order_restriction(n),
    "dimension-order": lambda n: _dimension_order_restriction(n),
}


def _dimension_order_restriction(
    n_dims: int, reverse: bool = False
) -> TurnRestriction:
    """The turn set of dimension-order routing (Figure 3 generalized).

    Routing dimensions in increasing order prohibits every turn from a
    higher dimension back into a lower one; ``reverse`` flips the order
    (yx routing).
    """

    def banned(turn: Turn) -> bool:
        if reverse:
            return turn.to.dim > turn.frm.dim
        return turn.to.dim < turn.frm.dim

    prohibited = frozenset(
        turn for turn in ninety_degree_turns(n_dims) if banned(turn)
    )
    name = "yx" if reverse else "dimension-order"
    return TurnRestriction(n_dims, prohibited, name=name)


def _plain_topology(topology: Topology) -> bool:
    """Whether the closed forms apply: an intact mesh or hypercube."""
    return type(topology) in (Mesh, Mesh2D, Hypercube)


def check_adaptiveness(
    topology: Topology, routing: RoutingAlgorithm
) -> CheckResult:
    """Cross-check a closed-form ``S`` against exhaustive enumeration."""
    closed_form = _CLOSED_FORMS.get(_base_name(routing))
    if closed_form is None or not _plain_topology(topology):
        return CheckResult(
            check="adaptiveness",
            verdict=SKIPPED,
            detail="no closed-form S for this algorithm/topology",
        )

    nodes = list(topology.nodes())
    mismatches: List[Dict[str, object]] = []
    pairs = 0
    for src in nodes:
        for dst in nodes:
            if src == dst:
                continue
            pairs += 1
            expected = closed_form(src, dst)
            counted = count_shortest_paths(topology, routing, src, dst)
            if counted != expected:
                mismatches.append(
                    {
                        "src": list(src),
                        "dst": list(dst),
                        "closed_form": expected,
                        "enumerated": counted,
                    }
                )

    if mismatches:
        first = mismatches[0]
        return CheckResult(
            check="adaptiveness",
            verdict=REFUTED,
            detail=(
                f"{len(mismatches)} of {pairs} pairs disagree with the "
                f"closed form; e.g. {tuple(first['src'])} -> "
                f"{tuple(first['dst'])}: closed form {first['closed_form']}, "
                f"enumeration {first['enumerated']}"
            ),
            certificate=Certificate(
                kind="adaptiveness-table",
                summary=f"{len(mismatches)} closed-form mismatches",
                data={
                    "pairs": pairs,
                    "mismatches": mismatches[:_SAMPLE],
                    "mismatch_total": len(mismatches),
                },
            ),
        )

    return CheckResult(
        check="adaptiveness",
        verdict=PROVED,
        detail=(
            f"closed-form S matches exhaustive enumeration on all "
            f"{pairs} ordered pairs"
        ),
        certificate=Certificate(
            kind="adaptiveness-table",
            summary=f"closed form agrees with enumeration on {pairs} pairs",
            data={"pairs": pairs, "mismatch_total": 0},
        ),
    )


def _restriction_for(routing: RoutingAlgorithm, n_dims: int) -> Optional[TurnRestriction]:
    """The prohibited-turn set an algorithm routes under, if known."""
    restriction = getattr(routing, "restriction", None)
    if isinstance(restriction, TurnRestriction):
        return restriction
    build = _RESTRICTIONS.get(_base_name(routing))
    if build is None:
        return None
    return build(n_dims)


def check_turn_minimum(
    topology: Topology, routing: RoutingAlgorithm
) -> CheckResult:
    """Audit the prohibited-turn count against Theorem 1's minimum."""
    restriction = _restriction_for(routing, topology.n_dims)
    if restriction is None:
        return CheckResult(
            check="turn-minimum",
            verdict=SKIPPED,
            detail="no mesh turn-prohibition set to audit",
        )

    n_dims = restriction.n_dims
    minimum = minimum_prohibited_turns(n_dims)
    prohibited = sorted(str(turn) for turn in restriction.prohibited)
    count = len(prohibited)
    breaks_all = restriction.breaks_every_abstract_cycle()
    certificate = Certificate(
        kind="turn-audit",
        summary=(
            f"{count} turns prohibited (Theorem 1 minimum {minimum}); "
            f"abstract cycles {'all' if breaks_all else 'NOT all'} broken"
        ),
        data={
            "prohibited": prohibited,
            "count": count,
            "minimum": minimum,
            "at_minimum": count == minimum,
            "breaks_every_abstract_cycle": breaks_all,
        },
    )

    if count < minimum or not breaks_all:
        reason = (
            f"only {count} turns prohibited, below the Theorem 1 minimum "
            f"of {minimum}"
            if count < minimum
            else "some abstract cycle retains all four turns"
        )
        return CheckResult(
            check="turn-minimum",
            verdict=REFUTED,
            detail=reason,
            certificate=certificate,
        )

    tightness = " (exactly the minimum, Theorem 6)" if count == minimum else ""
    return CheckResult(
        check="turn-minimum",
        verdict=PROVED,
        detail=(
            f"{count} >= {minimum} turns prohibited{tightness}; every "
            "abstract cycle broken"
        ),
        certificate=certificate,
    )
