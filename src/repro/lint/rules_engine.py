"""Engine-discipline rules: guarded optional hooks, pure pool workers.

The simulator's optional subsystems (observability, fault injection)
ride on the *cheap-optional-hook* contract: a run without a collector
or controller pays one ``is not None`` test per hook site and nothing
else, and hook access is only ever performed under such a guard.  The
sweep executor's process-pool workers have their own discipline: they
must be pure functions of their (pickled) arguments, or warm-context
sharing silently diverges between fork and spawn start methods.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.framework import (
    ModuleContext,
    Project,
    Rule,
    display_path,
    dotted_name,
    iter_functions,
    parent_map,
)

__all__ = [
    "RULES",
    "GuardedHooksRule",
    "WorkerPurityRule",
]

#: Attributes of the simulator that hold optional hook objects, and the
#: local/parameter spellings the engine conventionally binds them to.
_HOOK_ATTRS = ("_obs", "_resilience")
_HOOK_PARAMS = ("obs", "resilience")


def _guarantees_not_none(test: ast.expr, name: str) -> bool:
    """Whether ``test`` being truthy proves ``name`` is not None."""
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        if (
            isinstance(test.ops[0], ast.IsNot)
            and dotted_name(test.left) == name
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            return True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_guarantees_not_none(value, name) for value in test.values)
    return False


def _is_none_test(test: ast.expr, name: str) -> bool:
    """Whether ``test`` is literally ``name is None``."""
    return (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Is)
        and dotted_name(test.left) == name
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    )


class GuardedHooksRule(Rule):
    """Hook access in the engine cores must sit under an is-not-None guard.

    Tracks the simulator's optional hook slots (``self._obs``,
    ``self._resilience``), locals assigned from them, and parameters
    spelled ``obs``/``resilience``.  Every attribute access *through*
    one of these (``obs.bind(...)``, ``self._obs.on_cycle_end(...)``)
    must be dominated by an ``X is not None`` test — an ``if``/``while``
    body, an earlier ``and`` conjunct, an ``X is None or ...`` escape,
    a conditional expression, or a preceding ``assert X is not None``.
    A parameter with a non-optional annotation (``ctrl`` in
    ``_resilience_tick``) is intentionally not tracked: its contract is
    the caller's guard.
    """

    id = "guarded-hooks"
    summary = (
        "every _obs/fault-controller hook access in the engine cores "
        "(sim/engine.py, sim/flatcore.py) must be under an "
        "'is not None' guard (cheap-optional-hook contract)"
    )
    packages = ("sim",)

    #: Modules implementing an engine hot loop; both cores carry the
    #: same cheap-optional-hook contract.
    filenames = ("engine.py", "flatcore.py")

    def check_module(
        self, module: ModuleContext, project: Project
    ) -> Iterator[Finding]:
        if module.filename not in self.filenames:
            return
        path = display_path(module.path)
        parents = parent_map(module.tree)
        for func in iter_functions(module.tree):
            yield from self._check_function(func, parents, path)

    def _check_function(
        self,
        func: ast.FunctionDef,
        parents: Dict[ast.AST, ast.AST],
        path: str,
    ) -> Iterator[Finding]:
        tracked = self._tracked_names(func)
        if not tracked:
            return
        asserts = self._assert_guards(func)
        for node in ast.walk(func):
            if not isinstance(node, ast.Attribute):
                continue
            base = dotted_name(node.value)
            if base is None or base not in tracked:
                continue
            if self._guarded(node, base, parents, func, asserts):
                continue
            yield Finding(
                path,
                node.lineno,
                self.id,
                f"hook access {base}.{node.attr} in {func.name}() is not "
                f"under an '{base} is not None' guard",
            )

    def _tracked_names(self, func: ast.FunctionDef) -> Set[str]:
        """Hook spellings live in this function's scope."""
        tracked: Set[str] = {f"self.{attr}" for attr in _HOOK_ATTRS}
        args = func.args
        all_args = (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        )
        for arg in all_args:
            if arg.arg in _HOOK_PARAMS:
                tracked.add(arg.arg)
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and dotted_name(node.value) in tracked
            ):
                tracked.add(node.targets[0].id)
        return tracked

    def _assert_guards(self, func: ast.FunctionDef) -> Dict[str, int]:
        """Name -> line of the earliest ``assert name is not None``."""
        guards: Dict[str, int] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assert):
                for name in self._asserted_names(node.test):
                    guards.setdefault(name, node.lineno)
        return guards

    def _asserted_names(self, test: ast.expr) -> List[str]:
        names: List[str] = []
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            if (
                isinstance(test.ops[0], ast.IsNot)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None
            ):
                name = dotted_name(test.left)
                if name is not None:
                    names.append(name)
        elif isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                names.extend(self._asserted_names(value))
        return names

    def _guarded(
        self,
        node: ast.Attribute,
        name: str,
        parents: Dict[ast.AST, ast.AST],
        func: ast.FunctionDef,
        asserts: Dict[str, int],
    ) -> bool:
        if name in asserts and asserts[name] <= node.lineno:
            return True
        child: ast.AST = node
        current = parents.get(node)
        while current is not None and current is not func:
            if isinstance(current, (ast.If, ast.While)):
                if child in current.body and _guarantees_not_none(
                    current.test, name
                ):
                    return True
            elif isinstance(current, ast.IfExp):
                if child is current.body and _guarantees_not_none(
                    current.test, name
                ):
                    return True
            elif isinstance(current, ast.BoolOp):
                values = current.values
                if child in values:
                    index = values.index(child)
                    earlier = values[:index]
                    if isinstance(current.op, ast.And) and any(
                        _guarantees_not_none(value, name) for value in earlier
                    ):
                        return True
                    if isinstance(current.op, ast.Or) and any(
                        _is_none_test(value, name) for value in earlier
                    ):
                        return True
            child, current = current, parents.get(current)
        return False


class WorkerPurityRule(Rule):
    """Process-pool workers stay pure: no ``global``, no argument mutation.

    Finds every module-level function dispatched as the first argument
    of a ``.submit(...)`` call, plus the module-level functions those
    workers call directly (the worker closure).  Inside that closure:
    ``global``/``nonlocal`` statements are forbidden (worker state must
    arrive through arguments), and so is assigning to an attribute or
    subscript of a parameter — mutating a shipped warm-context or spec
    list diverges between fork inheritance and spawn pickling.
    Rebinding a parameter *name* locally is fine.
    """

    id = "worker-purity"
    summary = (
        "functions dispatched through the process pool must not use "
        "'global' or mutate their (shared/pickled) arguments"
    )
    packages = ("analysis", "sim")

    def check_module(
        self, module: ModuleContext, project: Project
    ) -> Iterator[Finding]:
        functions = {
            node.name: node
            for node in module.tree.body
            if isinstance(node, ast.FunctionDef)
        }
        roots = self._dispatched_roots(module.tree, functions)
        if not roots:
            return
        closure = self._closure(roots, functions)
        path = display_path(module.path)
        for name in sorted(closure):
            yield from self._check_worker(functions[name], path)

    def _dispatched_roots(
        self, tree: ast.Module, functions: Dict[str, ast.FunctionDef]
    ) -> Set[str]:
        roots: Set[str] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in functions
            ):
                roots.add(node.args[0].id)
        return roots

    def _closure(
        self, roots: Set[str], functions: Dict[str, ast.FunctionDef]
    ) -> Set[str]:
        seen: Set[str] = set()
        frontier = list(roots)
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            for node in ast.walk(functions[name]):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in functions
                    and node.func.id not in seen
                ):
                    frontier.append(node.func.id)
        return seen

    def _check_worker(
        self, func: ast.FunctionDef, path: str
    ) -> Iterator[Finding]:
        params = self._param_names(func)
        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else "nonlocal"
                yield Finding(
                    path,
                    node.lineno,
                    self.id,
                    f"pool worker {func.name}() uses '{kind}' — worker "
                    "state must arrive through arguments",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets: Sequence[ast.expr] = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    mutated = self._mutated_param(target, params)
                    if mutated is not None:
                        yield Finding(
                            path,
                            node.lineno,
                            self.id,
                            f"pool worker {func.name}() mutates argument "
                            f"{mutated!r} — shipped arguments are shared "
                            "or pickled and must stay immutable",
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    mutated = self._mutated_param(target, params)
                    if mutated is not None:
                        yield Finding(
                            path,
                            node.lineno,
                            self.id,
                            f"pool worker {func.name}() deletes from "
                            f"argument {mutated!r}",
                        )

    def _param_names(self, func: ast.FunctionDef) -> Set[str]:
        args = func.args
        names = [
            arg.arg
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        ]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        return set(names)

    def _mutated_param(
        self, target: ast.expr, params: Set[str]
    ) -> Optional[str]:
        """The parameter whose attribute/element ``target`` writes, if any."""
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            base: ast.expr = target
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if isinstance(base, ast.Name) and base.id in params:
                return base.id
        return None


RULES: Tuple[Rule, ...] = (
    GuardedHooksRule(),
    WorkerPurityRule(),
)
