"""Core of the lint framework: project model, rule base, runner.

The framework is deliberately *pure*: modules are parsed with
:mod:`ast`, never imported, so linting cannot execute target code and
works on any checkout.  A :class:`Project` holds every parsed module
under one source root (src-layout: ``<root>/<package>/<module>.py``);
rules inspect modules (:meth:`Rule.check_module`) or the whole project
at once (:meth:`Rule.check_project`, for cross-module invariants like
the routing registry).  :func:`run_lint` applies the rules, routes
findings through the suppression pragmas of :mod:`repro.lint.findings`,
and returns a :class:`LintReport` that renders to text or to the shared
JSON envelope payload (``repro lint --format json``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.lint.findings import (
    Finding,
    Pragma,
    SuppressedFinding,
    parse_pragmas,
)

__all__ = [
    "LintReport",
    "ModuleContext",
    "Project",
    "Rule",
    "all_rules",
    "class_body_assign",
    "default_root",
    "display_path",
    "dotted_name",
    "iter_functions",
    "load_project",
    "parent_map",
    "render_report",
    "report_payload",
    "run_lint",
    "string_constant",
]


@dataclass
class ModuleContext:
    """One parsed source module.

    Attributes:
        path: absolute path of the file.
        relpath: path relative to the project root, POSIX-style
            (``"sim/engine.py"``) — the key rules match scopes on.
        package: first path segment (``"sim"``), ``""`` for top-level
            modules like ``cli.py``.
        tree: the parsed AST.
        source: full source text (pragmas are scanned from its real
            comment tokens).
        lines: source text split into lines.
    """

    path: Path
    relpath: str
    package: str
    tree: ast.Module
    source: str
    lines: List[str]

    @property
    def filename(self) -> str:
        """Base name of the module file (``"engine.py"``)."""
        return self.path.name


@dataclass
class Project:
    """Every module under one source root, parsed once."""

    root: Path
    modules: List[ModuleContext] = field(default_factory=list)

    def module(self, relpath: str) -> Optional[ModuleContext]:
        """The module at ``relpath`` (POSIX, root-relative), if present."""
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None

    def in_package(self, package: str) -> List[ModuleContext]:
        """All modules whose top-level package is ``package``."""
        return [m for m in self.modules if m.package == package]


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id` (the kebab-case name pragmas and ``--rule``
    use), :attr:`summary` (one line for the catalog), and
    :attr:`packages` (top-level package scope; ``None`` means every
    module).  Override :meth:`check_module` for per-module checks or
    :meth:`check_project` for cross-module ones — the runner calls both.
    """

    id: str = ""
    summary: str = ""
    packages: Optional[Tuple[str, ...]] = None

    def applies_to(self, module: ModuleContext) -> bool:
        """Whether ``module`` is inside this rule's package scope."""
        return self.packages is None or module.package in self.packages

    def check_module(
        self, module: ModuleContext, project: Project
    ) -> Iterator[Finding]:
        """Findings for one module (default: none)."""
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Findings needing the whole project at once (default: none)."""
        return iter(())


# ----------------------------------------------------------------------
# Shared AST helpers (used by the rule modules)


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Child -> parent for every node reachable from ``tree``."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def iter_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef]:
    """Every function/method definition in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node  # type: ignore[misc]


def class_body_assign(node: ast.ClassDef, attr: str) -> Optional[ast.expr]:
    """The value assigned to ``attr`` in the class body, if any."""
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == attr:
                    return statement.value
        if isinstance(statement, ast.AnnAssign):
            target = statement.target
            if (
                isinstance(target, ast.Name)
                and target.id == attr
                and statement.value is not None
            ):
                return statement.value
    return None


def string_constant(node: Optional[ast.expr]) -> Optional[str]:
    """The literal string value of a Constant node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


# ----------------------------------------------------------------------
# Project loading


def default_root() -> Path:
    """The installed ``repro`` package's source directory.

    Works from a checkout (``src/repro``) and from an editable install
    alike — it is simply the directory this very module's package lives
    in, two levels up.
    """
    return Path(__file__).resolve().parent.parent


def load_project(root: Path) -> Project:
    """Parse every ``*.py`` under ``root`` into a :class:`Project`.

    Raises ``SyntaxError`` (with the offending filename) if any module
    fails to parse — an unparseable tree cannot be certified.
    """
    root = root.resolve()
    project = Project(root=root)
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        relpath = path.relative_to(root).as_posix()
        text = path.read_text()
        tree = ast.parse(text, filename=str(path))
        package = relpath.split("/")[0] if "/" in relpath else ""
        project.modules.append(
            ModuleContext(
                path=path,
                relpath=relpath,
                package=package,
                tree=tree,
                source=text,
                lines=text.splitlines(),
            )
        )
    return project


# ----------------------------------------------------------------------
# Rule registry


def all_rules() -> Dict[str, Rule]:
    """Every registered rule, keyed by id, in catalog order.

    The rule modules are imported here (not at package import) so the
    framework core stays dependency-free for embedding and tests.
    """
    from repro.lint import (  # noqa: PLC0415 - deliberate late binding
        rules_determinism,
        rules_engine,
        rules_registry,
        rules_spec,
    )

    catalog: Dict[str, Rule] = {}
    for module_rules in (
        rules_determinism.RULES,
        rules_engine.RULES,
        rules_spec.RULES,
        rules_registry.RULES,
    ):
        for rule in module_rules:
            if rule.id in catalog:
                raise ValueError(f"duplicate rule id {rule.id!r}")
            catalog[rule.id] = rule
    return catalog


# ----------------------------------------------------------------------
# Runner and report


@dataclass
class LintReport:
    """Outcome of one lint run: findings, suppressions, rules applied."""

    root: str
    rules: Dict[str, str]
    modules_checked: int
    findings: List[Finding]
    suppressed: List[SuppressedFinding]

    @property
    def ok(self) -> bool:
        """True when no active (unsuppressed) finding remains."""
        return not self.findings


def display_path(path: Path) -> str:
    """Path relative to the current directory when possible."""
    try:
        return path.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    root: Optional[Path] = None,
    *,
    rules: Optional[Sequence[str]] = None,
    project: Optional[Project] = None,
) -> LintReport:
    """Lint every module under ``root`` and return the report.

    Args:
        root: source tree to scan; defaults to the installed package
            (:func:`default_root`).  Ignored when ``project`` is given.
        rules: subset of rule ids to run (``None`` = the full catalog).
            Unknown ids raise ``ValueError``.
        project: a pre-loaded :class:`Project` (fixture tests).
    """
    catalog = all_rules()
    if rules is not None:
        unknown = [rule for rule in rules if rule not in catalog]
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        selected = {rule_id: catalog[rule_id] for rule_id in rules}
    else:
        selected = catalog
    if project is None:
        project = load_project(root if root is not None else default_root())

    known_ids = tuple(catalog)
    raw: List[Finding] = []
    pragma_problems: List[Finding] = []
    pragmas_by_path: Dict[str, List[Pragma]] = {}
    for module in project.modules:
        display = display_path(module.path)
        pragmas, problems = parse_pragmas(display, module.source, known_ids)
        pragmas_by_path[display] = pragmas
        pragma_problems.extend(problems)
        for rule in selected.values():
            if rule.applies_to(module):
                raw.extend(rule.check_module(module, project))
    for rule in selected.values():
        raw.extend(rule.check_project(project))

    active: List[Finding] = []
    suppressed: List[SuppressedFinding] = []
    for finding in raw:
        pragma = _covering_pragma(
            pragmas_by_path.get(finding.path, []), finding
        )
        if pragma is not None:
            suppressed.append(SuppressedFinding(finding, pragma.reason))
        else:
            active.append(finding)
    # Malformed pragmas are never suppressible — a pragma cannot excuse
    # itself — and surface even when a rule subset is selected, so a
    # broken justification fails the same gate everywhere.
    active.extend(pragma_problems)
    active.sort(key=lambda f: (f.path, f.line, f.rule))
    suppressed.sort(key=lambda s: (s.finding.path, s.finding.line, s.finding.rule))
    return LintReport(
        root=display_path(project.root),
        rules={rule.id: rule.summary for rule in selected.values()},
        modules_checked=len(project.modules),
        findings=active,
        suppressed=suppressed,
    )


def _covering_pragma(
    pragmas: Iterable[Pragma], finding: Finding
) -> Optional[Pragma]:
    for pragma in pragmas:
        if pragma.covers(finding.line, finding.rule):
            return pragma
    return None


def render_report(report: LintReport, *, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in report.findings]
    if verbose and report.suppressed:
        lines.append("suppressed:")
        for entry in report.suppressed:
            lines.append(f"  {entry.finding.render()} — allowed: {entry.reason}")
    summary = (
        f"repro lint: {len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{report.modules_checked} modules, {len(report.rules)} rules"
    )
    if report.ok:
        summary = (
            f"repro lint: clean — {report.modules_checked} modules, "
            f"{len(report.rules)} rules, {len(report.suppressed)} suppressed"
        )
    lines.append(summary)
    return "\n".join(lines)


def report_payload(report: LintReport) -> Dict[str, object]:
    """The JSON document body (envelope keys are attached by the CLI)."""
    return {
        "kind": "lint",
        "root": report.root,
        "rules": dict(report.rules),
        "modules_checked": report.modules_checked,
        "ok": report.ok,
        "findings": [finding.to_dict() for finding in report.findings],
        "suppressed": [entry.to_dict() for entry in report.suppressed],
    }
