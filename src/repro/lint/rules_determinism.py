"""Determinism rules: seeded RNGs, no wall clock, stable hashes.

These three rules police the properties that make golden digests
meaningful: every random draw must come from a seed-derived generator,
no digest-relevant value may depend on the wall clock, and any use of
the builtin ``hash()`` on a path that feeds routing decisions or result
digests must be justified as hash-seed independent (int-only operands —
CPython hashes ints and tuples of ints identically under every
``PYTHONHASHSEED``, but strings, bytes, and datetimes it does not).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.framework import (
    ModuleContext,
    Project,
    Rule,
    display_path,
    dotted_name,
)

__all__ = [
    "RULES",
    "HashStabilityRule",
    "NoWallclockRule",
    "SeededRngRule",
]

#: Packages whose code runs inside (or decides) a simulation: a module-
#: global RNG draw here silently couples results to import order.
_RNG_PACKAGES = ("sim", "routing", "traffic", "resilience", "core", "topology")

#: Packages whose outputs feed result digests or cached artifacts.
_CLOCK_PACKAGES = _RNG_PACKAGES + ("analysis", "experiments", "obs")

#: Packages where a builtin ``hash()`` call can reach a routing decision
#: or a digested value.
_HASH_PACKAGES = _RNG_PACKAGES + ("analysis",)


def _import_aliases(tree: ast.Module, module_name: str) -> Set[str]:
    """Local names bound to ``module_name`` by plain imports."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module_name:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _from_imports(tree: ast.Module, module_name: str) -> Dict[str, str]:
    """Local name -> imported attribute for ``from module import ...``."""
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module_name:
            for alias in node.names:
                names[alias.asname or alias.name] = alias.name
    return names


class SeededRngRule(Rule):
    """No module-global ``random.*`` draws; every ``Random()`` is seeded.

    The simulator's contract is that every stochastic choice flows from
    an explicit seed: workloads seed one ``random.Random`` per source,
    fault schedules derive theirs from the spec, and selection policies
    receive theirs through :class:`~repro.routing.selection.SelectionContext`.
    A call on the module-global ``random`` (or an unseeded/OS-entropy
    generator) breaks bit-reproducibility invisibly.
    """

    id = "seeded-rng"
    summary = (
        "no module-global random.* draws or unseeded Random() in "
        "simulation packages; RNGs are parameters or seed-derived"
    )
    packages = _RNG_PACKAGES

    def check_module(
        self, module: ModuleContext, project: Project
    ) -> Iterator[Finding]:
        aliases = _import_aliases(module.tree, "random")
        from_random = _from_imports(module.tree, "random")
        path = display_path(module.path)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(node, path, aliases, from_random)
            elif isinstance(node, ast.keyword):
                yield from self._check_keyword(node, path, aliases, from_random)

    def _check_call(
        self,
        node: ast.Call,
        path: str,
        aliases: Set[str],
        from_random: Dict[str, str],
    ) -> Iterator[Finding]:
        func = node.func
        attr: str = ""
        if isinstance(func, ast.Attribute):
            base = dotted_name(func.value)
            if base is None or base not in aliases:
                return
            attr = func.attr
        elif isinstance(func, ast.Name) and func.id in from_random:
            attr = from_random[func.id]
        else:
            return
        if attr == "Random":
            if not node.args and not node.keywords:
                yield Finding(
                    path,
                    node.lineno,
                    self.id,
                    "unseeded random.Random() — pass an explicit seed "
                    "derived from the experiment spec",
                )
            return
        if attr == "SystemRandom":
            yield Finding(
                path,
                node.lineno,
                self.id,
                "random.SystemRandom draws OS entropy; results become "
                "unreproducible",
            )
            return
        yield Finding(
            path,
            node.lineno,
            self.id,
            f"module-global random.{attr}() call — draw from a "
            "seed-derived random.Random passed in instead",
        )

    def _check_keyword(
        self,
        node: ast.keyword,
        path: str,
        aliases: Set[str],
        from_random: Dict[str, str],
    ) -> Iterator[Finding]:
        if node.arg != "default_factory":
            return
        value = dotted_name(node.value)
        if value is None:
            return
        is_random_cls = any(value == f"{alias}.Random" for alias in aliases) or (
            value in from_random and from_random[value] == "Random"
        )
        if is_random_cls:
            yield Finding(
                path,
                node.value.lineno,
                self.id,
                "default_factory=random.Random constructs an unseeded "
                "RNG per instance",
            )


#: ``module.attr`` call targets that read the wall clock.  Matched on
#: the trailing two components so ``datetime.datetime.now`` hits too.
_WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
    "time.strftime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
}

#: ``from X import Y`` forms that resolve to a wall-clock read.
_WALLCLOCK_FROM = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "ctime"),
    ("time", "localtime"),
    ("time", "gmtime"),
    ("time", "strftime"),
}


class NoWallclockRule(Rule):
    """No wall-clock reads in digest-relevant packages.

    ``time.perf_counter`` is deliberately *allowed*: it is a monotonic
    duration meter and only ever lands in timing metadata
    (``wall_time_s``, bench reports), never in a digested result field.
    ``time.time()`` and ``datetime.now()`` are not — a timestamp that
    leaks into a result, spec, or cache key breaks bit-identity between
    runs.  Genuinely metadata-only stamps (the run manifest's
    ``created_unix``) carry an ``allow[no-wallclock]`` pragma naming
    that justification.
    """

    id = "no-wallclock"
    summary = (
        "no time.time()/datetime.now() in digest-relevant packages "
        "(perf_counter durations are fine; metadata stamps need a pragma)"
    )
    packages = _CLOCK_PACKAGES

    def check_module(
        self, module: ModuleContext, project: Project
    ) -> Iterator[Finding]:
        from_time = _from_imports(module.tree, "time")
        path = display_path(module.path)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                name = dotted_name(func)
                if name is None:
                    continue
                parts = name.split(".")
                tail = ".".join(parts[-2:])
                if tail in _WALLCLOCK_CALLS:
                    yield Finding(
                        path,
                        node.lineno,
                        self.id,
                        f"wall-clock read {name}() in a digest-relevant "
                        "package",
                    )
            elif isinstance(func, ast.Name):
                target = from_time.get(func.id)
                if target is not None and ("time", target) in _WALLCLOCK_FROM:
                    yield Finding(
                        path,
                        node.lineno,
                        self.id,
                        f"wall-clock read time.{target}() in a "
                        "digest-relevant package",
                    )


class HashStabilityRule(Rule):
    """Builtin ``hash()`` on digest paths needs an int-only justification.

    CPython randomizes ``str``/``bytes`` hashing per interpreter
    (``PYTHONHASHSEED``), so a routing decision or cache key derived
    from ``hash()`` is only reproducible when every operand hashes
    seed-independently — ints, and tuples/frozensets built solely from
    them.  Every ``hash()`` call in scope must therefore carry an
    ``allow[hash-stability]`` pragma asserting exactly that, e.g. the
    lane chooser in ``routing/virtual_channels.py`` hashing a pair of
    int-tuple node ids.
    """

    id = "hash-stability"
    summary = (
        "builtin hash() reachable from routing/digest paths must carry "
        "an allow pragma asserting int-only operands"
    )
    packages = _HASH_PACKAGES

    def check_module(
        self, module: ModuleContext, project: Project
    ) -> Iterator[Finding]:
        if _binds_name(module.tree, "hash"):
            return
        path = display_path(module.path)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield Finding(
                    path,
                    node.lineno,
                    self.id,
                    "builtin hash() depends on PYTHONHASHSEED for "
                    "str/bytes operands — justify int-only operands with "
                    "an allow[hash-stability] pragma",
                )


def _binds_name(tree: ast.Module, name: str) -> bool:
    """Whether the module rebinds ``name`` (shadowing the builtin)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name == name:
                return True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return True
    return False


RULES: Tuple[Rule, ...] = (
    SeededRngRule(),
    NoWallclockRule(),
    HashStabilityRule(),
)
