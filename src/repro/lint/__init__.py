"""Determinism & invariant lint: a pure-AST static-analysis framework.

Every result this reproduction publishes is trusted because runs are
bit-identical to golden digests — and the invariants that guarantee
determinism (seed-derived RNGs, ``is not None``-guarded engine hooks,
frozen content-hashed specs, hash-stable routing decisions) were until
now enforced purely by convention.  This package gives the *codebase*
invariants the same static treatment the routing algorithms get from
:mod:`repro.verify`: a rule registry, per-finding ``file:line:rule-id``
reports, JSON envelope output, and inline suppression pragmas that
require a written justification::

    value = hash((src, dest))  # repro-lint: allow[hash-stability] int-only operands

The framework never imports the code it checks — modules are parsed
with :mod:`ast` only, so the linter runs anywhere the sources exist and
cannot be fooled (or broken) by import-time side effects.

Entry points: ``repro lint`` on the command line, or
:func:`run_lint` / :func:`default_root` programmatically.  Rule catalog
and pragma grammar are documented in ``docs/static_analysis.md``.
"""

from __future__ import annotations

from repro.lint.findings import (
    Finding,
    Pragma,
    SuppressedFinding,
    parse_pragmas,
)
from repro.lint.framework import (
    LintReport,
    ModuleContext,
    Project,
    Rule,
    all_rules,
    default_root,
    load_project,
    render_report,
    report_payload,
    run_lint,
)

__all__ = [
    "Finding",
    "LintReport",
    "ModuleContext",
    "Pragma",
    "Project",
    "Rule",
    "SuppressedFinding",
    "all_rules",
    "default_root",
    "load_project",
    "parse_pragmas",
    "render_report",
    "report_payload",
    "run_lint",
]
