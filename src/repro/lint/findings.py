"""Findings and suppression pragmas for the lint framework.

A finding is one ``file:line:rule-id`` violation.  A pragma is an inline
comment that suppresses one or more rules on its own line *and the line
below it* (so both trailing comments and a comment line directly above
the flagged statement work)::

    lane = hash((src, dest))  # repro-lint: allow[hash-stability] int-only operands

    # repro-lint: allow[no-wallclock] manifest stamp, never digested
    created = time.time()

The justification after the closing bracket is **mandatory** — a pragma
with no reason is itself reported (rule ``bad-pragma``), as is one
naming a rule id the registry does not know.  Several rules may share
one pragma: ``allow[rule-a,rule-b] reason``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "BAD_PRAGMA",
    "Finding",
    "Pragma",
    "SuppressedFinding",
    "parse_pragmas",
]

#: Rule id under which malformed pragmas are reported.  Not suppressible.
BAD_PRAGMA = "bad-pragma"

#: Grammar of an allow pragma comment (examples in the module docstring).
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<verb>[a-z-]+)"
    r"(?:\[(?P<rules>[^\]]*)\])?"
    r"\s*(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        """The canonical one-line report: ``path:line: [rule] message``."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (keys: path, line, rule, message)."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True)
class Pragma:
    """A parsed ``# repro-lint: allow[...]`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str

    def covers(self, line: int, rule: str) -> bool:
        """Whether this pragma suppresses ``rule`` on ``line``.

        A pragma applies to its own line and to the line directly below
        it, so it can trail the flagged code or sit just above it.
        """
        return rule in self.rules and line in (self.line, self.line + 1)


@dataclass(frozen=True)
class SuppressedFinding:
    """A finding silenced by a pragma, kept for the report's audit trail."""

    finding: Finding
    reason: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form: the finding plus the pragma's justification."""
        payload = self.finding.to_dict()
        payload["reason"] = self.reason
        return payload


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    """``(line, comment_text)`` for every real comment token.

    Tokenizing (rather than scanning raw lines) keeps pragma examples
    inside docstrings and string literals from being parsed as pragmas.
    """
    comments: List[Tuple[int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except tokenize.TokenError:  # pragma: no cover - ast parsed it already
        pass
    return comments


def parse_pragmas(
    path: str, source: str, known_rules: Tuple[str, ...]
) -> Tuple[List[Pragma], List[Finding]]:
    """Extract every pragma from a module's source text.

    Returns ``(pragmas, problems)`` where problems are ``bad-pragma``
    findings: an unknown verb, a missing rule list, an unknown rule id,
    or — the one this framework exists to insist on — a missing
    justification string.
    """
    pragmas: List[Pragma] = []
    problems: List[Finding] = []
    for lineno, text in _comment_tokens(source):
        if "repro-lint" not in text:
            continue
        match = _PRAGMA_RE.search(text)
        if match is None:
            problems.append(
                Finding(path, lineno, BAD_PRAGMA, "unparseable repro-lint pragma")
            )
            continue
        verb = match.group("verb")
        if verb != "allow":
            problems.append(
                Finding(
                    path,
                    lineno,
                    BAD_PRAGMA,
                    f"unknown pragma verb {verb!r} (only 'allow' is defined)",
                )
            )
            continue
        raw_rules = match.group("rules")
        if raw_rules is None:
            problems.append(
                Finding(
                    path,
                    lineno,
                    BAD_PRAGMA,
                    "allow pragma needs a rule list: allow[rule-id] reason",
                )
            )
            continue
        rules = tuple(
            part.strip() for part in raw_rules.split(",") if part.strip()
        )
        if not rules:
            problems.append(
                Finding(path, lineno, BAD_PRAGMA, "allow pragma names no rules")
            )
            continue
        unknown = [rule for rule in rules if rule not in known_rules]
        if unknown:
            problems.append(
                Finding(
                    path,
                    lineno,
                    BAD_PRAGMA,
                    f"pragma names unknown rule(s): {', '.join(unknown)}",
                )
            )
            continue
        reason = match.group("reason").strip().lstrip("—:- ").strip()
        if not reason:
            problems.append(
                Finding(
                    path,
                    lineno,
                    BAD_PRAGMA,
                    "allow pragma must carry a justification: "
                    "allow[rule-id] <why this is safe>",
                )
            )
            continue
        pragmas.append(Pragma(lineno, rules, reason))
    return pragmas, problems
