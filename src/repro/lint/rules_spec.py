"""Spec-hygiene rule: content-hashed spec dataclasses stay frozen.

The executor's result cache and every archived artifact key on the
sha256 content hash of an :class:`~repro.analysis.executor.ExperimentSpec`
and the spec dataclasses nested inside it (``ConfigSpec``,
``ResilienceSpec``, ``ObsSpec``, ...).  A spec that can mutate after
hashing — or that carries a mutable default silently shared between
instances — corrupts cache keys and archived results.  The naming
convention is load-bearing: every ``@dataclass`` whose name ends in
``Spec`` is part of the hashed vocabulary and must be ``frozen=True``
with immutable defaults.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.framework import (
    ModuleContext,
    Project,
    Rule,
    display_path,
    dotted_name,
)

__all__ = ["RULES", "FrozenSpecRule"]

#: Calls whose result is a fresh mutable container.
_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray"}


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.expr]:
    """The ``@dataclass`` decorator node, bare or called, if present."""
    for decorator in node.decorator_list:
        name = dotted_name(
            decorator.func if isinstance(decorator, ast.Call) else decorator
        )
        if name is not None and name.split(".")[-1] == "dataclass":
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if (
            keyword.arg == "frozen"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
        ):
            return True
    return False


def _mutable_default(value: ast.expr) -> Optional[str]:
    """Why ``value`` is a mutable (or shared-mutable) default, if it is."""
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return "mutable literal default"
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name in _MUTABLE_FACTORIES:
            return f"mutable default {name}()"
        if name is not None and name.split(".")[-1] == "field":
            for keyword in value.keywords:
                if keyword.arg == "default_factory":
                    factory = dotted_name(keyword.value)
                    if factory in _MUTABLE_FACTORIES:
                        return f"default_factory={factory} (mutable)"
    return None


class FrozenSpecRule(Rule):
    """``*Spec`` dataclasses must be frozen with immutable defaults."""

    id = "frozen-spec"
    summary = (
        "dataclasses feeding the ExperimentSpec content hash (*Spec) "
        "must be frozen=True with no mutable defaults"
    )
    packages = None  # specs may live in any package

    def check_module(
        self, module: ModuleContext, project: Project
    ) -> Iterator[Finding]:
        path = display_path(module.path)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Spec"):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                continue
            if not _is_frozen(decorator):
                yield Finding(
                    path,
                    node.lineno,
                    self.id,
                    f"spec dataclass {node.name} is not frozen=True — "
                    "hashed specs must be immutable",
                )
            yield from self._check_defaults(node, path)

    def _check_defaults(
        self, node: ast.ClassDef, path: str
    ) -> Iterator[Finding]:
        for statement in node.body:
            value: Optional[ast.expr] = None
            field_name = ""
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                value = statement.value
                field_name = statement.target.id
            elif isinstance(statement, ast.Assign) and len(
                statement.targets
            ) == 1 and isinstance(statement.targets[0], ast.Name):
                value = statement.value
                field_name = statement.targets[0].id
            if value is None:
                continue
            why = _mutable_default(value)
            if why is not None:
                yield Finding(
                    path,
                    statement.lineno,
                    self.id,
                    f"spec dataclass {node.name}.{field_name} has a "
                    f"{why} — spec fields must default to immutable "
                    "values",
                )


RULES: Tuple[Rule, ...] = (FrozenSpecRule(),)
