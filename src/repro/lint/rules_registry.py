"""Registry-invariant rules absorbed from ``scripts/lint_registry.py``.

The four checks the ad-hoc registry linter enforced since the static
certification suite landed, re-expressed as framework rules so they
share the pragma/report/CI machinery with the determinism rules:

1. ``uses-in-channel`` — every routing class declares
   ``uses_in_channel`` in its own body (the route cache keys on it;
   a silently inherited value corrupts cached decisions).
2. ``registry-canonical`` — every ``_FACTORIES`` key is already
   canonical (lookups canonicalize before indexing, so a non-canonical
   key is unreachable).
3. ``registry-class-name`` — a bare-class factory whose class pins a
   ``name`` literal must match its registry key (reports and legends
   would otherwise disagree with the CLI spelling).
4. ``all-complete`` — every module in the API-surface packages defines
   a literal ``__all__`` that is complete and accurate.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.framework import (
    ModuleContext,
    Project,
    Rule,
    class_body_assign,
    display_path,
    string_constant,
)

__all__ = [
    "RULES",
    "AllCompleteRule",
    "RegistryCanonicalRule",
    "RegistryClassNameRule",
    "UsesInChannelRule",
    "canonical_name",
]


def canonical_name(name: str) -> str:
    """Mirror of :func:`repro.routing.registry.canonical_name`.

    Duplicated on purpose: the linter must not import the code it
    checks, and the canonicalization is a one-liner pinned by tests.
    """
    return name.strip().lower().replace("_", "-")


class UsesInChannelRule(Rule):
    """Routing classes declare ``uses_in_channel`` in their own body."""

    id = "uses-in-channel"
    summary = (
        "every routing class declares uses_in_channel in its own class "
        "body (the route cache keys on it)"
    )
    packages = ("routing",)

    def check_module(
        self, module: ModuleContext, project: Project
    ) -> Iterator[Finding]:
        path = display_path(module.path)
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Routing"):
                continue
            if node.name == "RoutingAlgorithm":
                continue
            if class_body_assign(node, "uses_in_channel") is None:
                yield Finding(
                    path,
                    node.lineno,
                    self.id,
                    f"class {node.name} does not declare uses_in_channel "
                    "in its body",
                )


def _factories_dict(tree: ast.Module) -> Optional[ast.Dict]:
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "_FACTORIES":
                if isinstance(value, ast.Dict):
                    return value
    return None


def _registry_module(project: Project) -> Optional[ModuleContext]:
    return project.module("routing/registry.py")


class RegistryCanonicalRule(Rule):
    """``_FACTORIES`` keys are string literals in canonical form."""

    id = "registry-canonical"
    summary = (
        "every _FACTORIES key in routing/registry.py is a canonical "
        "string literal (lookups canonicalize before indexing)"
    )
    packages = ("routing",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        registry = _registry_module(project)
        if registry is None:
            return
        path = display_path(registry.path)
        factories = _factories_dict(registry.tree)
        if factories is None:
            yield Finding(path, 1, self.id, "_FACTORIES dict not found")
            return
        for key_node in factories.keys:
            key = string_constant(key_node)
            if key is None:
                yield Finding(
                    path,
                    key_node.lineno if key_node is not None else 1,
                    self.id,
                    "_FACTORIES key is not a string literal",
                )
                continue
            if canonical_name(key) != key:
                yield Finding(
                    path,
                    key_node.lineno,
                    self.id,
                    f"key {key!r} is not canonical (canonical form: "
                    f"{canonical_name(key)!r})",
                )


class RegistryClassNameRule(Rule):
    """Bare-class factories pin a ``name`` literal matching their key."""

    id = "registry-class-name"
    summary = (
        "a bare-class _FACTORIES value whose class pins a name literal "
        "must match its registry key"
    )
    packages = ("routing",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        registry = _registry_module(project)
        if registry is None:
            return
        factories = _factories_dict(registry.tree)
        if factories is None:
            return
        path = display_path(registry.path)
        class_names = self._class_names(project)
        for key_node, value_node in zip(factories.keys, factories.values):
            key = string_constant(key_node)
            if key is None or not isinstance(value_node, ast.Name):
                continue
            declared = class_names.get(value_node.id)
            if declared is not None and declared != key:
                yield Finding(
                    path,
                    value_node.lineno,
                    self.id,
                    f"class {value_node.id} pins name={declared!r} but is "
                    f"registered as {key!r}",
                )

    def _class_names(self, project: Project) -> Dict[str, Optional[str]]:
        """Class name -> its class-body ``name`` literal (or None)."""
        names: Dict[str, Optional[str]] = {}
        for module in project.in_package("routing"):
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    names[node.name] = string_constant(
                        class_body_assign(node, "name")
                    )
        return names


#: Packages whose modules form the public API surface and must carry a
#: complete literal ``__all__``.
_ALL_PACKAGES = ("routing", "core", "verify", "obs", "lint", "synth")


class AllCompleteRule(Rule):
    """API-surface modules define a complete, accurate literal ``__all__``."""

    id = "all-complete"
    summary = (
        "modules in routing/core/verify/obs/lint/synth define a literal "
        "__all__ that is complete and accurate"
    )
    packages = _ALL_PACKAGES

    def check_module(
        self, module: ModuleContext, project: Project
    ) -> Iterator[Finding]:
        path = display_path(module.path)
        declared = self._all_names(module.tree)
        if declared is None:
            yield Finding(path, 1, self.id, "missing or non-literal __all__")
            return
        defined = self._top_level_definitions(module.tree)
        for name in sorted(declared):
            if name not in defined:
                yield Finding(
                    path,
                    1,
                    self.id,
                    f"__all__ lists {name!r}, which is not defined at "
                    "module top level",
                )
        public = {
            node.name
            for node in module.tree.body
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
            and not node.name.startswith("_")
        }
        for name in sorted(public - declared):
            yield Finding(
                path,
                1,
                self.id,
                f"public definition {name!r} is missing from __all__",
            )

    def _all_names(self, tree: ast.Module) -> Optional[Set[str]]:
        for node in tree.body:
            if isinstance(node, ast.Assign):
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if "__all__" in targets:
                    if not isinstance(node.value, (ast.List, ast.Tuple)):
                        return None
                    names: Set[str] = set()
                    for element in node.value.elts:
                        text = string_constant(element)
                        if text is None:
                            return None
                        names.add(text)
                    return names
        return None

    def _top_level_definitions(self, tree: ast.Module) -> Set[str]:
        """Names bound at module top level: defs, classes, assigns, imports."""
        defined: Set[str] = set()
        for node in tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                defined.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        defined.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    defined.add(node.target.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    defined.add(alias.asname or alias.name.split(".")[0])
        if "__getattr__" in defined:
            # PEP 562 lazy re-exports: string keys of a top-level _LAZY
            # dict are resolvable attributes even though never bound.
            for node in tree.body:
                if not isinstance(node, ast.Assign):
                    continue
                if not any(
                    isinstance(t, ast.Name) and t.id == "_LAZY"
                    for t in node.targets
                ):
                    continue
                if isinstance(node.value, ast.Dict):
                    for key in node.value.keys:
                        text = string_constant(key)
                        if text is not None:
                            defined.add(text)
        return defined


RULES: Tuple[Rule, ...] = (
    UsesInChannelRule(),
    RegistryCanonicalRule(),
    RegistryClassNameRule(),
    AllCompleteRule(),
)
