"""Command-line interface: ``turnmodel`` (also installed as ``repro``).

Subcommands::

    turnmodel tables                    # the paper's tables and counts
    turnmodel figure 14 --preset quick  # reproduce a performance figure
    turnmodel simulate --topology mesh:8x8 --algorithm negative-first \\
              --pattern transpose --load 0.2
    turnmodel sweep --topology mesh:16x16 --algorithm xy negative-first \\
              --pattern transpose --jobs 4 --cache-dir .sweep-cache
    turnmodel resilience --preset quick # fault-injection delivered-fraction sweep
    turnmodel deadlock --figure 1       # watch an unsafe algorithm deadlock
    turnmodel verify --all              # statically certify every algorithm
    turnmodel synth --topology mesh:4x4 # synthesize routing algorithms
    turnmodel lint                      # determinism & invariant lint over src
    turnmodel bench --quick             # engine cycles/sec benchmark
    turnmodel report runs/manifest-*.json   # metrics report from manifests
    turnmodel list                      # available algorithms and patterns

``simulate``, ``sweep``, and ``resilience`` accept ``--obs`` to collect
bit-invisible channel/latency/timeline metrics; with ``--manifest-dir``
each point also writes a structured run manifest that ``report`` renders
later.  Every ``--out`` JSON artifact carries the shared envelope
(``schema_version``/``tool``/``spec_hash``; see
``docs/observability.md``).

This module is the argument-parsing shell only; programmatic users
should import from :mod:`repro.api` (``parse_topology`` is re-exported
here for backward compatibility).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.routing.registry import available_algorithms, make_routing
from repro.sim.config import SimulationConfig
from repro.sim.simulator import simulate
from repro.topology.spec import parse_topology

__all__ = ["main", "parse_topology"]


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments import tables

    which = args.which
    if which in ("all", "theorem1"):
        print("Theorem 1: minimum prohibited turns")
        print(tables.theorem1_table())
        print()
    if which in ("all", "enumeration"):
        candidates, free, unique, rendered = tables.enumeration_table()
        print("Section 3: one-turn-per-cycle prohibitions in a 2D mesh")
        print(rendered)
        print()
    if which in ("all", "adaptiveness"):
        print("Section 3.4: degree of adaptiveness (6x6 mesh)")
        print(tables.adaptiveness_table())
        print()
    if which in ("all", "pcube"):
        print("Section 5: p-cube routing example in a binary 10-cube")
        _, rendered = tables.pcube_example_table()
        print(rendered)
        print()
    if which in ("all", "pathlen"):
        print("Section 6: average minimal path lengths")
        print(tables.path_length_table())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import figure13, figure14, figure15, figure16

    drivers = {13: figure13, 14: figure14, 15: figure15, 16: figure16}
    driver = drivers.get(args.number)
    if driver is None:
        print(f"no driver for figure {args.number}; choose 13-16", file=sys.stderr)
        return 2
    result = driver(
        preset=args.preset,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    print(result.render())
    if args.out:
        from repro.analysis.results_io import save_json

        save_json(result, args.out)
        print(f"[saved to {args.out}]")
    return 0


def _obs_spec_for_windows(warmup: int, measure: int, drain: int):
    from repro.experiments.presets import _preset_obs_spec

    return _preset_obs_spec(warmup + measure + drain)


def _cmd_simulate(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    config = SimulationConfig(
        warmup_cycles=args.warmup,
        measure_cycles=args.measure,
        drain_cycles=args.drain,
        buffer_depth=args.buffer_depth,
    )
    collector = None
    if args.obs:
        from repro.obs.metrics import MetricsCollector

        collector = MetricsCollector(
            _obs_spec_for_windows(args.warmup, args.measure, args.drain)
        )
    result = simulate(
        topology,
        args.algorithm,
        args.pattern,
        offered_load=args.load,
        config=config,
        seed=args.seed,
        obs=collector,
        core=args.core,
    )
    print(result.summary())
    print(f"  avg hops:        {result.avg_hops:.2f}")
    print(f"  queue delay:     {result.avg_queue_delay_cycles:.1f} cycles")
    print(f"  injected/done:   {result.total_injected}/{result.total_delivered}")
    if collector is not None:
        from repro.obs.report import render_channel_heatmap, render_timeline_table

        summary = collector.summary()
        if summary["channels"] is not None:
            print()
            print(render_channel_heatmap(summary["channels"]))
        if summary["timeline"] is not None:
            print()
            print(render_timeline_table(summary["timeline"]))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.executor import ProgressPrinter, SweepExecutor
    from repro.analysis.report import render_series_table
    from repro.analysis.sweep import default_loads
    from repro.analysis.results_io import sweep_run_to_dict

    if args.loads:
        loads = args.loads
    else:
        loads = default_loads(args.load_start, args.load_stop, args.load_count)
    config = SimulationConfig(
        warmup_cycles=args.warmup,
        measure_cycles=args.measure,
        drain_cycles=args.drain,
        buffer_depth=args.buffer_depth,
    )
    obs = (
        _obs_spec_for_windows(args.warmup, args.measure, args.drain)
        if args.obs
        else None
    )
    hooks = ProgressPrinter() if args.progress else None
    with SweepExecutor(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        hooks=hooks,
        require_certification=args.certify,
        manifest_dir=args.manifest_dir,
    ) as executor:
        series_list = []
        for algorithm in args.algorithm:
            series = executor.sweep(
                args.topology,
                algorithm,
                args.pattern,
                loads,
                config=config,
                seed=args.seed,
                stop_after_saturation=args.stop_after_saturation,
                obs=obs,
            )
            series_list.append(series)
            print(render_series_table(series))
            print()
        effective_jobs = executor.jobs
    if args.out:
        from repro.obs.envelope import save_envelope

        payload = sweep_run_to_dict(
            series_list,
            topology=args.topology,
            pattern=args.pattern,
            loads=list(loads),
            seed=args.seed,
            jobs=effective_jobs,
        )
        save_envelope(payload, "sweep", args.out)
        print(f"[saved to {args.out}]")
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    from repro.analysis.executor import ProgressPrinter, SweepExecutor
    from repro.experiments.presets import get_fault_sweep_preset
    from repro.resilience import fault_sweep, render_fault_table

    preset = get_fault_sweep_preset(args.preset)
    topology = args.topology or preset.topology()
    algorithms = args.algorithm or list(preset.algorithms)
    load = args.load if args.load is not None else preset.load
    faults = (
        tuple(args.faults) if args.faults is not None else preset.fault_counts
    )
    config = preset.sim_config(
        **{
            key: value
            for key, value in (
                ("warmup_cycles", args.warmup),
                ("measure_cycles", args.measure),
                ("drain_cycles", args.drain),
            )
            if value is not None
        }
    )
    hooks = ProgressPrinter() if args.progress else None
    obs = (
        _obs_spec_for_windows(
            config.warmup_cycles, config.measure_cycles, config.drain_cycles
        )
        if args.obs
        else None
    )
    with SweepExecutor(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        hooks=hooks,
        manifest_dir=args.manifest_dir,
    ) as executor:
        sweep = fault_sweep(
            topology,
            algorithms,
            args.pattern,
            load,
            faults,
            config=config,
            seed=args.seed,
            fault_seed=args.fault_seed,
            policy=args.policy or preset.policy,
            heal_after=args.heal_after,
            recertify=not args.no_recertify,
            executor=executor,
            obs=obs,
        )
    print(render_fault_table(sweep))
    if args.out:
        from repro.obs.envelope import save_envelope

        save_envelope(sweep.to_dict(), "resilience", args.out)
        print(f"[saved to {args.out}]")
    return 0


def _cmd_deadlock(args: argparse.Namespace) -> int:
    from repro.sim.deadlock import run_deadlock_demo, run_figure4_demo

    if args.figure == 1:
        result = run_deadlock_demo()
        name = "unrestricted adaptive routing (Figure 1)"
    else:
        result = run_figure4_demo()
        name = "the Figure 4 faulty prohibition"
    verdict = "DEADLOCKED" if result.deadlocked else "completed (unexpected!)"
    print(f"{name}: {verdict} after delivering {result.total_delivered} packets")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.routing.registry import canonical_name
    from repro.verify import default_targets, verify_all

    if args.all or (not args.topology and not args.algorithm):
        targets = default_targets()
    else:
        algorithms = (
            [canonical_name(name) for name in args.algorithm]
            if args.algorithm
            else None
        )
        targets = default_targets(
            topologies=args.topology or None, algorithms=algorithms
        )
        if not targets:
            print(
                "no targets match the given --topology/--algorithm filters",
                file=sys.stderr,
            )
            return 2
    report = verify_all(targets)
    print(report.render())
    for target in report.targets:
        for check in target.refutations():
            rendered = (
                check.certificate.data.get("rendered")
                if check.certificate is not None
                else None
            )
            if rendered:
                print(f"\n{target.target} — {check.check} witness:")
                print(rendered)
    if args.out:
        from repro.obs.envelope import save_envelope

        save_envelope(report.to_dict(), "verify", args.out)
        print(f"[saved to {args.out}]")
    if not report.ok:
        for target in report.unexpected():
            print(
                f"UNEXPECTED: {target.target} is {target.verdict}, "
                f"expected {target.expect}",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.synth import SynthSpec, render_synthesis, run_synthesis

    kwargs = dict(
        topology=args.topology,
        max_candidates=args.max_candidates,
        certify_representatives_only=not args.cross_check,
        simulate=args.simulate,
        pattern=args.pattern,
        seed=args.seed,
    )
    if args.loads:
        kwargs["loads"] = tuple(args.loads)
    try:
        spec = SynthSpec(**kwargs)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    progress = (
        (lambda msg: print(msg, file=sys.stderr)) if args.progress else None
    )
    try:
        if args.simulate:
            from repro.analysis.executor import SweepExecutor

            with SweepExecutor(
                jobs=args.jobs, cache_dir=args.cache_dir
            ) as executor:
                result = run_synthesis(
                    spec, executor=executor, progress=progress
                )
        else:
            result = run_synthesis(spec, progress=progress)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_synthesis(result))
    if args.manifest_dir or args.out:
        from repro.obs.envelope import save_envelope

        spec_hash = spec.content_hash()
        if args.manifest_dir:
            from pathlib import Path

            directory = Path(args.manifest_dir)
            directory.mkdir(parents=True, exist_ok=True)
            for outcome in result.outcomes:
                save_envelope(
                    outcome.to_dict(),
                    "synth-candidate",
                    directory / f"synth-{outcome.name}.json",
                    spec_hash=spec_hash,
                )
            print(
                f"[{len(result.outcomes)} candidate manifests "
                f"in {args.manifest_dir}]"
            )
        if args.out:
            save_envelope(
                result.to_payload(), "synth", args.out, spec_hash=spec_hash
            )
            print(f"[saved to {args.out}]")
    if result.missing_rediscovery is not None and not result.truncated:
        print(
            f"FAIL: full enumeration did not rediscover "
            f"{result.missing_rediscovery}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.lint import (
        all_rules,
        render_report,
        report_payload,
        run_lint,
    )

    if args.list_rules:
        for rule_id, rule in all_rules().items():
            print(f"{rule_id:20s} {rule.summary}")
        return 0
    root = Path(args.root) if args.root else None
    try:
        report = run_lint(root, rules=args.rule)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    payload = None
    if args.format == "json" or args.out:
        from repro.obs.envelope import attach_envelope

        payload = attach_envelope(report_payload(report), "lint")
    if args.format == "json":
        assert payload is not None
        print(json.dumps(payload, indent=2))
    else:
        print(render_report(report, verbose=args.verbose))
    if args.out:
        from repro.obs.envelope import save_envelope

        save_envelope(report_payload(report), "lint", args.out)
        print(f"[saved to {args.out}]", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    progress = lambda msg: print(msg, file=sys.stderr)  # noqa: E731
    if args.sweep:
        from repro.analysis.bench_sweep import (
            apply_baseline,
            render_sweep_report,
            run_sweep_bench,
        )

        payload = run_sweep_bench(
            args.scenario, quick=args.quick, jobs=args.jobs,
            progress=progress,
        )
        render, tool = render_sweep_report, "bench-sweep"
        out = args.out if args.out is not None else "BENCH_sweep.json"
    else:
        from repro.sim.bench import apply_baseline, render_report, run_bench

        payload = run_bench(
            args.scenario, quick=args.quick, repeat=args.repeat,
            progress=progress, core=args.core, profile=args.profile,
        )
        render, tool = render_report, "bench"
        out = args.out if args.out is not None else "BENCH_engine.json"
    if args.baseline:
        with open(args.baseline) as fh:
            apply_baseline(payload, json.load(fh))
    print(render(payload))
    if out != "-":
        from repro.obs.envelope import save_envelope

        save_envelope(payload, tool, out)
        print(f"[saved to {out}]")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.manifest import iter_manifests, load_manifest
    from repro.obs.report import (
        plot_manifest,
        render_manifest_report,
        report_payload,
    )

    manifests = [load_manifest(path) for path in args.manifest]
    if args.manifest_dir:
        manifests.extend(iter_manifests(args.manifest_dir))
    if not manifests:
        print(
            "no manifests: pass manifest JSON paths or --manifest-dir",
            file=sys.stderr,
        )
        return 2
    for index, manifest in enumerate(manifests):
        if index:
            print()
        print(
            render_manifest_report(
                manifest, top=args.top, max_rows=args.max_rows
            )
        )
    if args.plot:
        from pathlib import Path

        base = Path(args.plot)
        for index, manifest in enumerate(manifests):
            target = (
                base
                if len(manifests) == 1
                else base.with_name(f"{base.stem}-{index}{base.suffix}")
            )
            try:
                plot_manifest(manifest, target)
            except RuntimeError as exc:
                print(str(exc), file=sys.stderr)
                return 1
            print(f"[plot saved to {target}]")
    if args.out:
        from repro.obs.envelope import save_envelope

        save_envelope(report_payload(manifests, top=args.top), "report", args.out)
        print(f"[saved to {args.out}]")
    return 0


def _cmd_loads(args: argparse.Namespace) -> int:
    from repro.analysis.channel_load import load_report
    from repro.traffic.permutations import make_pattern

    topology = parse_topology(args.topology)
    pattern = make_pattern(args.pattern, topology)
    for name in args.algorithm:
        routing = make_routing(name, topology)
        report = load_report(topology, routing, pattern)
        print(f"{name:18s} {report}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    for spec in ("mesh:8x8", "cube:6", "torus:4x2", "hex:6x6", "oct:6x6"):
        topology = parse_topology(spec)
        names = ", ".join(available_algorithms(topology))
        print(f"{spec:12s} {names}")
    from repro.traffic.permutations import available_patterns

    print("patterns: " + ", ".join(available_patterns()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="turnmodel",
        description="Turn-model adaptive routing: algorithms, proofs, simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="print the paper's tables")
    p_tables.add_argument(
        "--which",
        default="all",
        choices=["all", "theorem1", "enumeration", "adaptiveness", "pcube", "pathlen"],
    )
    p_tables.set_defaults(func=_cmd_tables)

    p_fig = sub.add_parser("figure", help="reproduce a performance figure")
    p_fig.add_argument("number", type=int, help="13, 14, 15, or 16")
    p_fig.add_argument("--preset", default="quick", choices=["quick", "mid", "paper"])
    p_fig.add_argument("--seed", type=int, default=1)
    p_fig.add_argument("--out", default=None, help="archive the series as JSON")
    p_fig.add_argument(
        "--jobs", type=int, default=1, help="parallel worker processes"
    )
    p_fig.add_argument(
        "--cache-dir", default=None, help="reuse cached simulation points"
    )
    p_fig.set_defaults(func=_cmd_figure)

    p_sweep = sub.add_parser(
        "sweep",
        help="latency-throughput sweep: algorithms x loads x one pattern",
    )
    p_sweep.add_argument("--topology", default="mesh:8x8")
    p_sweep.add_argument(
        "--algorithm",
        nargs="+",
        default=["xy", "negative-first"],
        help="one sweep series per algorithm",
    )
    p_sweep.add_argument("--pattern", default="uniform")
    p_sweep.add_argument(
        "--loads",
        type=float,
        nargs="+",
        default=None,
        help="explicit offered loads (flits/node/cycle)",
    )
    p_sweep.add_argument("--load-start", type=float, default=0.05)
    p_sweep.add_argument("--load-stop", type=float, default=0.6)
    p_sweep.add_argument("--load-count", type=int, default=8)
    p_sweep.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel worker processes (default: one per CPU)",
    )
    p_sweep.add_argument(
        "--cache-dir", default=None, help="reuse cached simulation points"
    )
    p_sweep.add_argument("--warmup", type=int, default=2000)
    p_sweep.add_argument("--measure", type=int, default=8000)
    p_sweep.add_argument("--drain", type=int, default=3000)
    p_sweep.add_argument("--buffer-depth", type=int, default=1)
    p_sweep.add_argument("--seed", type=int, default=1)
    p_sweep.add_argument(
        "--stop-after-saturation",
        type=int,
        default=1,
        help="unsustainable points to chart past saturation",
    )
    p_sweep.add_argument(
        "--progress", action="store_true", help="narrate per-point progress"
    )
    p_sweep.add_argument(
        "--certify",
        action="store_true",
        help="statically certify each algorithm (deadlock/livelock free, "
        "connected) before launching the sweep",
    )
    p_sweep.add_argument(
        "--obs",
        action="store_true",
        help="collect bit-invisible channel/latency/timeline metrics",
    )
    p_sweep.add_argument(
        "--manifest-dir",
        default=None,
        help="write a run manifest per point (input to 'report')",
    )
    p_sweep.add_argument("--out", default=None, help="archive the run as JSON")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_sim = sub.add_parser("simulate", help="run one simulation point")
    p_sim.add_argument("--topology", default="mesh:8x8")
    p_sim.add_argument("--algorithm", default="negative-first")
    p_sim.add_argument("--pattern", default="uniform")
    p_sim.add_argument("--load", type=float, default=0.1)
    p_sim.add_argument("--warmup", type=int, default=2000)
    p_sim.add_argument("--measure", type=int, default=8000)
    p_sim.add_argument("--drain", type=int, default=3000)
    p_sim.add_argument("--buffer-depth", type=int, default=1)
    p_sim.add_argument("--seed", type=int, default=1)
    p_sim.add_argument(
        "--obs",
        action="store_true",
        help="print channel-utilization heatmap and throughput timeline",
    )
    p_sim.add_argument(
        "--core",
        choices=("object", "flat"),
        default="object",
        help="engine core: reference object core, or the bit-identical "
        "compiled flat core (falls back to object when --obs is set)",
    )
    p_sim.set_defaults(func=_cmd_simulate)

    p_res = sub.add_parser(
        "resilience",
        help="runtime fault-injection sweep: delivered fraction vs faults",
    )
    p_res.add_argument(
        "--preset", default="quick", choices=["quick", "mid", "paper"]
    )
    p_res.add_argument(
        "--topology", default=None, help="override the preset topology spec"
    )
    p_res.add_argument(
        "--algorithm",
        nargs="+",
        default=None,
        help="override the preset algorithm list",
    )
    p_res.add_argument("--pattern", default="uniform")
    p_res.add_argument(
        "--load", type=float, default=None, help="override the preset load"
    )
    p_res.add_argument(
        "--faults",
        type=int,
        nargs="+",
        default=None,
        help="explicit fault counts (override the preset escalation)",
    )
    p_res.add_argument(
        "--policy",
        default=None,
        help="recovery policy: drop, retransmit, or abort",
    )
    p_res.add_argument(
        "--heal-after",
        type=int,
        default=None,
        help="cycles until each fault heals (default: permanent)",
    )
    p_res.add_argument("--seed", type=int, default=1, help="workload seed")
    p_res.add_argument(
        "--fault-seed", type=int, default=1, help="fault-schedule base seed"
    )
    p_res.add_argument(
        "--no-recertify",
        action="store_true",
        help="skip re-proving each degraded topology deadlock-free",
    )
    p_res.add_argument(
        "--jobs", type=int, default=1, help="parallel worker processes"
    )
    p_res.add_argument(
        "--cache-dir", default=None, help="reuse cached simulation points"
    )
    p_res.add_argument("--warmup", type=int, default=None)
    p_res.add_argument("--measure", type=int, default=None)
    p_res.add_argument("--drain", type=int, default=None)
    p_res.add_argument(
        "--progress", action="store_true", help="narrate per-point progress"
    )
    p_res.add_argument(
        "--obs",
        action="store_true",
        help="collect bit-invisible channel/latency/timeline metrics",
    )
    p_res.add_argument(
        "--manifest-dir",
        default=None,
        help="write a run manifest per point (input to 'report')",
    )
    p_res.add_argument("--out", default=None, help="archive the sweep as JSON")
    p_res.set_defaults(func=_cmd_resilience)

    p_dead = sub.add_parser("deadlock", help="demonstrate a deadlock")
    p_dead.add_argument("--figure", type=int, default=1, choices=[1, 4])
    p_dead.set_defaults(func=_cmd_deadlock)

    p_verify = sub.add_parser(
        "verify",
        help="statically certify algorithms deadlock/livelock free and connected",
    )
    p_verify.add_argument(
        "--all",
        action="store_true",
        help="full sweep: registry x topologies, faulted mesh, virtual "
        "channels, and the Figure 1/4 negative controls (the default "
        "when no filter is given)",
    )
    p_verify.add_argument(
        "--topology",
        nargs="+",
        default=None,
        help="restrict to these topology specs (e.g. mesh:5x4 cube:4)",
    )
    p_verify.add_argument(
        "--algorithm",
        nargs="+",
        default=None,
        help="restrict to these registry algorithm names",
    )
    p_verify.add_argument(
        "--out", default=None, help="write the full JSON report (certificates included)"
    )
    p_verify.set_defaults(func=_cmd_verify)

    p_synth = sub.add_parser(
        "synth",
        help="synthesize routing algorithms: enumerate turn prohibitions, "
        "certify deadlock-free survivors, rank by adaptiveness (exit 1 "
        "if a full census misses a paper algorithm)",
    )
    p_synth.add_argument(
        "--topology",
        default="mesh:4x4",
        help="target topology spec (mesh:RxC or cube:N; the colonless "
        "mesh4x4 shorthand is accepted)",
    )
    p_synth.add_argument(
        "--max-candidates",
        type=int,
        default=None,
        help="truncate enumeration after this many candidates (the "
        "census then covers a prefix of the space, not all of it)",
    )
    p_synth.add_argument(
        "--simulate",
        action="store_true",
        help="also rank certified classes by simulated sustainable "
        "throughput through the sweep executor",
    )
    p_synth.add_argument(
        "--pattern", default="uniform", help="traffic pattern for --simulate"
    )
    p_synth.add_argument(
        "--loads",
        type=float,
        nargs="+",
        default=None,
        help="offered loads for --simulate ranking",
    )
    p_synth.add_argument("--seed", type=int, default=1)
    p_synth.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for --simulate (results are "
        "deterministic at any job count)",
    )
    p_synth.add_argument(
        "--cache-dir", default=None, help="reuse cached simulation points"
    )
    p_synth.add_argument(
        "--cross-check",
        action="store_true",
        help="certify every enumerated candidate instead of one "
        "representative per symmetry class, and require symmetric "
        "candidates to agree",
    )
    p_synth.add_argument(
        "--progress", action="store_true", help="narrate pipeline stages"
    )
    p_synth.add_argument(
        "--manifest-dir",
        default=None,
        help="write one enveloped manifest per symmetry class",
    )
    p_synth.add_argument(
        "--out", default=None, help="write the enveloped synthesis report JSON"
    )
    p_synth.set_defaults(func=_cmd_synth)

    p_lint = sub.add_parser(
        "lint",
        help="determinism & invariant lint: AST static analysis of the "
        "repro sources (exit 1 on findings)",
    )
    p_lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (json prints the enveloped document)",
    )
    p_lint.add_argument(
        "--rule",
        nargs="+",
        default=None,
        help="run only these rule ids (default: the full catalog)",
    )
    p_lint.add_argument(
        "--root",
        default=None,
        help="source tree to lint (default: the installed repro package)",
    )
    p_lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    p_lint.add_argument(
        "--verbose",
        action="store_true",
        help="also list pragma-suppressed findings with their reasons",
    )
    p_lint.add_argument(
        "--out", default=None, help="write the report as enveloped JSON"
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_bench = sub.add_parser(
        "bench",
        help="speed benchmarks: engine cycles/sec, or sweep points/sec "
        "with --sweep",
    )
    p_bench.add_argument(
        "--sweep",
        action="store_true",
        help="benchmark the sweep executor (points/sec, serial vs "
        "cold-spawn vs warm pool) instead of the engine",
    )
    p_bench.add_argument(
        "--quick", action="store_true", help="CI-sized runs"
    )
    p_bench.add_argument(
        "--scenario", nargs="+", default=None, help="subset of scenarios"
    )
    p_bench.add_argument(
        "--repeat", type=int, default=1,
        help="repetitions per scenario (best wall time wins; engine "
        "bench only)",
    )
    p_bench.add_argument(
        "--jobs", type=int, default=None,
        help="warm-pool worker processes (sweep bench only; default: "
        "one per CPU)",
    )
    p_bench.add_argument(
        "--core", choices=("object", "flat"), default=None,
        help="restrict engine-bench scenarios to one core (default: both)",
    )
    p_bench.add_argument(
        "--profile", action="store_true",
        help="attach the top-25 cumulative cProfile functions per "
        "scenario to the bench artifact (engine bench only)",
    )
    p_bench.add_argument(
        "--baseline", default=None,
        help="previous bench JSON to compute speedups against",
    )
    p_bench.add_argument(
        "--out", default=None,
        help="output JSON path ('-' to skip writing; default "
        "BENCH_engine.json, or BENCH_sweep.json with --sweep)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_report = sub.add_parser(
        "report",
        help="render channel-heatmap and timeline reports from run manifests",
    )
    p_report.add_argument(
        "manifest", nargs="*", help="manifest JSON paths (manifest-<hash>.json)"
    )
    p_report.add_argument(
        "--manifest-dir",
        default=None,
        help="render every manifest in this directory",
    )
    p_report.add_argument(
        "--top", type=int, default=8, help="hottest channels to list"
    )
    p_report.add_argument(
        "--max-rows", type=int, default=24, help="timeline rows to show"
    )
    p_report.add_argument(
        "--plot",
        default=None,
        help="also write a PNG figure (requires matplotlib)",
    )
    p_report.add_argument(
        "--out", default=None, help="write the summary as enveloped JSON"
    )
    p_report.set_defaults(func=_cmd_report)

    p_loads = sub.add_parser(
        "loads", help="static channel-load analysis (ideal saturation bounds)"
    )
    p_loads.add_argument("--topology", default="mesh:8x8")
    p_loads.add_argument("--pattern", default="transpose")
    p_loads.add_argument(
        "--algorithm",
        nargs="+",
        default=["xy", "west-first", "north-last", "negative-first"],
    )
    p_loads.set_defaults(func=_cmd_loads)

    p_list = sub.add_parser("list", help="list algorithms and patterns")
    p_list.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``turnmodel`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
