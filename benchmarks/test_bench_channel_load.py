"""Analysis: static channel loads explain Figures 13 and 14.

The equal-split flow analysis computes each algorithm's hottest channel
under a pattern; its reciprocal is an ideal saturation bound.  The
ordering of the bounds reproduces the simulator's (and the paper's)
verdicts without running a single cycle: xy's bound is the highest on
uniform traffic and 2.4x below negative-first's on matrix transpose.
"""

from repro.analysis.channel_load import load_report
from repro.routing import make_routing
from repro.topology import Mesh2D
from repro.traffic import UniformTraffic
from repro.traffic.permutations import make_pattern


def test_bench_static_loads(benchmark):
    mesh = Mesh2D(8, 8)

    def run():
        reports = {}
        for pattern_name in ("uniform", "transpose"):
            pattern = (
                UniformTraffic(mesh)
                if pattern_name == "uniform"
                else make_pattern(pattern_name, mesh)
            )
            for algorithm in ("xy", "west-first", "north-last",
                              "negative-first"):
                reports[(pattern_name, algorithm)] = load_report(
                    mesh, make_routing(algorithm, mesh), pattern
                )
        return reports

    reports = benchmark(run)
    print()
    for (pattern, algorithm), report in reports.items():
        print(f"{pattern:10s} {algorithm:16s} {report}")
    # Figure 13's verdict, statically: xy has the least-loaded hot channel
    # on uniform traffic.
    uniform_max = {
        alg: reports[("uniform", alg)].max_load
        for alg in ("xy", "west-first", "north-last", "negative-first")
    }
    assert uniform_max["xy"] == min(uniform_max.values())
    # Figure 14's verdict, statically: negative-first's transpose bound
    # beats xy's by ~2x.
    assert (
        reports[("transpose", "xy")].max_load
        > 2.0 * reports[("transpose", "negative-first")].max_load
    )
