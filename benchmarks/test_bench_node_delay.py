"""Ablation: node delay of adaptive route selection (Section 7).

"Adaptive routing can require more complex control logic for route
selection ... and this may increase node delay."  This ablation charges
the adaptive algorithm extra routing cycles per hop and asks when the
nonadaptive baseline catches back up: on transpose traffic the adaptive
advantage survives a realistic 2x node delay.
"""

from benchmarks.conftest import run_once
from repro.sim import SimulationConfig, simulate
from repro.topology import Mesh2D


def test_bench_node_delay_ablation(benchmark):
    mesh = Mesh2D(8, 8)

    def run():
        results = {}
        xy_config = SimulationConfig(
            warmup_cycles=1000, measure_cycles=5000, drain_cycles=0,
            routing_delay_cycles=1,
        )
        results["xy/delay1"] = simulate(
            mesh, "xy", "transpose", 0.5, config=xy_config
        )
        for delay in (1, 2, 4):
            config = SimulationConfig(
                warmup_cycles=1000, measure_cycles=5000, drain_cycles=0,
                routing_delay_cycles=delay,
            )
            results[f"negative-first/delay{delay}"] = simulate(
                mesh, "negative-first", "transpose", 0.5, config=config
            )
        return results

    results = run_once(benchmark, run)
    print()
    for name, result in results.items():
        print(f"{name:26s} {result.summary()}")
    xy = results["xy/delay1"].throughput_flits_per_usec
    nf_slow = results["negative-first/delay2"].throughput_flits_per_usec
    # The adaptive advantage on transpose survives doubled node delay.
    assert nf_slow > 1.2 * xy, (nf_slow, xy)
    benchmark.extra_info["throughputs"] = {
        name: round(r.throughput_flits_per_usec, 1)
        for name, r in results.items()
    }
