"""Experiment thm1-turns: Theorems 1 and 6 — turn and cycle counts.

Regenerates the counts behind Theorem 1 (prohibiting a quarter of the
turns, n(n-1), is necessary) and checks the sufficiency witness
(negative-first prohibits exactly n(n-1) turns and is deadlock free).
"""

from repro.core.channel_graph import restriction_is_deadlock_free
from repro.core.restrictions import negative_first_restriction
from repro.core.turns import (
    abstract_cycles,
    minimum_prohibited_turns,
    ninety_degree_turns,
)
from repro.experiments.tables import theorem1_table
from repro.topology import Mesh


def test_bench_theorem1_counts(benchmark):
    table = benchmark(theorem1_table, 6)
    print("\n" + table)
    for n in range(2, 7):
        assert len(ninety_degree_turns(n)) == 4 * n * (n - 1)
        assert len(abstract_cycles(n)) == n * (n - 1)
        assert minimum_prohibited_turns(n) == n * (n - 1)


def test_bench_theorem6_sufficiency(benchmark):
    def check():
        results = {}
        for n in (2, 3, 4):
            restriction = negative_first_restriction(n)
            mesh = Mesh((3,) * n)
            results[n] = (
                len(restriction.prohibited),
                restriction_is_deadlock_free(mesh, restriction),
            )
        return results

    results = benchmark(check)
    for n, (count, safe) in results.items():
        assert count == n * (n - 1)
        assert safe
    print(f"\nnegative-first prohibits exactly n(n-1) turns and is safe: {results}")
