"""Shared helpers for the benchmark harness.

Every paper table/figure has one benchmark module (see DESIGN.md's
per-experiment index).  Figure benchmarks run the quick preset by default;
set ``REPRO_PRESET=mid`` or ``REPRO_PRESET=paper`` to rerun them at the
paper's 256-node scale (slow — minutes per figure).  The headline numbers
are printed so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
reproduction report.
"""

import os

import pytest


@pytest.fixture(scope="session")
def preset_name() -> str:
    return os.environ.get("REPRO_PRESET", "quick")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
