"""Experiment sec3-enumeration: the Section 3 prohibition census.

Of the 16 ways to prohibit one turn from each abstract cycle of a 2D
mesh, 12 prevent deadlock and 3 are unique up to symmetry.
"""

from repro.experiments.tables import enumeration_table


def test_bench_enumeration(benchmark):
    candidates, free, unique, rendered = benchmark(enumeration_table)
    print("\n" + rendered)
    assert candidates == 16
    assert free == 12
    assert unique == 3
