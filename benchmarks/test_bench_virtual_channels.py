"""Ablation: the extra-channel alternatives the paper compares against.

Section 1: other approaches "achieve adaptiveness and deadlock freedom at
the expense of adding physical or virtual channels".  Two classics on our
virtual-channel substrate:

* lane-split xy/yx routing on a two-lane mesh repairs xy's transpose
  weakness (compare Figure 14);
* dateline dimension-order routing makes *minimal* deadlock-free torus
  routing possible — the Section 4.2 impossibility is specific to
  networks without extra channels.
"""

from benchmarks.conftest import run_once
from repro.core.channel_graph import is_deadlock_free
from repro.routing import DatelineTorusRouting, o1turn_routing
from repro.sim import SimulationConfig, simulate
from repro.topology import Mesh2D, Torus, VirtualChannelTopology
from repro.traffic.permutations import make_pattern


def test_bench_lane_split_vs_xy_on_transpose(benchmark):
    mesh = Mesh2D(8, 8)
    vc = VirtualChannelTopology(mesh, 2)
    config = SimulationConfig(
        warmup_cycles=1000, measure_cycles=5000, drain_cycles=0
    )

    def run():
        o1 = simulate(
            vc, o1turn_routing(vc), make_pattern("transpose", vc), 0.8,
            config=config,
        )
        xy = simulate(mesh, "xy", "transpose", 0.8, config=config)
        return o1, xy

    o1, xy = run_once(benchmark, run)
    print(f"\no1turn (2 lanes): {o1.summary()}")
    print(f"xy   (no lanes): {xy.summary()}")
    assert o1.throughput_flits_per_usec > 1.3 * xy.throughput_flits_per_usec
    benchmark.extra_info["o1turn"] = round(o1.throughput_flits_per_usec, 1)
    benchmark.extra_info["xy"] = round(xy.throughput_flits_per_usec, 1)


def test_bench_dateline_minimal_torus(benchmark):
    def run():
        results = {}
        for k, n in ((4, 2), (5, 2)):
            vc = VirtualChannelTopology(Torus(k, n), 2)
            routing = DatelineTorusRouting(vc)
            results[(k, n)] = is_deadlock_free(vc, routing)
        return results

    results = benchmark(run)
    assert all(results.values())
    print(f"\ndateline DOR minimal + deadlock free on: {list(results)}")


def test_bench_dateline_tornado_throughput(benchmark):
    # Tornado is the classic adversary where minimality matters: the
    # nonminimal Section 4.2 algorithm pays detours that the dateline
    # algorithm's wraparounds avoid.
    torus = Torus(6, 2)
    vc = VirtualChannelTopology(torus, 2)
    config = SimulationConfig(
        warmup_cycles=800, measure_cycles=4000, drain_cycles=1500
    )

    def run():
        dateline = simulate(
            vc, DatelineTorusRouting(vc), make_pattern("tornado", vc), 0.15,
            config=config,
        )
        nf_torus = simulate(
            torus, "negative-first-torus", "tornado", 0.15, config=config
        )
        return dateline, nf_torus

    dateline, nf_torus = run_once(benchmark, run)
    print(f"\ndateline (minimal, 2 lanes): {dateline.summary()} "
          f"hops={dateline.avg_hops:.2f}")
    print(f"nf-torus (nonminimal, 1 lane): {nf_torus.summary()} "
          f"hops={nf_torus.avg_hops:.2f}")
    assert not dateline.deadlocked and not nf_torus.deadlocked
    # Minimal routing's hop count is the tornado distance (2 on a 6-ring);
    # the nonminimal algorithm travels further.
    assert dateline.avg_hops <= nf_torus.avg_hops
