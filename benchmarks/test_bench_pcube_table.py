"""Experiment sec5-pcube-table: the Section 5 worked example.

Binary 10-cube, source 1011010100 to destination 0010111001: h = 6,
h0 = h1 = 3, 36 shortest paths, per-hop choice counts
3(+2), 2(+2), 1(+2), 3, 2, 1 — digit for digit.
"""

from repro.experiments.tables import PCUBE_EXAMPLE, pcube_example_table


def test_bench_pcube_example(benchmark):
    rows, rendered = benchmark(pcube_example_table)
    print("\n" + rendered)
    assert [(r.choices, r.extra_choices) for r in rows] == list(
        PCUBE_EXAMPLE["expected_choices"]
    )
    assert tuple(r.dimension_taken for r in rows) == PCUBE_EXAMPLE[
        "dimensions_taken"
    ]
    assert "enumerated=36" in rendered
