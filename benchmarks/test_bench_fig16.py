"""Experiment fig16: reverse-flip traffic in the hypercube (Figure 16).

Expected shape: the partially adaptive algorithms sustain roughly four
times e-cube's throughput at the paper's 8-cube scale (the quick preset's
6-cube shows a smaller but still decisive factor), and these are the
highest sustainable throughputs in the hypercube overall.
"""

from benchmarks.conftest import run_once
from repro.experiments import figure16


def test_bench_figure16(benchmark, preset_name):
    result = run_once(benchmark, figure16, preset=preset_name)
    print("\n" + result.render())
    by_name = result.series_by_name()
    ecube = by_name["e-cube"].saturation_throughput
    for name in ("abonf", "abopl", "p-cube"):
        assert by_name[name].saturation_throughput > 1.5 * ecube, name
    benchmark.extra_info["saturation"] = {
        s.algorithm: round(s.saturation_throughput, 1) for s in result.series
    }
    benchmark.extra_info["adaptive_advantage"] = round(
        result.adaptive_advantage, 2
    )
