"""Ablation: input selection policy (local FCFS vs random).

The paper uses local first-come-first-served because it "is fair and
therefore prevents indefinite postponement" (Section 6).  This ablation
compares FCFS against random arbitration for xy routing near saturation:
throughputs are similar, but FCFS bounds the latency tail (p95/max),
which is the fairness claim made measurable.
"""

from benchmarks.conftest import run_once
from repro.routing.selection import FCFSInputSelection, RandomInputSelection
from repro.sim import SimulationConfig, simulate
from repro.topology import Mesh2D


def test_bench_input_selection_ablation(benchmark):
    mesh = Mesh2D(8, 8)

    def run():
        results = {}
        for name, policy in (
            ("fcfs", FCFSInputSelection()),
            ("random", RandomInputSelection()),
        ):
            config = SimulationConfig(
                warmup_cycles=1000,
                measure_cycles=6000,
                drain_cycles=2000,
                input_policy=policy,
            )
            results[name] = simulate(
                mesh, "xy", "uniform", offered_load=0.35, config=config
            )
        return results

    results = run_once(benchmark, run)
    print()
    for name, result in results.items():
        print(
            f"input-selection={name:7s} {result.summary()} "
            f"p95={result.p95_latency_usec:.1f}us "
            f"max={result.max_latency_cycles * result.cycle_time_usec:.1f}us"
        )
        assert not result.deadlocked
    fcfs = results["fcfs"].throughput_flits_per_usec
    rand = results["random"].throughput_flits_per_usec
    # Arbitration fairness barely moves aggregate throughput.
    assert abs(fcfs - rand) < 0.25 * max(fcfs, rand)
    benchmark.extra_info["throughputs"] = {
        "fcfs": round(fcfs, 1), "random": round(rand, 1)
    }
