"""Experiment fig1-deadlock: the Figure 1 and Figure 4 deadlocks.

Regenerates both dynamic deadlock demonstrations and confirms a valid
turn-model algorithm survives the identical workloads.
"""

from benchmarks.conftest import run_once
from repro.routing import make_routing
from repro.sim.deadlock import run_deadlock_demo, run_figure4_demo
from repro.topology import Mesh2D


def test_bench_figure1_deadlock(benchmark):
    result = run_once(benchmark, run_deadlock_demo)
    print(
        f"\nunrestricted adaptive: deadlocked={result.deadlocked} "
        f"after {result.total_delivered} deliveries"
    )
    assert result.deadlocked


def test_bench_figure4_deadlock(benchmark):
    result = run_once(benchmark, run_figure4_demo)
    print(f"\nfigure-4 faulty pair: deadlocked={result.deadlocked}")
    assert result.deadlocked


def test_bench_safe_algorithm_control(benchmark):
    def run():
        routing = make_routing("west-first", Mesh2D(4, 4))
        return run_deadlock_demo(routing=routing)

    result = run_once(benchmark, run)
    print(
        f"\nwest-first control: deadlocked={result.deadlocked}, "
        f"delivered={result.total_delivered}"
    )
    assert not result.deadlocked
    assert result.total_delivered > 1000
