#!/usr/bin/env python
"""Engine cycles/sec benchmark — thin wrapper over :mod:`repro.sim.bench`.

Run from the repository root (no install needed)::

    python benchmarks/bench_engine.py [--quick] [--baseline old.json]

Equivalent to ``repro bench``; writes ``BENCH_engine.json`` so engine
speed is tracked across PRs.  See ``docs/simulator.md`` (Performance)
for what the numbers mean and which invariants the optimizations keep.
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.sim.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
