"""Experiment fig15: matrix-transpose traffic in the hypercube (Figure 15).

Expected shape: the partially adaptive algorithms (ABONF, ABOPL, p-cube)
sustain roughly twice e-cube's throughput on the embedded transpose.
"""

from benchmarks.conftest import run_once
from repro.experiments import figure15


def test_bench_figure15(benchmark, preset_name):
    result = run_once(benchmark, figure15, preset=preset_name)
    print("\n" + result.render())
    by_name = result.series_by_name()
    ecube = by_name["e-cube"].saturation_throughput
    for name in ("abonf", "abopl", "p-cube"):
        assert by_name[name].saturation_throughput > 1.4 * ecube, name
    benchmark.extra_info["saturation"] = {
        s.algorithm: round(s.saturation_throughput, 1) for s in result.series
    }
    benchmark.extra_info["adaptive_advantage"] = round(
        result.adaptive_advantage, 2
    )
