"""Experiment sec6-pathlen: Section 6's average path lengths.

Paper: uniform 10.61 vs matrix-transpose 11.34 hops in the 16x16 mesh;
uniform 4.01 vs reverse-flip 4.27 hops in the 8-cube — the adaptive
algorithms' throughput wins are *despite* slightly longer paths.
"""

import pytest

from repro.experiments.tables import path_length_table
from repro.topology import Hypercube, Mesh2D
from repro.traffic.patterns import UniformTraffic
from repro.traffic.permutations import mesh_transpose, reverse_flip


def test_bench_path_length_table(benchmark):
    table = benchmark(path_length_table, 16, 8)
    print("\n" + table)


def test_bench_paper_values(benchmark):
    def compute():
        return {
            "mesh-uniform": UniformTraffic(Mesh2D(16, 16)).mean_minimal_hops(),
            "mesh-transpose": mesh_transpose(Mesh2D(16, 16)).mean_minimal_hops(),
            "cube-uniform": UniformTraffic(Hypercube(8)).mean_minimal_hops(),
            "cube-reverse-flip": reverse_flip(Hypercube(8)).mean_minimal_hops(),
        }

    values = benchmark(compute)
    print(f"\nmeasured: {values}")
    assert values["mesh-uniform"] == pytest.approx(10.64, abs=0.1)   # paper 10.61
    assert values["mesh-transpose"] == pytest.approx(11.34, abs=0.05)
    assert values["cube-uniform"] == pytest.approx(4.01, abs=0.02)
    assert values["cube-reverse-flip"] == pytest.approx(4.27, abs=0.02)
    assert values["mesh-transpose"] > values["mesh-uniform"]
    assert values["cube-reverse-flip"] > values["cube-uniform"]
