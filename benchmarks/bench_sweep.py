#!/usr/bin/env python
"""Sweep points/sec benchmark — thin wrapper over :mod:`repro.analysis.bench_sweep`.

Run from the repository root (no install needed)::

    python benchmarks/bench_sweep.py [--quick] [--baseline old.json]

Equivalent to ``repro bench --sweep``; writes ``BENCH_sweep.json`` so
sweep-scale throughput (warm persistent workers vs per-point cold
starts) is tracked across PRs.  See ``docs/experiments_api.md`` (Sweep
performance) for what the numbers mean and the bit-identity gate the
three execution modes must pass.
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.analysis.bench_sweep import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
