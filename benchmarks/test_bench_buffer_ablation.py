"""Ablation: input buffer depth.

The paper's routers buffer a single flit per input channel — one of
wormhole routing's selling points.  This ablation measures what deeper
buffers (2 and 4 flits) buy on uniform traffic near saturation: modestly
higher throughput, at the cost the paper's routers avoid.
"""

from benchmarks.conftest import run_once
from repro.sim import SimulationConfig, simulate
from repro.topology import Mesh2D


def test_bench_buffer_depth_ablation(benchmark):
    mesh = Mesh2D(8, 8)

    def run():
        results = {}
        for depth in (1, 2, 4):
            config = SimulationConfig(
                warmup_cycles=1000,
                measure_cycles=5000,
                drain_cycles=0,
                buffer_depth=depth,
            )
            results[depth] = simulate(
                mesh, "xy", "uniform", offered_load=0.45, config=config
            )
        return results

    results = run_once(benchmark, run)
    print()
    for depth, result in results.items():
        print(f"buffer-depth={depth}  {result.summary()}")
    throughputs = {d: r.throughput_flits_per_usec for d, r in results.items()}
    # Deeper buffers never hurt saturation throughput.
    assert throughputs[4] >= 0.95 * throughputs[1]
    benchmark.extra_info["throughputs"] = {
        str(k): round(v, 1) for k, v in throughputs.items()
    }
