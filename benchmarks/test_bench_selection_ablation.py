"""Ablation: output-selection policies (the paper's future-work axis).

The paper fixes the xy output selection policy and defers policy studies
to [19]; this ablation compares xy, random, and most-free-downstream
selection for negative-first on transpose traffic near saturation.
"""

from benchmarks.conftest import run_once
from repro.routing.selection import make_output_policy
from repro.sim import SimulationConfig, simulate
from repro.topology import Mesh2D


def test_bench_output_selection_ablation(benchmark):
    mesh = Mesh2D(8, 8)

    def run():
        results = {}
        for policy_name in ("xy", "random", "most-free"):
            config = SimulationConfig(
                warmup_cycles=1000,
                measure_cycles=5000,
                drain_cycles=0,
                output_policy=make_output_policy(policy_name),
            )
            result = simulate(
                mesh, "negative-first", "transpose",
                offered_load=0.5, config=config,
            )
            results[policy_name] = result
        return results

    results = run_once(benchmark, run)
    print()
    for name, result in results.items():
        print(f"output-selection={name:10s} {result.summary()}")
    throughputs = {
        name: r.throughput_flits_per_usec for name, r in results.items()
    }
    # All policies deliver; none collapses (within 2x of the best).
    best = max(throughputs.values())
    for name, value in throughputs.items():
        assert value > best / 2, (name, throughputs)
    benchmark.extra_info["throughputs"] = {
        k: round(v, 1) for k, v in throughputs.items()
    }
