"""Extension: the turn model on a hexagonal mesh (Section 7 future work).

The hexagonal network's turns are 60 and 120 degrees, yet negative-first
generalizes directly: the benchmark certifies hex-negative-first deadlock
free (both by the Dally-Seitz check and by the Theorem 5 numbering) and
measures its path-length advantage over the axis-order baseline that
ignores the diagonal channels.
"""

from benchmarks.conftest import run_once
from repro.core.channel_graph import is_deadlock_free
from repro.core.numbering import certifies, negative_first_numbering
from repro.routing import HexDimensionOrderRouting, HexNegativeFirstRouting
from repro.sim import SimulationConfig, simulate
from repro.topology import HexMesh
from repro.traffic import UniformTraffic


def test_bench_hex_certificates(benchmark):
    def check():
        hexm = HexMesh(6, 6)
        nf = HexNegativeFirstRouting(hexm)
        numbering = negative_first_numbering(hexm)
        return (
            is_deadlock_free(hexm, nf),
            certifies(hexm, nf, numbering, "increasing"),
            is_deadlock_free(hexm, HexDimensionOrderRouting(hexm)),
        )

    dally_seitz, theorem5, baseline = benchmark(check)
    print(f"\nhex NF: Dally-Seitz={dally_seitz} Theorem-5 numbering={theorem5} "
          f"ab-order={baseline}")
    assert dally_seitz and theorem5 and baseline


def test_bench_hex_uniform_traffic(benchmark):
    hexm = HexMesh(6, 6)
    config = SimulationConfig(
        warmup_cycles=800, measure_cycles=4000, drain_cycles=1500
    )

    def run():
        nf = simulate(
            hexm, HexNegativeFirstRouting(hexm), UniformTraffic(hexm), 0.12,
            config=config,
        )
        ab = simulate(
            hexm, HexDimensionOrderRouting(hexm), UniformTraffic(hexm), 0.12,
            config=config,
        )
        return nf, ab

    nf, ab = run_once(benchmark, run)
    print(f"\nhex-negative-first: {nf.summary()} hops={nf.avg_hops:.2f}")
    print(f"hex-ab-order:       {ab.summary()} hops={ab.avg_hops:.2f}")
    assert not nf.deadlocked and not ab.deadlocked
    # The diagonal channels shorten negative-first's paths.
    assert nf.avg_hops < ab.avg_hops
    benchmark.extra_info["hops"] = {
        "hex-nf": round(nf.avg_hops, 2), "hex-ab": round(ab.avg_hops, 2)
    }


def test_bench_octagonal_certificates(benchmark):
    """The octagonal companion: negative-first over the phi potential."""
    from repro.core.numbering import potential_numbering
    from repro.routing import OctDimensionOrderRouting, OctNegativeFirstRouting
    from repro.topology import OctMesh

    def check():
        octm = OctMesh(6, 6)
        nf = OctNegativeFirstRouting(octm)
        numbering = potential_numbering(octm, octm.potential)
        return (
            is_deadlock_free(octm, nf),
            certifies(octm, nf, numbering, "increasing"),
            is_deadlock_free(octm, OctDimensionOrderRouting(octm)),
        )

    dally_seitz, phi_numbering, baseline = benchmark(check)
    print(f"\noct NF: Dally-Seitz={dally_seitz} phi numbering={phi_numbering} "
          f"ab-order={baseline}")
    assert dally_seitz and phi_numbering and baseline
