"""Experiment fig14: matrix-transpose traffic in the 2D mesh (Figure 14).

Expected shape: the partially adaptive algorithms have lower latencies at
high throughput and sustain roughly twice xy's throughput; negative-first
(fully adaptive on every transpose pair) is the best in the mesh.
"""

from benchmarks.conftest import run_once
from repro.experiments import figure14


def test_bench_figure14(benchmark, preset_name):
    result = run_once(benchmark, figure14, preset=preset_name)
    print("\n" + result.render())
    by_name = result.series_by_name()
    xy = by_name["xy"].saturation_throughput
    nf = by_name["negative-first"].saturation_throughput
    assert nf > 1.4 * xy, (nf, xy)
    assert result.adaptive_advantage > 1.4
    # Negative-first is the top algorithm on transpose (Section 6).
    assert nf == max(s.saturation_throughput for s in result.series)
    benchmark.extra_info["saturation"] = {
        s.algorithm: round(s.saturation_throughput, 1) for s in result.series
    }
    benchmark.extra_info["adaptive_advantage"] = round(
        result.adaptive_advantage, 2
    )
