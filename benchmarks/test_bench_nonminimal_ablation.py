"""Ablation: minimal vs nonminimal turn-model routing.

The paper simulates minimal routing only ("All routing is minimal") but
argues nonminimal routing is more adaptive and fault tolerant.  This
ablation runs west-first in both modes on hotspot traffic, where
nonminimal detours can pay off, and on uniform traffic, where they
mostly add path length.
"""

from benchmarks.conftest import run_once
from repro.sim import SimulationConfig, simulate
from repro.topology import Mesh2D
from repro.traffic import HotspotTraffic, Workload


def test_bench_minimal_vs_nonminimal(benchmark):
    mesh = Mesh2D(6, 6)
    config = SimulationConfig(
        warmup_cycles=800, measure_cycles=4000, drain_cycles=1500
    )

    def run():
        results = {}
        for name in ("west-first", "west-first-nonminimal"):
            for pattern in ("uniform",):
                results[(name, pattern)] = simulate(
                    mesh, name, pattern, offered_load=0.15, config=config
                )
            hotspot = HotspotTraffic(mesh, hotspot=(3, 3), hotspot_fraction=0.15)
            results[(name, "hotspot")] = simulate(
                mesh, name, hotspot, offered_load=0.12, config=config
            )
        return results

    results = run_once(benchmark, run)
    print()
    for (name, pattern), result in results.items():
        print(f"{name:24s} {pattern:8s} {result.summary()} "
              f"hops={result.avg_hops:.2f}")
        assert not result.deadlocked
        assert result.total_delivered > 0
    # Nonminimal routing may take longer paths (by design) but must not
    # lose packets or deadlock.
    assert results[("west-first-nonminimal", "uniform")].avg_hops >= (
        results[("west-first", "uniform")].avg_hops - 0.01
    )
