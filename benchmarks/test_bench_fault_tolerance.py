"""Ablation: fault tolerance of minimal vs nonminimal routing.

Section 1 motivates nonminimal routing with fault tolerance.  This
benchmark fails increasing numbers of channels in a mesh and measures the
fraction of source-destination pairs each mode of west-first routing can
still deliver: nonminimal routing always retains at least as many pairs.
"""

from benchmarks.conftest import run_once
from repro.analysis.fault_tolerance import fault_tolerance_sweep
from repro.core.restrictions import west_first_restriction
from repro.topology import Mesh2D


def test_bench_fault_tolerance(benchmark):
    mesh = Mesh2D(6, 6)

    def run():
        return fault_tolerance_sweep(
            mesh, west_first_restriction(), [0, 2, 4, 8, 12], seed=1
        )

    points = run_once(benchmark, run)
    print(f"\n{'failed':>8s} {'minimal':>9s} {'nonminimal':>11s}")
    for point in points:
        print(
            f"{point.failed_channels:8d} {point.minimal_fraction:9.3f} "
            f"{point.nonminimal_fraction:11.3f}"
        )
        assert point.nonminimal_fraction >= point.minimal_fraction
    assert points[0].minimal_fraction == 1.0
    benchmark.extra_info["points"] = [
        (p.failed_channels, round(p.minimal_fraction, 3),
         round(p.nonminimal_fraction, 3))
        for p in points
    ]
