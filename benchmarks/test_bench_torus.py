"""Experiment sec42-torus: the k-ary n-cube extensions (Section 4.2).

Both extensions — wraparound-on-first-hop and the negative-first virtual
direction classification — are strictly nonminimal and deadlock free;
the benchmark certifies them with the Dally-Seitz test on several tori
and simulates tornado traffic (the wraparound-exercising adversary).
"""

from benchmarks.conftest import run_once
from repro.core.channel_graph import is_deadlock_free
from repro.routing import make_routing
from repro.sim import SimulationConfig, simulate
from repro.topology import Torus


def test_bench_torus_deadlock_freedom(benchmark):
    def check():
        results = {}
        for k, n in ((4, 2), (5, 2), (3, 3)):
            torus = Torus(k, n)
            for name in ("negative-first-torus", "xy+first-hop-wrap",
                         "negative-first+first-hop-wrap"):
                results[(k, n, name)] = is_deadlock_free(
                    torus, make_routing(name, torus)
                )
        return results

    results = benchmark(check)
    assert all(results.values())
    print(f"\nall torus algorithms deadlock free on {len(results)} configs")


def test_bench_torus_tornado_traffic(benchmark):
    torus = Torus(6, 2)
    config = SimulationConfig(
        warmup_cycles=800, measure_cycles=4000, drain_cycles=1200
    )

    def run():
        return {
            name: simulate(torus, name, "tornado", offered_load=0.15,
                           config=config)
            for name in ("negative-first-torus", "xy+first-hop-wrap")
        }

    results = run_once(benchmark, run)
    for name, result in results.items():
        print(f"\n{name}: {result.summary()}")
        assert not result.deadlocked
        assert result.total_delivered > 0
