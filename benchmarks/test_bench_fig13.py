"""Experiment fig13: uniform traffic in the 2D mesh (Figure 13).

Expected shape: at low load all algorithms perform alike; near saturation
the nonadaptive xy algorithm holds the edge, because dimension-order
routing happens to preserve uniform traffic's global evenness while
adaptive choices are local and short-term (Section 6's analysis).
"""

from benchmarks.conftest import run_once
from repro.experiments import figure13


def test_bench_figure13(benchmark, preset_name):
    result = run_once(benchmark, figure13, preset=preset_name)
    print("\n" + result.render())
    by_name = result.series_by_name()
    # Low-load latencies agree within noise across algorithms.
    first_load = result.series[0].points[0].offered_load
    latencies = [s.latency_at(first_load) for s in result.series]
    assert max(latencies) < 1.4 * min(latencies)
    # xy is not beaten meaningfully on uniform traffic.
    xy = by_name["xy"].saturation_throughput
    for series in result.series:
        assert series.saturation_throughput <= 1.25 * xy, series.algorithm
    benchmark.extra_info["saturation"] = {
        s.algorithm: round(s.saturation_throughput, 1) for s in result.series
    }
