"""Experiment sec34-adaptiveness: degree-of-adaptiveness metrics.

Section 3.4: averaged across all source-destination pairs, S_p/S_f > 1/2
for the three partially adaptive 2D algorithms, while S_p = 1 for at
least half of the pairs.  Section 4.1: in n dimensions the average
exceeds 1/2^(n-1).
"""

from repro.core.adaptiveness import average_adaptiveness_ratio
from repro.experiments.tables import adaptiveness_table
from repro.routing import make_routing
from repro.topology import Mesh, Mesh2D


def test_bench_adaptiveness_table(benchmark):
    table = benchmark(adaptiveness_table, 6)
    print("\n" + table)
    lines = {row.split()[0]: row for row in table.splitlines()[2:]}
    for name in ("west-first", "north-last", "negative-first"):
        ratio = float(lines[name].split()[1])
        assert ratio > 0.5, (name, ratio)
        fraction_single = float(lines[name].split()[-1])
        assert fraction_single >= 0.5, (name, fraction_single)


def test_bench_adaptiveness_3d(benchmark):
    mesh = Mesh((3, 3, 3))

    def ratio():
        return average_adaptiveness_ratio(
            mesh, make_routing("negative-first", mesh)
        )

    value = benchmark(ratio)
    print(f"\n3D negative-first average S_p/S_f = {value:.3f} (> 1/4 required)")
    assert value > 1 / 4
