#!/usr/bin/env python
"""Regenerate the golden-digest fixtures for the determinism tests.

Run from the repository root::

    python scripts/regen_golden_digests.py

Rewrites ``tests/sim/golden_digests.json``.  Only do this when a
behavior change to the engine is *intended* — the whole point of the
fixtures is that accidental changes fail ``tests/sim/test_determinism.py``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

from repro.sim.digest import result_digest, run_digest, trace_digest  # noqa: E402

from tests.sim.golden_scenarios import GOLDEN_SCENARIOS  # noqa: E402

FIXTURE = REPO / "tests" / "sim" / "golden_digests.json"


def main() -> int:
    fixtures = {}
    for name, build in GOLDEN_SCENARIOS.items():
        sim, trace = build()
        result = sim.run()
        fixtures[name] = {
            "result": result_digest(result),
            "trace": trace_digest(trace),
            "run": run_digest(result, trace),
            "trace_events": len(trace.events),
            "total_delivered": result.total_delivered,
            "deadlocked": result.deadlocked,
        }
        print(f"{name:32s} run={fixtures[name]['run'][:16]}... "
              f"delivered={result.total_delivered} "
              f"deadlocked={result.deadlocked}")
    FIXTURE.write_text(json.dumps(fixtures, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
