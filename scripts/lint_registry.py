#!/usr/bin/env python
"""Registry-invariant lint — thin shim over :mod:`repro.lint`.

Historically this script carried its own pure-``ast`` implementation of
the four routing-registry checks.  Those checks now live in the reusable
lint framework (``src/repro/lint/rules_registry.py``) alongside the
determinism and engine-contract rules, and the canonical entry point is
the CLI::

    repro lint                       # full catalog
    repro lint --rule all-complete   # one rule

This shim keeps the old invocation (``python scripts/lint_registry.py``)
working for muscle memory and external tooling: it runs exactly the four
registry rules through the framework and exits 1 on findings, like the
original.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint import render_report, run_lint  # noqa: E402
from repro.lint.rules_registry import RULES  # noqa: E402


def main() -> int:
    report = run_lint(
        REPO_ROOT / "src" / "repro", rules=[rule.id for rule in RULES]
    )
    print(render_report(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
