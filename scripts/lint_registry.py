#!/usr/bin/env python
"""AST lint enforcing the routing-registry invariants.

Checks, without importing the package (pure ``ast`` so it runs anywhere
the sources exist):

1. Every routing class defined under ``src/repro/routing/`` (a class
   whose name ends in ``Routing``, other than the ``RoutingAlgorithm``
   base) declares ``uses_in_channel`` in its own class body.  The route
   cache keys on this attribute; inheriting the base's conservative
   default silently disables arrival-collapsing for algorithms that
   never read the channel, and a wrong inherited value corrupts cached
   decisions — so the declaration must be explicit and local.

2. Every ``_FACTORIES`` key in ``registry.py`` is already canonical
   (``canonical_name`` is the identity on it): lookups canonicalize
   before indexing, so a non-canonical key is unreachable.

3. When a factory is a bare class reference and that class pins ``name``
   as a class-body literal, the literal matches the registry key —
   reports and legends would otherwise label the algorithm differently
   than the CLI spells it.

4. Every module under ``src/repro/routing/``, ``src/repro/core/``,
   ``src/repro/verify/``, and ``src/repro/obs/`` defines ``__all__``,
   every public top-level class/function appears in it, and every
   listed name actually exists at module top level.

Exit status 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, List, Optional, Set

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
LINTED_PACKAGES = ("routing", "core", "verify", "obs")


def canonical_name(name: str) -> str:
    """Mirror of :func:`repro.routing.registry.canonical_name`."""
    return name.strip().lower().replace("_", "-")


def _module_paths() -> List[Path]:
    paths: List[Path] = []
    for package in LINTED_PACKAGES:
        paths.extend(sorted((SRC / package).glob("*.py")))
    return paths


def _class_body_assign(node: ast.ClassDef, attr: str) -> Optional[ast.expr]:
    """The value assigned to ``attr`` in the class body, if any."""
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == attr:
                    return statement.value
        if isinstance(statement, ast.AnnAssign):
            target = statement.target
            if (
                isinstance(target, ast.Name)
                and target.id == attr
                and statement.value is not None
            ):
                return statement.value
    return None


def _string_constant(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def check_uses_in_channel(tree: ast.Module, path: Path) -> List[str]:
    """Invariant 1: routing classes declare ``uses_in_channel`` locally."""
    problems: List[str] = []
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        if not node.name.endswith("Routing"):
            continue
        if node.name == "RoutingAlgorithm":
            continue
        if _class_body_assign(node, "uses_in_channel") is None:
            problems.append(
                f"{path.relative_to(REPO_ROOT)}:{node.lineno}: class "
                f"{node.name} does not declare uses_in_channel in its body"
            )
    return problems


def _factories_dict(tree: ast.Module) -> Optional[ast.Dict]:
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "_FACTORIES":
                if isinstance(value, ast.Dict):
                    return value
    return None


def _class_names_by_module(paths: List[Path]) -> Dict[str, Optional[str]]:
    """Map class name -> its class-body ``name`` literal (or None)."""
    names: Dict[str, Optional[str]] = {}
    for path in paths:
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                names[node.name] = _string_constant(
                    _class_body_assign(node, "name")
                )
    return names


def check_registry(paths: List[Path]) -> List[str]:
    """Invariants 2 and 3: canonical keys; class-name literals match."""
    registry_path = SRC / "routing" / "registry.py"
    tree = ast.parse(registry_path.read_text(), filename=str(registry_path))
    factories = _factories_dict(tree)
    if factories is None:
        return [f"{registry_path.relative_to(REPO_ROOT)}: _FACTORIES dict not found"]

    problems: List[str] = []
    class_names = _class_names_by_module(paths)
    for key_node, value_node in zip(factories.keys, factories.values):
        key = _string_constant(key_node)
        if key is None:
            problems.append(
                f"{registry_path.relative_to(REPO_ROOT)}:"
                f"{key_node.lineno if key_node else '?'}: "
                "_FACTORIES key is not a string literal"
            )
            continue
        if canonical_name(key) != key:
            problems.append(
                f"{registry_path.relative_to(REPO_ROOT)}:{key_node.lineno}: "
                f"key {key!r} is not canonical "
                f"(canonical form: {canonical_name(key)!r})"
            )
        if isinstance(value_node, ast.Name):
            declared = class_names.get(value_node.id)
            if declared is not None and declared != key:
                problems.append(
                    f"{registry_path.relative_to(REPO_ROOT)}:"
                    f"{value_node.lineno}: class {value_node.id} pins "
                    f"name={declared!r} but is registered as {key!r}"
                )
    return problems


def _all_names(tree: ast.Module, path: Path) -> Optional[Set[str]]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "__all__" in targets:
                if not isinstance(node.value, (ast.List, ast.Tuple)):
                    return None
                names: Set[str] = set()
                for element in node.value.elts:
                    text = _string_constant(element)
                    if text is None:
                        return None
                    names.add(text)
                return names
    return None


def _top_level_definitions(tree: ast.Module) -> Set[str]:
    """Names bound at module top level: defs, classes, assigns, imports."""
    defined: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    defined.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                defined.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                defined.add(alias.asname or alias.name.split(".")[0])
    if "__getattr__" in defined:
        # PEP 562 lazy re-exports: string keys of a top-level _LAZY dict
        # are resolvable attributes even though never bound directly.
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "_LAZY" for t in node.targets
            ):
                continue
            if isinstance(node.value, ast.Dict):
                for key in node.value.keys:
                    text = _string_constant(key)
                    if text is not None:
                        defined.add(text)
    return defined


def check_all_coverage(tree: ast.Module, path: Path) -> List[str]:
    """Invariant 4: ``__all__`` exists, is complete, and is accurate."""
    relative = path.relative_to(REPO_ROOT)
    declared = _all_names(tree, path)
    if declared is None:
        return [f"{relative}: missing or non-literal __all__"]

    problems: List[str] = []
    defined = _top_level_definitions(tree)
    for name in sorted(declared):
        if name not in defined:
            problems.append(
                f"{relative}: __all__ lists {name!r}, which is not defined "
                "at module top level"
            )
    public = {
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        and not node.name.startswith("_")
    }
    for name in sorted(public - declared):
        problems.append(
            f"{relative}: public definition {name!r} is missing from __all__"
        )
    return problems


def main() -> int:
    paths = _module_paths()
    problems: List[str] = []
    for path in paths:
        tree = ast.parse(path.read_text(), filename=str(path))
        if path.parent.name == "routing":
            problems.extend(check_uses_in_channel(tree, path))
        problems.extend(check_all_coverage(tree, path))
    problems.extend(check_registry(paths))

    if problems:
        for line in problems:
            print(line, file=sys.stderr)
        print(f"lint_registry: {len(problems)} violations", file=sys.stderr)
        return 1
    print(f"lint_registry: {len(paths)} modules clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
