#!/usr/bin/env python
"""Bench regression guard: fail CI when the engine or the sweep slows down.

Compares a fresh bench payload against a committed baseline and exits
nonzero when a guarded scenario's rate metric regressed by more than
the threshold (default: 15%).  Works for both bench families:

* engine bench (``repro bench``, ``BENCH_engine.json``) — metric
  ``cycles_per_sec``, runs comparable when ``cycles_simulated`` match;
* sweep bench (``repro bench --sweep``, ``BENCH_sweep.json``) — metric
  ``points_per_sec``, runs comparable when ``points_total`` match.

Usage::

    repro bench --quick --out /tmp/bench-current.json
    python scripts/check_bench_regression.py \\
        --baseline BENCH_engine.json --current /tmp/bench-current.json

    repro bench --sweep --out /tmp/bench-sweep-current.json
    python scripts/check_bench_regression.py \\
        --baseline BENCH_sweep.json --current /tmp/bench-sweep-current.json \\
        --metric points_per_sec --scenario mesh16-grid

Several baseline/current/metric/scenario groups can be guarded in one
invocation with repeatable ``--check`` specs — e.g. both bench families
at once::

    python scripts/check_bench_regression.py \\
        --check 'BENCH_engine.json:/tmp/eng.json:cycles_per_sec:mesh16-west-first-sat,mesh16-west-first-sat-flat' \\
        --check 'BENCH_sweep.json:/tmp/sweep.json:points_per_sec:mesh16-grid'

Each spec is ``baseline:current:metric:scenario[,scenario...]``; the
exit code is the worst across all checks (so one >threshold regression
of either payload fails the invocation).

Non-guarded scenarios are reported for context but never fail the
check; wall-clock noise on shared CI runners is real, which is why the
guard watches a small set of scenarios with a generous threshold
rather than every scenario with a tight one.  Result digests, by
contrast, are machine-independent: a digest mismatch between runs of
the same size fails the guard regardless of speed.
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_SCENARIOS = ("mesh16-west-first-sat",)
DEFAULT_THRESHOLD = 0.15
DEFAULT_METRIC = "cycles_per_sec"

#: For each rate metric, the scenario field that must match for two
#: runs to be the same seeded workload (and digests comparable).
COUNT_KEYS = {
    "cycles_per_sec": "cycles_simulated",
    "points_per_sec": "points_total",
}


def compare(
    baseline: dict,
    current: dict,
    guarded: tuple,
    threshold: float,
    metric: str = DEFAULT_METRIC,
) -> int:
    count_key = COUNT_KEYS.get(metric)
    base_scenarios = baseline.get("scenarios", {})
    cur_scenarios = current.get("scenarios", {})
    failures = []
    unit = metric.replace("_per_sec", "/s")
    print(
        f"{'scenario':28s} {'baseline ' + unit:>16s} "
        f"{'current ' + unit:>16s} {'change':>8s}  guard"
    )
    digest_breaks = []
    for name in sorted(set(base_scenarios) & set(cur_scenarios)):
        base = base_scenarios[name]
        cur = cur_scenarios[name]
        base_rate = base.get(metric)
        cur_rate = cur.get(metric)
        if not base_rate or not cur_rate:
            print(f"{name:28s} {'-':>16s} {'-':>16s} {'-':>8s}  no {metric}")
            continue
        change = cur_rate / base_rate - 1.0
        is_guarded = name in guarded
        verdict = ""
        if is_guarded:
            if change < -threshold:
                verdict = "FAIL"
                failures.append((name, change))
            else:
                verdict = "ok"
        # Same workload size => the run is the same seeded workload,
        # and its result digest is machine-independent: any mismatch
        # means simulator behavior changed, not just speed.
        if (
            count_key is not None
            and base.get(count_key) == cur.get(count_key)
            and base.get("result_digest")
            and cur.get("result_digest")
            and base["result_digest"] != cur["result_digest"]
        ):
            digest_breaks.append(name)
            verdict = (verdict + " digest-mismatch").strip()
        print(
            f"{name:28s} {base_rate:16.1f} {cur_rate:16.1f} "
            f"{change:+7.1%}  {verdict}"
        )
    missing = [name for name in guarded if name not in cur_scenarios]
    if missing:
        print(f"guarded scenario(s) missing from current payload: {missing}")
        return 2
    missing = [name for name in guarded if name not in base_scenarios]
    if missing:
        print(f"guarded scenario(s) missing from baseline: {missing}")
        return 2
    if digest_breaks:
        print(
            "BIT-IDENTITY: result digests changed for same-size runs: "
            f"{digest_breaks}"
        )
    if failures:
        for name, change in failures:
            print(
                f"REGRESSION: {name} is {-change:.1%} slower than the "
                f"committed baseline (threshold {threshold:.0%})"
            )
    if failures or digest_breaks:
        return 1
    print("bench regression guard: ok")
    return 0


def parse_check(spec: str) -> tuple:
    """Parse one ``baseline:current:metric:scen[,scen...]`` spec."""
    parts = spec.split(":")
    if len(parts) != 4:
        raise ValueError(
            f"bad --check spec {spec!r}: expected "
            "baseline:current:metric:scenario[,scenario...]"
        )
    baseline, current, metric, scenarios = parts
    if metric not in COUNT_KEYS:
        raise ValueError(
            f"bad --check spec {spec!r}: unknown metric {metric!r} "
            f"(known: {', '.join(sorted(COUNT_KEYS))})"
        )
    guarded = tuple(s for s in scenarios.split(",") if s)
    if not guarded:
        raise ValueError(f"bad --check spec {spec!r}: no scenarios")
    return baseline, current, metric, guarded


def run_check(baseline_path: str, current_path: str, metric: str,
              guarded: tuple, threshold: float) -> int:
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    with open(current_path) as fh:
        current = json.load(fh)
    print(f"== {baseline_path} vs {current_path} ({metric}) ==")
    return compare(baseline, current, guarded, threshold, metric=metric)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default="BENCH_engine.json",
        help="committed baseline payload",
    )
    parser.add_argument(
        "--current", default=None, help="freshly produced bench payload"
    )
    parser.add_argument(
        "--scenario",
        nargs="+",
        default=list(DEFAULT_SCENARIOS),
        help="scenario name(s) the guard fails on",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional slowdown before failing (0.15 = 15%%)",
    )
    parser.add_argument(
        "--metric",
        default=DEFAULT_METRIC,
        choices=sorted(COUNT_KEYS),
        help="scenario rate metric to guard",
    )
    parser.add_argument(
        "--check",
        action="append",
        default=None,
        metavar="BASE:CURRENT:METRIC:SCEN[,SCEN...]",
        help="guard one baseline/current/metric/scenario group; "
        "repeatable, exit code is the worst across groups "
        "(mutually exclusive with --current)",
    )
    args = parser.parse_args(argv)
    if args.check:
        if args.current is not None:
            parser.error("--check and --current are mutually exclusive")
        try:
            checks = [parse_check(spec) for spec in args.check]
        except ValueError as exc:
            parser.error(str(exc))
        worst = 0
        for baseline_path, current_path, metric, guarded in checks:
            code = run_check(
                baseline_path, current_path, metric, guarded, args.threshold
            )
            worst = max(worst, code)
            print()
        return worst
    if args.current is None:
        parser.error("one of --current or --check is required")
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)
    return compare(
        baseline, current, tuple(args.scenario), args.threshold,
        metric=args.metric,
    )


if __name__ == "__main__":
    sys.exit(main())
