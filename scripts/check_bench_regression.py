#!/usr/bin/env python
"""Bench regression guard: fail CI when the engine slows down.

Compares a fresh ``repro bench`` payload against the committed
``BENCH_engine.json`` baseline and exits nonzero when a guarded
scenario's ``cycles_per_sec`` regressed by more than the threshold
(default: 15% on ``mesh16-west-first-sat``, the saturated 16x16-mesh
scenario that dominates paper-scale sweep time).

Usage::

    repro bench --quick --out /tmp/bench-current.json
    python scripts/check_bench_regression.py \\
        --baseline BENCH_engine.json --current /tmp/bench-current.json

Non-guarded scenarios are reported for context but never fail the
check; wall-clock noise on shared CI runners is real, which is why the
guard watches one long-running scenario with a generous threshold
rather than every scenario with a tight one.
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_SCENARIOS = ("mesh16-west-first-sat",)
DEFAULT_THRESHOLD = 0.15


def compare(
    baseline: dict,
    current: dict,
    guarded: tuple,
    threshold: float,
) -> int:
    base_scenarios = baseline.get("scenarios", {})
    cur_scenarios = current.get("scenarios", {})
    failures = []
    print(
        f"{'scenario':28s} {'baseline c/s':>14s} {'current c/s':>14s} "
        f"{'change':>8s}  guard"
    )
    digest_breaks = []
    for name in sorted(set(base_scenarios) & set(cur_scenarios)):
        base = base_scenarios[name]
        cur = cur_scenarios[name]
        base_rate = base["cycles_per_sec"]
        cur_rate = cur["cycles_per_sec"]
        change = cur_rate / base_rate - 1.0
        is_guarded = name in guarded
        verdict = ""
        if is_guarded:
            if change < -threshold:
                verdict = "FAIL"
                failures.append((name, change))
            else:
                verdict = "ok"
        # Same simulated cycles => the run is the same seeded workload,
        # and its result digest is machine-independent: any mismatch
        # means engine behavior changed, not just speed.
        if (
            base.get("cycles_simulated") == cur.get("cycles_simulated")
            and base.get("result_digest")
            and cur.get("result_digest")
            and base["result_digest"] != cur["result_digest"]
        ):
            digest_breaks.append(name)
            verdict = (verdict + " digest-mismatch").strip()
        print(
            f"{name:28s} {base_rate:14.0f} {cur_rate:14.0f} "
            f"{change:+7.1%}  {verdict}"
        )
    missing = [name for name in guarded if name not in cur_scenarios]
    if missing:
        print(f"guarded scenario(s) missing from current payload: {missing}")
        return 2
    missing = [name for name in guarded if name not in base_scenarios]
    if missing:
        print(f"guarded scenario(s) missing from baseline: {missing}")
        return 2
    if digest_breaks:
        print(
            "BIT-IDENTITY: result digests changed for same-cycle runs: "
            f"{digest_breaks}"
        )
    if failures:
        for name, change in failures:
            print(
                f"REGRESSION: {name} is {-change:.1%} slower than the "
                f"committed baseline (threshold {threshold:.0%})"
            )
    if failures or digest_breaks:
        return 1
    print("bench regression guard: ok")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default="BENCH_engine.json",
        help="committed baseline payload",
    )
    parser.add_argument(
        "--current", required=True, help="freshly produced bench payload"
    )
    parser.add_argument(
        "--scenario",
        nargs="+",
        default=list(DEFAULT_SCENARIOS),
        help="scenario name(s) the guard fails on",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional slowdown before failing (0.15 = 15%%)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)
    return compare(baseline, current, tuple(args.scenario), args.threshold)


if __name__ == "__main__":
    sys.exit(main())
