#!/usr/bin/env python
"""Run every performance figure at the paper's 256-node scale.

Produces the numbers recorded in EXPERIMENTS.md.  Expect tens of minutes
in pure Python; pass ``--preset mid`` for a faster pass at the same
topology sizes with shorter windows.

Run:  python scripts/run_paper_scale.py [--preset paper|mid] [--out results.txt]
"""

import argparse
import sys
import time

from repro.experiments import figure13, figure14, figure15, figure16
from repro.experiments.tables import path_length_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="paper", choices=["quick", "mid", "paper"])
    parser.add_argument("--out", default=None)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    out = open(args.out, "w") if args.out else sys.stdout

    def emit(text=""):
        print(text, file=out, flush=True)

    emit(f"preset: {args.preset}   seed: {args.seed}")
    emit()
    emit("Section 6 path lengths:")
    emit(path_length_table())
    emit()
    for driver in (figure13, figure14, figure15, figure16):
        started = time.time()
        result = driver(preset=args.preset, seed=args.seed)
        emit(result.render())
        emit(f"[{driver.__name__} took {time.time() - started:.0f}s]")
        emit()
    if args.out:
        out.close()


if __name__ == "__main__":
    main()
