#!/usr/bin/env python
"""Run every performance figure at the paper's 256-node scale.

Produces the numbers recorded in EXPERIMENTS.md.  Expect tens of minutes
in pure Python serially; ``--jobs N`` fans simulation points out over N
worker processes, and ``--cache-dir DIR`` lets an interrupted run resume
without resimulating finished points.  Pass ``--preset mid`` for a
faster pass at the same topology sizes with shorter windows.

Run:  python scripts/run_paper_scale.py [--preset paper|mid]
          [--jobs N] [--cache-dir DIR] [--out results.txt]
"""

import argparse
import sys
import time

from repro.analysis.executor import ProgressPrinter, SweepExecutor
from repro.experiments import figure13, figure14, figure15, figure16
from repro.experiments.tables import path_length_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="paper", choices=["quick", "mid", "paper"])
    parser.add_argument("--out", default=None)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel worker processes")
    parser.add_argument("--cache-dir", default=None,
                        help="reuse cached simulation points across runs")
    parser.add_argument("--progress", action="store_true",
                        help="narrate per-point progress on stderr")
    args = parser.parse_args()

    out = open(args.out, "w") if args.out else sys.stdout
    executor = SweepExecutor(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        hooks=ProgressPrinter() if args.progress else None,
    )

    def emit(text=""):
        print(text, file=out, flush=True)

    emit(f"preset: {args.preset}   seed: {args.seed}   jobs: {args.jobs}")
    emit()
    emit("Section 6 path lengths:")
    emit(path_length_table())
    emit()
    for driver in (figure13, figure14, figure15, figure16):
        started = time.time()
        result = driver(preset=args.preset, seed=args.seed, executor=executor)
        emit(result.render())
        emit(f"[{driver.__name__} took {time.time() - started:.0f}s]")
        emit()
    if args.out:
        out.close()


if __name__ == "__main__":
    main()
