#!/usr/bin/env python
"""The turn model beyond 90-degree turns (Section 7 future work).

The paper closes by proposing the turn model be applied "to other
topologies, such as hexagonal, octagonal, and cube-connected cycle
networks ... In such topologies, the turns are not necessarily 90-degrees
and the abstract cycles are not necessarily formed by four turns."

This example realizes that program for the first two: hexagonal and
octagonal meshes with negative-first routing, certified deadlock free
both by the Dally-Seitz dependency check and by the generalized Theorem 5
potential numbering, then simulated against axis-order baselines that
ignore the diagonal channels.

Run:  python examples/future_topologies.py
"""

from repro.core.channel_graph import is_deadlock_free
from repro.core.numbering import certifies, potential_numbering
from repro.routing import (
    HexDimensionOrderRouting,
    HexNegativeFirstRouting,
    OctDimensionOrderRouting,
    OctNegativeFirstRouting,
)
from repro.sim import SimulationConfig, simulate
from repro.topology import HexMesh, OctMesh
from repro.traffic import UniformTraffic


def certify(label, topology, routing, potential):
    safe = is_deadlock_free(topology, routing)
    numbered = certifies(
        topology, routing, potential_numbering(topology, potential), "increasing"
    )
    print(f"  {label:22s} Dally-Seitz acyclic: {safe}   "
          f"Theorem-5-style numbering: {numbered}")
    assert safe and numbered


def main() -> None:
    config = SimulationConfig(
        warmup_cycles=800, measure_cycles=4_000, drain_cycles=1_500
    )

    print("Hexagonal 6x6 mesh (six directions, 60/120-degree turns):")
    hexm = HexMesh(6, 6)
    hex_nf = HexNegativeFirstRouting(hexm)
    certify("hex-negative-first", hexm, hex_nf, sum)
    nf = simulate(hexm, hex_nf, UniformTraffic(hexm), 0.12, config=config)
    ab = simulate(hexm, HexDimensionOrderRouting(hexm), UniformTraffic(hexm),
                  0.12, config=config)
    print(f"  uniform traffic: NF hops {nf.avg_hops:.2f} vs axis-order "
          f"{ab.avg_hops:.2f} (diagonals shorten paths)")

    print()
    print("Octagonal 6x6 mesh (eight directions, 45-degree turns):")
    octm = OctMesh(6, 6)
    oct_nf = OctNegativeFirstRouting(octm)
    certify("oct-negative-first", octm, oct_nf, octm.potential)
    nf = simulate(octm, oct_nf, UniformTraffic(octm), 0.12, config=config)
    ab = simulate(octm, OctDimensionOrderRouting(octm), UniformTraffic(octm),
                  0.12, config=config)
    print(f"  uniform traffic: NF hops {nf.avg_hops:.2f} vs axis-order "
          f"{ab.avg_hops:.2f}")
    print()
    print("Note the octagonal case needs a lexicographic potential "
          "(phi = n*a + b): the anti-diagonal leaves the coordinate sum "
          "unchanged, exactly the kind of subtlety the paper anticipated.")


if __name__ == "__main__":
    main()
