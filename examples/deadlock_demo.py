#!/usr/bin/env python
"""Watch wormhole deadlock happen — and the turn model prevent it.

Three demonstrations:

1. Figure 1: minimal adaptive routing with *no* prohibited turns drives a
   4x4 mesh into deadlock within a few hundred cycles.
2. Figure 4: prohibiting one turn per abstract cycle is not enough — the
   east-south inverse pair leaves both cycles intact, and southeast-shift
   traffic deadlocks it.  The same workload completes under west-first.
3. The static counterpart: the Dally-Seitz channel-dependency check
   rejects both faulty relations a priori and certifies the turn-model
   algorithms.

Run:  python examples/deadlock_demo.py
"""

from repro.core.channel_graph import find_dependency_cycle, is_deadlock_free
from repro.routing import make_routing
from repro.sim import SimulationConfig, WormholeSimulator
from repro.sim.deadlock import (
    figure4_routing,
    run_deadlock_demo,
    run_figure4_demo,
    southeast_shift_pattern,
    unrestricted_adaptive_routing,
)
from repro.topology import Mesh2D
from repro.traffic.workload import SizeDistribution, Workload


def dynamic_demos() -> None:
    print("=== Dynamic demonstrations (simulator deadlock detector) ===")
    result = run_deadlock_demo()
    print(
        f"Figure 1 - unrestricted adaptive routing: "
        f"{'DEADLOCKED' if result.deadlocked else 'survived'} "
        f"after {result.total_delivered} deliveries"
    )

    for name in ("west-first", "negative-first"):
        routing = make_routing(name, Mesh2D(4, 4))
        result = run_deadlock_demo(routing=routing)
        print(
            f"         {name} on the same workload: "
            f"{'DEADLOCKED' if result.deadlocked else 'survived'} "
            f"({result.total_delivered} deliveries)"
        )

    result = run_figure4_demo()
    print(
        f"Figure 4 - faulty east/south prohibition under southeast-shift: "
        f"{'DEADLOCKED' if result.deadlocked else 'survived'}"
    )

    mesh = Mesh2D(5, 5)
    west_first = make_routing("west-first", mesh)
    workload = Workload(
        pattern=southeast_shift_pattern(west_first),
        sizes=SizeDistribution.fixed(24),
        offered_load=0.8,
        seed=0,
    )
    config = SimulationConfig(
        warmup_cycles=0, measure_cycles=12_000, drain_cycles=0,
        deadlock_threshold=500,
    )
    result = WormholeSimulator(west_first, workload, config).run()
    print(
        f"         west-first on the same workload: "
        f"{'DEADLOCKED' if result.deadlocked else 'survived'} "
        f"({result.total_delivered} deliveries)"
    )


def static_checks() -> None:
    print()
    print("=== Static checks (Dally-Seitz channel dependency graph) ===")
    mesh = Mesh2D(4, 4)
    for label, routing in (
        ("unrestricted adaptive", unrestricted_adaptive_routing(mesh)),
        ("figure-4 faulty pair", figure4_routing(mesh)),
        ("west-first", make_routing("west-first", mesh)),
        ("north-last", make_routing("north-last", mesh)),
        ("negative-first", make_routing("negative-first", mesh)),
        ("xy", make_routing("xy", mesh)),
    ):
        if is_deadlock_free(mesh, routing):
            print(f"{label:24s} channel dependency graph acyclic: SAFE")
        else:
            cycle = find_dependency_cycle(mesh, routing)
            print(
                f"{label:24s} dependency cycle of {len(cycle)} channels: UNSAFE"
            )


if __name__ == "__main__":
    dynamic_demos()
    static_checks()
