#!/usr/bin/env python
"""Design your own routing algorithm with the turn model.

Walks the six steps of Section 2 interactively:

1-3. Enumerate the directions, turns, and abstract cycles of a 2D mesh.
4.   Pick one turn to prohibit from each cycle — here the "south-last"
     combination (one of the twelve valid choices that is *not* among the
     paper's three canonical classes' representatives) — and let the
     model verify it breaks every cycle, complex ones included.
6.   Ask the model for the maximal set of safe 180-degree turns.

The resulting restriction drives the generic turn-table router, which is
then certified deadlock free and simulated against xy on hotspot traffic.

Run:  python examples/custom_turn_model.py
"""

from repro.core.channel_graph import is_deadlock_free
from repro.core.directions import EAST, NORTH, SOUTH, WEST
from repro.core.model import TurnModel
from repro.core.turns import Turn
from repro.routing import TurnRestrictionRouting, make_routing
from repro.sim import SimulationConfig, WormholeSimulator
from repro.topology import Mesh2D
from repro.traffic import HotspotTraffic, Workload


def main() -> None:
    model = TurnModel(2)
    print("Step 1 - directions:", ", ".join(map(str, model.directions())))
    print(f"Step 2 - {len(model.turns())} ninety-degree turns")
    print(f"Step 3 - {len(model.cycles())} abstract cycles:")
    for cycle in model.cycles():
        print("   ", " -> ".join(str(t) for t in cycle))

    # Step 4: prohibit south->west (clockwise cycle) and south->east
    # (counterclockwise cycle): "south-first" — to travel south a packet
    # must start south.  This is the 180-degree rotation of north-last.
    prohibited = [Turn(SOUTH, WEST), Turn(SOUTH, EAST)]
    restriction = model.restriction(prohibited, name="south-first")
    print(f"\nStep 4 - prohibiting: {', '.join(map(str, prohibited))}")
    print("         validated: breaks every cycle, deadlock free")
    print(
        "Step 6 - safe reversals added:",
        ", ".join(sorted(map(str, restriction.allowed_reversals))) or "none",
    )

    mesh = Mesh2D(8, 8)
    routing = TurnRestrictionRouting(mesh, restriction, minimal=True)
    assert is_deadlock_free(mesh, routing)
    print("\nDally-Seitz check on the 8x8 mesh: acyclic (deadlock free)")

    # Hotspot traffic: 20% of messages target (6, 6).
    config = SimulationConfig(
        warmup_cycles=1_000, measure_cycles=6_000, drain_cycles=2_000
    )
    print("\nHotspot traffic (20% to node (6,6)), offered load 0.15:")
    print(f"{'algorithm':14s} {'throughput':>12s} {'latency':>10s}")
    for name, algorithm in (
        ("xy", make_routing("xy", mesh)),
        ("south-first", routing),
    ):
        workload = Workload(
            pattern=HotspotTraffic(mesh, hotspot=(6, 6), hotspot_fraction=0.2),
            offered_load=0.15,
        )
        result = WormholeSimulator(algorithm, workload, config).run()
        print(
            f"{name:14s} {result.throughput_flits_per_usec:9.1f} fl/us "
            f"{result.avg_latency_usec:8.2f} us"
        )
    print("\nThe derived south-first algorithm is one of the twelve valid")
    print("prohibitions of Section 3 (a rotation of the north-last class).")


if __name__ == "__main__":
    main()
