#!/usr/bin/env python
"""Reproduce Figure 16 and the Section 5 worked example on hypercubes.

First prints the paper's p-cube routing table for the binary 10-cube
(source 1011010100 to destination 0010111001: 36 shortest paths, choice
counts 3(+2), 2(+2), 1(+2), 3, 2, 1), then sweeps reverse-flip traffic on
a hypercube comparing e-cube with the partially adaptive algorithms.

Run:  python examples/hypercube_reverse_flip.py [--preset quick|mid|paper]
"""

import argparse

from repro.experiments import figure16, pcube_example_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--preset", default="quick", choices=["quick", "mid", "paper"]
    )
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    print("Section 5 worked example (binary 10-cube):")
    _, rendered = pcube_example_table()
    print(rendered)
    print()

    result = figure16(preset=args.preset, seed=args.seed)
    print(result.render())
    print()
    print(
        f"Best adaptive algorithm sustains {result.adaptive_advantage:.2f}x "
        "e-cube (the paper reports roughly 4x on the 8-cube; the quick "
        "preset's 6-cube shows a smaller but still decisive gap)."
    )


if __name__ == "__main__":
    main()
