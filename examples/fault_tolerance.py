#!/usr/bin/env python
"""Fault tolerance: nonminimal turn-model routing around dead channels.

Fails channels in an 8x8 mesh and compares how many source-destination
pairs minimal and nonminimal west-first routing can still serve — the
paper's Section 1 claim that "nonminimal routing provides better fault
tolerance", made quantitative.  Finishes with a live simulation on a
faulty mesh, where the nonminimal router keeps delivering packets.

Run:  python examples/fault_tolerance.py
"""

from repro.analysis.fault_tolerance import fault_tolerance_sweep
from repro.core.restrictions import west_first_restriction
from repro.routing import TurnRestrictionRouting
from repro.sim import SimulationConfig, WormholeSimulator
from repro.topology import Mesh2D, random_channel_faults
from repro.traffic import Workload
from repro.traffic.patterns import UniformTraffic


def connectivity_sweep() -> None:
    mesh = Mesh2D(6, 6)
    print("6x6 mesh, west-first restriction, random channel faults")
    print(f"{'failed':>8s} {'minimal routable':>18s} {'nonminimal routable':>21s}")
    for point in fault_tolerance_sweep(
        mesh, west_first_restriction(), [0, 2, 4, 8, 12, 20], seed=1
    ):
        print(
            f"{point.failed_channels:8d} {point.minimal_fraction:17.1%} "
            f"{point.nonminimal_fraction:20.1%}"
        )


def live_simulation() -> None:
    mesh = Mesh2D(8, 8)
    faulty = random_channel_faults(mesh, 6, seed=5)
    routing = TurnRestrictionRouting(
        faulty, west_first_restriction(), minimal=False, name="west-first"
    )

    # Only generate traffic for pairs the router can still serve.
    from repro.sim.deadlock import RoutableUniformTraffic

    workload = Workload(
        pattern=RoutableUniformTraffic(routing), offered_load=0.08
    )
    config = SimulationConfig(
        warmup_cycles=1_000, measure_cycles=6_000, drain_cycles=2_000
    )
    result = WormholeSimulator(routing, workload, config).run()
    print()
    print(f"8x8 mesh with 6 failed channels, nonminimal west-first:")
    print(f"  {result.summary()}")
    print(f"  mean hops {result.avg_hops:.2f} (detours around the faults)")
    assert not result.deadlocked


if __name__ == "__main__":
    connectivity_sweep()
    live_simulation()
