#!/usr/bin/env python
"""Quickstart: simulate turn-model routing on a small mesh.

Builds an 8x8 wormhole-routed mesh, runs the nonadaptive xy algorithm and
the partially adaptive negative-first algorithm on matrix-transpose
traffic, and prints the latency/throughput comparison — a miniature of the
paper's Figure 14 experiment.

Run:  python examples/quickstart.py
"""

from repro.sim import SimulationConfig, simulate
from repro.topology import Mesh2D


def main() -> None:
    mesh = Mesh2D(8, 8)
    config = SimulationConfig(
        warmup_cycles=1_000, measure_cycles=6_000, drain_cycles=2_000
    )

    print("8x8 mesh, matrix-transpose traffic, offered load 0.25 flits/node/cycle")
    print(f"{'algorithm':16s} {'throughput':>12s} {'latency':>10s} {'status':>12s}")
    for name in ("xy", "west-first", "north-last", "negative-first"):
        result = simulate(
            mesh, name, "transpose", offered_load=0.25, config=config
        )
        status = "sustainable" if result.is_sustainable() else "saturated"
        print(
            f"{name:16s} {result.throughput_flits_per_usec:9.1f} fl/us "
            f"{result.avg_latency_usec:8.2f} us {status:>12s}"
        )

    print()
    print("The adaptive algorithms route around the transpose pattern's")
    print("congestion; negative-first is fully adaptive on every transpose")
    print("pair and sustains roughly twice xy's throughput (paper, Fig. 14).")


if __name__ == "__main__":
    main()
