#!/usr/bin/env python
"""Virtual channels: the "extra channels" alternative to the turn model.

The paper keeps the network channel set fixed and extracts adaptiveness
from the turns; the competing school adds virtual channels.  This example
runs both classics on our VC substrate:

1. **Lane-split xy/yx (o1turn)** on a two-lane 8x8 mesh — repairs xy
   routing's transpose pathology without any prohibited turn, at the
   cost of doubled buffers.
2. **Dateline dimension-order routing** on a two-lane 6-ary 2-cube —
   *minimal* deadlock-free torus routing, which Section 4.2 shows is
   impossible without extra channels.  Compared against the paper's own
   nonminimal negative-first torus extension on tornado traffic.

Run:  python examples/virtual_channels.py
"""

from repro.core.channel_graph import is_deadlock_free
from repro.routing import DatelineTorusRouting, o1turn_routing
from repro.sim import SimulationConfig, simulate
from repro.topology import Mesh2D, Torus, VirtualChannelTopology
from repro.traffic.permutations import make_pattern


def lane_split_demo() -> None:
    mesh = Mesh2D(8, 8)
    vc = VirtualChannelTopology(mesh, 2)
    o1 = o1turn_routing(vc)
    assert is_deadlock_free(vc, o1)
    config = SimulationConfig(
        warmup_cycles=1_000, measure_cycles=6_000, drain_cycles=0
    )
    print("Matrix transpose at load 0.8 (deep saturation), 8x8 mesh:")
    xy = simulate(mesh, "xy", "transpose", 0.8, config=config)
    o1r = simulate(vc, o1, make_pattern("transpose", vc), 0.8, config=config)
    nf = simulate(mesh, "negative-first", "transpose", 0.8, config=config)
    for label, result in (("xy (1 lane)", xy), ("o1turn (2 lanes)", o1r),
                          ("negative-first (1 lane)", nf)):
        print(f"  {label:24s} {result.throughput_flits_per_usec:7.1f} flits/us")
    print("Both remedies beat xy; the turn model gets there without the")
    print("extra buffers, o1turn without prohibiting any turn.")


def dateline_demo() -> None:
    torus = Torus(6, 2)
    vc = VirtualChannelTopology(torus, 2)
    dateline = DatelineTorusRouting(vc)
    assert is_deadlock_free(vc, dateline)
    config = SimulationConfig(
        warmup_cycles=800, measure_cycles=4_000, drain_cycles=1_500
    )
    print()
    print("Tornado traffic on a 6-ary 2-cube at load 0.15:")
    dl = simulate(vc, dateline, make_pattern("tornado", vc), 0.15, config=config)
    nf = simulate(torus, "negative-first-torus", "tornado", 0.15, config=config)
    print(f"  dateline DOR (minimal, 2 lanes):      {dl.summary()}")
    print(f"    mean hops {dl.avg_hops:.2f} (the tornado distance)")
    print(f"  negative-first torus (nonminimal):    {nf.summary()}")
    print(f"    mean hops {nf.avg_hops:.2f} (detours instead of lanes)")


if __name__ == "__main__":
    lane_split_demo()
    dateline_demo()
