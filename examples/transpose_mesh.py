#!/usr/bin/env python
"""Reproduce Figure 14: matrix-transpose traffic in a 2D mesh.

Sweeps the offered load for xy, west-first (ABONF), north-last (ABOPL),
and negative-first, printing the latency-vs-throughput series and the
sustainable-throughput comparison.  Pass ``--preset mid`` or
``--preset paper`` for the paper's 16x16 mesh (slower).

Run:  python examples/transpose_mesh.py [--preset quick|mid|paper]
"""

import argparse

from repro.experiments import figure14


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--preset", default="quick", choices=["quick", "mid", "paper"]
    )
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    result = figure14(preset=args.preset, seed=args.seed)
    print(result.render())
    print()
    advantage = result.adaptive_advantage
    print(
        f"Best adaptive algorithm sustains {advantage:.2f}x the xy baseline "
        "(the paper reports roughly 2x at 16x16)."
    )


if __name__ == "__main__":
    main()
