"""Smoke tests for the example scripts.

Each example must at least expose a ``main`` (or demo functions) and the
fast ones are executed end-to-end; the slow sweeps are exercised through
their underlying drivers elsewhere in the suite.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestExamplesExist:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "transpose_mesh.py",
            "hypercube_reverse_flip.py",
            "deadlock_demo.py",
            "custom_turn_model.py",
            "fault_tolerance.py",
            "virtual_channels.py",
            "future_topologies.py",
        ],
    )
    def test_present_and_documented(self, name):
        path = EXAMPLES / name
        assert path.exists(), name
        source = path.read_text()
        assert source.startswith("#!/usr/bin/env python"), name
        assert '"""' in source

    def test_examples_compile(self):
        for path in EXAMPLES.glob("*.py"):
            compile(path.read_text(), str(path), "exec")


class TestQuickstartRuns:
    def test_quickstart_end_to_end(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        out = completed.stdout
        assert "negative-first" in out
        assert "fl/us" in out
