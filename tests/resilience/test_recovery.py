"""Tests for recovery policies and their registry."""

import pytest

from repro.resilience import (
    AbortRun,
    DropAndCount,
    SourceRetransmit,
    available_recovery_policies,
    make_recovery_policy,
)
from repro.resilience.recovery import ABORT, DROP, RETRY


class TestDropAndCount:
    def test_always_drops(self):
        policy = DropAndCount()
        for attempt in (0, 1, 10):
            assert policy.decide(attempt).action == DROP


class TestSourceRetransmit:
    def test_backoff_doubles_then_caps(self):
        policy = SourceRetransmit(base_delay=8, delay_cap=64, max_attempts=10)
        delays = [policy.decide(k).delay for k in range(6)]
        assert delays == [8, 16, 32, 64, 64, 64]
        assert all(policy.decide(k).action == RETRY for k in range(6))

    def test_gives_up_after_max_attempts(self):
        policy = SourceRetransmit(max_attempts=3)
        assert policy.decide(2).action == RETRY
        assert policy.decide(3).action == DROP
        assert policy.decide(99).action == DROP

    def test_huge_attempt_does_not_overflow(self):
        policy = SourceRetransmit(
            base_delay=8, delay_cap=512, max_attempts=10**9
        )
        assert policy.decide(10**6).delay == 512

    def test_validation(self):
        with pytest.raises(ValueError):
            SourceRetransmit(base_delay=0)
        with pytest.raises(ValueError):
            SourceRetransmit(base_delay=16, delay_cap=8)
        with pytest.raises(ValueError):
            SourceRetransmit(max_attempts=0)


class TestAbortRun:
    def test_always_aborts(self):
        assert AbortRun().decide(0).action == ABORT


class TestRegistry:
    def test_available_names(self):
        assert available_recovery_policies() == ("abort", "drop", "retransmit")

    def test_make_by_name(self):
        assert isinstance(make_recovery_policy("drop"), DropAndCount)
        assert isinstance(make_recovery_policy("abort"), AbortRun)
        policy = make_recovery_policy(
            "retransmit", base_delay=4, delay_cap=32, max_attempts=2
        )
        assert isinstance(policy, SourceRetransmit)
        assert policy.decide(0).delay == 4

    def test_name_canonicalized(self):
        assert isinstance(make_recovery_policy("  Drop "), DropAndCount)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown recovery policy"):
            make_recovery_policy("pray")
