"""End-to-end engine tests under runtime fault injection."""

import pytest

from repro.resilience import (
    FAIL,
    AbortRun,
    DropAndCount,
    FaultController,
    FaultEvent,
    FaultSchedule,
    SourceRetransmit,
)
from repro.routing import make_routing
from repro.sim import SimulationConfig, TraceRecorder, WormholeSimulator
from repro.topology import Mesh2D
from repro.traffic import UniformTraffic, Workload
from repro.traffic.workload import SizeDistribution

MESH = (6, 6)
CONFIG = SimulationConfig(
    warmup_cycles=200, measure_cycles=1200, drain_cycles=800
)


def run_sim(
    schedule=None,
    policy=None,
    algorithm="west-first-nonminimal",
    load=0.08,
    seed=5,
    trace=None,
    controller_kwargs=None,
    config=CONFIG,
    disable_cache=False,
):
    mesh = Mesh2D(*MESH)
    routing = make_routing(algorithm, mesh)
    workload = Workload(
        pattern=UniformTraffic(mesh),
        sizes=SizeDistribution.fixed(4),
        offered_load=load,
        seed=seed,
    )
    controller = None
    if schedule is not None:
        controller = FaultController(
            schedule, policy, **(controller_kwargs or {})
        )
    sim = WormholeSimulator(
        routing, workload, config, trace=trace, resilience=controller
    )
    if disable_cache:
        sim._route_cache = None
    result = sim.run()
    return result, controller, sim


def fault_schedule(count=4, seed=3, heal_after=None, require_connected=True):
    mesh = Mesh2D(*MESH)
    return FaultSchedule.random(
        mesh,
        count,
        seed=seed,
        window=(CONFIG.warmup_cycles, CONFIG.warmup_cycles + 600),
        heal_after=heal_after,
        require_connected=require_connected,
    )


class TestNoFaultIdentity:
    def test_empty_schedule_bit_identical(self):
        plain, _, _ = run_sim(schedule=None)
        guarded, controller, _ = run_sim(schedule=FaultSchedule(()))
        assert guarded == plain
        assert controller.stats.faults_applied == 0
        assert controller.stats.casualties == 0

    def test_empty_schedule_identical_under_load(self):
        plain, _, _ = run_sim(schedule=None, load=0.25, algorithm="xy")
        guarded, _, _ = run_sim(
            schedule=FaultSchedule(()), load=0.25, algorithm="xy"
        )
        assert guarded == plain


class TestDropPolicy:
    def test_faults_applied_and_accounted(self):
        schedule = fault_schedule(count=4)
        result, controller, sim = run_sim(schedule, DropAndCount())
        stats = controller.stats
        assert stats.faults_applied == 4
        assert stats.recertifications > 0
        assert stats.created > 0
        # Every created message is delivered, dropped, or still pending
        # (in flight or queued) at drain end.
        assert stats.delivered + stats.dropped <= stats.created
        assert stats.delivered == result.total_delivered
        assert 0.0 < stats.delivered_fraction <= 1.0
        assert sim._stats.dropped_packets == stats.dropped

    def test_trace_records_fault_events(self):
        schedule = fault_schedule(count=4)
        trace = TraceRecorder()
        run_sim(schedule, DropAndCount(), trace=trace)
        kinds = set(trace.kinds())
        assert "fault" in kinds
        faults = [event for event in trace.events if event.kind == "fault"]
        assert len(faults) == 4
        assert all(event.pid == -1 for event in faults)
        assert all(event.detail[0] == FAIL for event in faults)

    def test_dropped_events_traced_when_casualties_occur(self):
        # xy cannot route around faults, so casualties (and drops) are
        # all but guaranteed at this fault count.
        schedule = fault_schedule(count=8, seed=1)
        trace = TraceRecorder()
        _, controller, _ = run_sim(
            schedule, DropAndCount(), algorithm="xy", trace=trace
        )
        dropped = [event for event in trace.events if event.kind == "dropped"]
        assert controller.stats.dropped == len(dropped)
        assert controller.stats.dropped > 0


class TestRetransmitPolicy:
    def test_retransmissions_happen(self):
        schedule = fault_schedule(count=8, seed=1)
        policy = SourceRetransmit(base_delay=8, delay_cap=64, max_attempts=3)
        trace = TraceRecorder()
        result, controller, _ = run_sim(
            schedule, policy, algorithm="xy", trace=trace
        )
        stats = controller.stats
        assert stats.casualties > 0
        assert stats.retransmissions > 0
        retrans = [
            event for event in trace.events if event.kind == "retransmitted"
        ]
        assert len(retrans) == stats.retransmissions
        # A retried message that ultimately gives up is dropped for good.
        assert stats.dropped + stats.delivered_after_recovery + stats.unresolved > 0

    def test_adaptive_algorithm_recovers_messages(self):
        # The nonminimal router re-derives reachability on the degraded
        # topology, so retransmitted messages can actually get through.
        schedule = fault_schedule(count=6, seed=2)
        policy = SourceRetransmit(base_delay=4, delay_cap=32, max_attempts=6)
        result, controller, _ = run_sim(schedule, policy, load=0.06)
        stats = controller.stats
        assert stats.faults_applied == 6
        if stats.casualties:
            assert stats.delivered_after_recovery + stats.dropped + stats.unresolved > 0
        assert stats.delivered_fraction > 0.9


class TestAbortPolicy:
    def test_run_stops_at_first_casualty(self):
        schedule = fault_schedule(count=8, seed=1)
        result, controller, _ = run_sim(schedule, AbortRun(), algorithm="xy")
        assert controller.stats.aborted
        assert controller.stats.casualties == 1
        # The clock stopped at the casualty, well before the full run.
        total = (
            CONFIG.warmup_cycles + CONFIG.measure_cycles + CONFIG.drain_cycles
        )
        assert controller.stats.end_cycle < total


class TestHealing:
    def test_heals_restore_throughput(self):
        schedule = fault_schedule(count=4, heal_after=150)
        result, controller, _ = run_sim(schedule, DropAndCount())
        stats = controller.stats
        assert stats.faults_applied == 4
        assert stats.heals_applied == 4
        assert controller.failed == frozenset()
        assert controller.current_routing.name


class TestRouteCacheConsistency:
    def test_cached_and_uncached_agree_under_faults(self):
        # The engine invalidates RouteCache entries on every fault; a
        # cache-off run must deliver the identical result.
        schedule = fault_schedule(count=5, seed=4)
        a, ca, _ = run_sim(schedule, DropAndCount())
        b, cb, _ = run_sim(schedule, DropAndCount(), disable_cache=True)
        assert a == b
        assert ca.stats.summary() == cb.stats.summary()
