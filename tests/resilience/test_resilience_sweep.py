"""The fault-sweep acceptance tests: adaptiveness buys fault tolerance.

The headline measurement of the resilience subsystem, asserted: under
escalating runtime link failures, the nonminimal turn-table router keeps
delivering messages where dimension-order xy strands them, and every
degraded topology the sweep routes against is re-certified deadlock-free
while the runs proceed.
"""

import json

import pytest

from repro.resilience import fault_sweep, render_fault_table
from repro.sim.config import SimulationConfig

CONFIG = SimulationConfig(
    warmup_cycles=400, measure_cycles=2000, drain_cycles=1000
)
FAULT_COUNTS = (0, 2, 4, 8)


@pytest.fixture(scope="module")
def sweep():
    return fault_sweep(
        "mesh:8x8",
        ["xy", "west-first-nonminimal"],
        "uniform",
        0.06,
        FAULT_COUNTS,
        config=CONFIG,
        seed=1,
        fault_seed=1,
    )


class TestAcceptance:
    def test_nonminimal_beats_xy_under_faults(self, sweep):
        wins = 0
        for count in FAULT_COUNTS[1:]:
            xy = sweep.cell("xy", count).delivered_fraction
            nonminimal = sweep.cell(
                "west-first-nonminimal", count
            ).delivered_fraction
            if nonminimal > xy:
                wins += 1
        assert wins >= 2, (
            "expected the nonminimal turn-table router to deliver a "
            "strictly higher fraction than xy at >= 2 fault counts"
        )

    def test_every_degraded_topology_recertified(self, sweep):
        for cell in sweep.cells:
            if cell.fault_count == 0:
                assert cell.resilience is None
                continue
            resilience = cell.resilience
            assert resilience["faults_applied"] == cell.fault_count
            assert resilience["recertifications"] > 0
            # One recertification per rebuild; never fewer rebuilds than
            # distinct fault arrival cycles, and each rebuild certified.
            assert (
                resilience["recertifications"] <= resilience["faults_applied"]
            )
            assert not cell.result.deadlocked

    def test_same_schedule_for_every_algorithm(self, sweep):
        # At a fixed fault count the schedule seed is algorithm-blind, so
        # delivered-fraction differences are attributable to routing.
        for count in FAULT_COUNTS[1:]:
            applied = {
                cell.resilience["faults_applied"]
                for cell in sweep.cells
                if cell.fault_count == count
            }
            assert applied == {count}

    def test_healthy_baseline_identical(self, sweep):
        xy = sweep.cell("xy", 0)
        nonminimal = sweep.cell("west-first-nonminimal", 0)
        assert xy.result.total_injected == nonminimal.result.total_injected


class TestSweepResult:
    def test_cell_lookup(self, sweep):
        assert sweep.cell("xy", 2).algorithm == "xy"
        with pytest.raises(KeyError):
            sweep.cell("xy", 3)
        with pytest.raises(KeyError):
            sweep.cell("pigeon", 2)

    def test_algorithms_in_order(self, sweep):
        assert sweep.algorithms() == ["xy", "west-first-nonminimal"]

    def test_to_json(self, sweep):
        payload = json.loads(sweep.to_json())
        assert payload["topology"] == "mesh:8x8"
        assert payload["fault_counts"] == list(FAULT_COUNTS)
        assert len(payload["cells"]) == 2 * len(FAULT_COUNTS)
        for cell in payload["cells"]:
            assert 0.0 <= cell["delivered_fraction"] <= 1.0

    def test_render_table(self, sweep):
        table = render_fault_table(sweep)
        assert "delivered fraction on mesh:8x8" in table
        assert "xy" in table and "west-first-nonminimal" in table
        for count in FAULT_COUNTS:
            assert f"{count} faults" in table
