"""Tests for the fault controller's engine-facing contract."""

from dataclasses import dataclass, field

import pytest

from repro.core.directions import EAST
from repro.resilience import (
    FAIL,
    HEAL,
    DegradedRouting,
    FaultController,
    FaultEvent,
    FaultSchedule,
    SourceRetransmit,
    build_controller,
)
from repro.routing import make_routing
from repro.sim.config import SimulationConfig
from repro.topology import Mesh2D
from repro.topology.faults import FaultyTopology
from repro.verify.suite import CertificationError

INF = float("inf")


@dataclass
class FakePacket:
    """The packet fields the controller reads, nothing more."""

    src: tuple
    dest: tuple
    create_time: float = 0.0
    size: int = 4
    hops: int = 0


def bound_controller(mesh, schedule, policy=None, **kwargs):
    routing = make_routing("west-first-nonminimal", mesh)
    controller = FaultController(schedule, policy, **kwargs)
    controller.bind(routing, mesh)
    return controller, routing


class TestLifecycle:
    def test_idle_with_empty_schedule(self, mesh44):
        controller, routing = bound_controller(mesh44, FaultSchedule(()))
        assert controller.next_wake == INF
        assert controller.next_event_cycle == INF
        assert controller.current_routing is routing
        assert controller.current_topology is mesh44
        assert not controller.retries_pending

    def test_bind_validates_schedule(self, mesh44, cube4):
        foreign = cube4.channels()[0]
        schedule = FaultSchedule([FaultEvent(1, FAIL, foreign)])
        controller = FaultController(schedule)
        with pytest.raises(ValueError):
            controller.bind(make_routing("west-first-nonminimal", mesh44), mesh44)

    def test_advance_applies_due_events(self, mesh44):
        ch = mesh44.channel_in_direction((1, 1), EAST)
        schedule = FaultSchedule([FaultEvent(10, FAIL, ch)])
        controller, routing = bound_controller(mesh44, schedule)
        assert controller.next_wake == 10
        assert controller.advance(9) == []
        applied = controller.advance(10)
        assert [event.kind for event in applied] == [FAIL]
        assert controller.failed == frozenset([ch])
        assert isinstance(controller.current_topology, FaultyTopology)
        assert controller.current_routing is not routing
        assert controller.next_wake == INF

    def test_heal_restores_healthy_pair(self, mesh44):
        ch = mesh44.channel_in_direction((1, 1), EAST)
        schedule = FaultSchedule(
            [FaultEvent(5, FAIL, ch), FaultEvent(20, HEAL, ch)]
        )
        controller, routing = bound_controller(mesh44, schedule)
        controller.advance(5)
        assert controller.failed
        controller.advance(20)
        assert controller.failed == frozenset()
        assert controller.current_routing is routing
        assert controller.current_topology is mesh44
        assert controller.stats.heals_applied == 1


class TestRecertification:
    def test_each_rebuild_recertified(self, mesh44):
        schedule = FaultSchedule.random(mesh44, 3, seed=2, window=(0, 30))
        controller, _ = bound_controller(mesh44, schedule)
        rebuilds = 0
        for event in schedule:
            if controller.advance(event.cycle):
                rebuilds += 1
        assert rebuilds > 0
        assert controller.stats.recertifications == rebuilds

    def test_recertify_can_be_disabled(self, mesh44):
        schedule = FaultSchedule.random(mesh44, 3, seed=2, window=(0, 30))
        controller, _ = bound_controller(mesh44, schedule, recertify=False)
        controller.advance(10**9)
        assert controller.stats.recertifications == 0
        assert controller.stats.faults_applied == 3

    def test_unsafe_degraded_routing_refuted(self, mesh44):
        # An adaptive relation with no turn restrictions is cyclic; the
        # recertification gate must catch it the moment a fault forces a
        # rebuild.
        from repro.sim.deadlock import unrestricted_adaptive_routing

        ch = mesh44.channel_in_direction((1, 1), EAST)
        schedule = FaultSchedule([FaultEvent(1, FAIL, ch)])
        controller = FaultController(
            schedule,
            routing_factory=lambda t: unrestricted_adaptive_routing(t),
        )
        controller.bind(unrestricted_adaptive_routing(mesh44), mesh44)
        with pytest.raises(CertificationError):
            controller.advance(1)


class TestDegradedRouting:
    def test_filters_failed_candidates(self, mesh44):
        routing = make_routing("west-first-nonminimal", mesh44)
        ch = mesh44.channel_in_direction((1, 1), EAST)
        degraded = DegradedRouting(
            routing, frozenset([ch]), FaultyTopology(mesh44, [ch])
        )
        assert degraded.degraded_base is routing
        assert degraded.name == routing.name
        for dest in [(3, 1), (2, 2), (0, 0)]:
            candidates = degraded.route(None, (1, 1), dest)
            assert ch not in candidates
            healthy = routing.route(None, (1, 1), dest)
            assert set(candidates) == set(healthy) - {ch}


class TestRecovery:
    def test_retransmit_flow(self, mesh44):
        policy = SourceRetransmit(base_delay=8, delay_cap=32, max_attempts=2)
        controller, _ = bound_controller(mesh44, FaultSchedule(()), policy)
        packet = FakePacket(src=(0, 0), dest=(3, 3), create_time=5.0)
        decision = controller.casualty(packet, 100)
        assert decision.action == "retry"
        assert decision.delay == 8
        assert controller.retries_pending
        assert controller.next_wake == 108
        assert controller.pop_retries(107) == []
        (entry,) = controller.pop_retries(108)
        ready, _seq, src, dest, size, create_time = entry
        assert (ready, src, dest, size, create_time) == (108, (0, 0), (3, 3), 4, 5.0)
        assert not controller.retries_pending
        # Second loss doubles the backoff; third exhausts the policy.
        assert controller.casualty(packet, 200).delay == 16
        controller.pop_retries(10**9)
        assert controller.casualty(packet, 300).action == "drop"
        assert controller.stats.retransmissions == 2
        assert controller.stats.dropped == 1
        assert controller.stats.casualties == 3

    def test_retry_heap_orders_by_ready_cycle(self, mesh44):
        policy = SourceRetransmit(base_delay=8, delay_cap=512, max_attempts=9)
        controller, _ = bound_controller(mesh44, FaultSchedule(()), policy)
        late = FakePacket(src=(0, 0), dest=(1, 1), create_time=1.0)
        early = FakePacket(src=(2, 2), dest=(3, 3), create_time=2.0)
        controller.casualty(late, 100)  # ready at 108
        controller.casualty(early, 90)  # ready at 98
        entries = controller.pop_retries(10**9)
        assert [entry[0] for entry in entries] == [98, 108]

    def test_abort_sets_flag(self, mesh44):
        from repro.resilience import AbortRun

        controller, _ = bound_controller(mesh44, FaultSchedule(()), AbortRun())
        decision = controller.casualty(FakePacket((0, 0), (1, 1)), 10)
        assert decision.action == "abort"
        assert controller.stats.aborted

    def test_delivery_accounting(self, mesh44):
        controller, _ = bound_controller(mesh44, FaultSchedule(()))
        direct = FakePacket((0, 0), (2, 1), create_time=0.0, hops=3)
        controller.on_delivered(direct, 50)
        detoured = FakePacket((0, 0), (2, 1), create_time=1.0, hops=7)
        controller.on_delivered(detoured, 60)
        stats = controller.stats
        assert stats.delivered == 2
        assert stats.detoured_packets == 1
        assert stats.detour_hops_total == 4

    def test_recovery_latency_tracked(self, mesh44):
        policy = SourceRetransmit()
        controller, _ = bound_controller(mesh44, FaultSchedule(()), policy)
        packet = FakePacket((0, 0), (3, 3), create_time=2.0, hops=6)
        controller.casualty(packet, 100)
        controller.pop_retries(10**9)
        controller.on_delivered(packet, 250)
        controller.finish(created=1, cycle=300)
        stats = controller.stats
        assert stats.delivered_after_recovery == 1
        assert stats.recovery_latency_cycles == [150]
        assert stats.unresolved == 0
        assert stats.summary()["recovery_latency_max"] == 150


class TestBuildController:
    def test_from_spec(self, mesh88):
        from repro.analysis.executor import ResilienceSpec

        spec = ResilienceSpec(fault_count=4, fault_seed=9, policy="retransmit")
        config = SimulationConfig(
            warmup_cycles=100, measure_cycles=400, drain_cycles=100
        )
        controller = build_controller(mesh88, "west-first-nonminimal", spec, config)
        fails = [event for event in controller.schedule if event.kind == FAIL]
        assert len(fails) == 4
        assert all(100 <= event.cycle < 500 for event in fails)
        assert isinstance(controller.policy, SourceRetransmit)
        # The factory rebuilds the registry algorithm, not a filter wrapper.
        controller.bind(make_routing("west-first-nonminimal", mesh88), mesh88)
        controller.advance(10**9)
        assert not isinstance(controller.current_routing, DegradedRouting)
        assert controller.current_routing.name

    def test_minimal_algorithms_degrade_by_filtering(self, mesh88):
        # Minimal adaptive algorithms enforce their turn discipline via
        # candidate availability; rebuilt on a degraded topology they can
        # re-order hops and fail recertification (negative-first is the
        # clear case).  build_controller therefore filters them instead,
        # which keeps every degraded configuration certifiably safe.
        from repro.analysis.executor import ResilienceSpec

        spec = ResilienceSpec(fault_count=6, fault_seed=2)
        config = SimulationConfig(
            warmup_cycles=100, measure_cycles=400, drain_cycles=100
        )
        for name in ("xy", "west-first", "negative-first"):
            controller = build_controller(mesh88, name, spec, config)
            controller.bind(make_routing(name, mesh88), mesh88)
            controller.advance(10**9)  # recertifies every rebuild
            assert isinstance(controller.current_routing, DegradedRouting)
            assert controller.stats.recertifications > 0
