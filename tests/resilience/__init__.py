"""Tests for the runtime fault-injection subsystem."""
