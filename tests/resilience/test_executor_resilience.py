"""Tests for the executor's resilience plumbing: specs, cache, outcomes."""

import dataclasses

import pytest

from repro.analysis.executor import (
    ExperimentSpec,
    PointSpec,
    ResilienceSpec,
    ResultCache,
    SweepExecutor,
)

BASE = dict(
    topology="mesh:6x6",
    routing="west-first-nonminimal",
    pattern="uniform",
    load=0.08,
    sizes=((4, 1.0),),
    seed=5,
)

FAST = dict(warmup_cycles=100, measure_cycles=600, drain_cycles=400)


def fast_spec(**kwargs):
    from repro.analysis.executor import ConfigSpec
    from repro.sim.config import SimulationConfig

    config = ConfigSpec.from_config(SimulationConfig(**FAST))
    return ExperimentSpec(config=config, **BASE, **kwargs)


class TestResilienceSpec:
    def test_policy_canonicalized(self):
        assert ResilienceSpec(policy="  DROP ").policy == "drop"

    def test_window_coerced_to_int_tuple(self):
        spec = ResilienceSpec(window=[10.0, 50.0])
        assert spec.window == (10, 50)

    def test_negative_fault_count_rejected(self):
        with pytest.raises(ValueError):
            ResilienceSpec(fault_count=-1)

    def test_defaults(self):
        spec = ResilienceSpec()
        assert spec.fault_count == 0
        assert spec.policy == "drop"
        assert spec.recertify
        assert spec.require_connected


class TestSpecSerialization:
    def test_none_resilience_omitted_from_dict(self):
        # Hash stability: a spec without resilience serializes exactly as
        # before the field existed, so cached results stay addressable.
        spec = fast_spec()
        assert "resilience" not in spec.to_dict()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_resilience_round_trip(self):
        spec = fast_spec(
            resilience=ResilienceSpec(
                fault_count=3, fault_seed=7, policy="retransmit", window=(50, 400)
            )
        )
        payload = spec.to_dict()
        assert payload["resilience"]["fault_count"] == 3
        assert payload["resilience"]["window"] == [50, 400]
        restored = ExperimentSpec.from_dict(payload)
        assert restored == spec
        assert restored.resilience.window == (50, 400)

    def test_hash_differs_with_resilience(self):
        plain = fast_spec()
        faulted = fast_spec(resilience=ResilienceSpec(fault_count=3))
        assert plain.content_hash() != faulted.content_hash()


class TestRunDetailed:
    def test_plain_spec_has_no_extras(self):
        result, extras = fast_spec().run_detailed()
        assert extras is None
        assert result == fast_spec().run()

    def test_faulted_spec_returns_summary(self):
        spec = fast_spec(
            resilience=ResilienceSpec(fault_count=3, fault_seed=4)
        )
        result, extras = spec.run_detailed()
        assert extras is not None
        assert extras["faults_applied"] == 3
        assert extras["recertifications"] > 0
        assert 0.0 < extras["delivered_fraction"] <= 1.0

    def test_zero_fault_resilience_spec_matches_plain(self):
        # A 0-fault resilience run takes the fault path with an empty
        # schedule and must be bit-identical to the plain path.
        spec = fast_spec(resilience=ResilienceSpec(fault_count=0))
        result, extras = spec.run_detailed()
        assert result == fast_spec().run()
        assert extras["faults_applied"] == 0


class TestCacheExtras:
    def test_extras_round_trip(self, tmp_path):
        spec = fast_spec(resilience=ResilienceSpec(fault_count=2, fault_seed=3))
        result, extras = spec.run_detailed()
        cache = ResultCache(tmp_path)
        cache.store(spec, result, extras=extras)
        loaded = cache.load_with_extras(spec)
        assert loaded is not None
        cached_result, cached_extras = loaded
        assert cached_result == result
        assert cached_extras == extras

    def test_plain_store_loads_none_extras(self, tmp_path):
        spec = fast_spec()
        result = spec.run()
        cache = ResultCache(tmp_path)
        cache.store(spec, result)
        assert cache.load(spec) == result
        cached_result, cached_extras = cache.load_with_extras(spec)
        assert cached_extras is None

    def test_executor_outcome_carries_resilience(self, tmp_path):
        spec = fast_spec(resilience=ResilienceSpec(fault_count=2, fault_seed=3))
        point = PointSpec(spec=spec, series="west-first-nonminimal", index=2)
        executor = SweepExecutor(cache_dir=tmp_path)
        (fresh,) = executor.run_points([point])
        assert fresh.resilience is not None
        assert not fresh.cached
        (cached,) = executor.run_points([point])
        assert cached.cached
        assert cached.resilience == fresh.resilience
        assert cached.result == fresh.result
