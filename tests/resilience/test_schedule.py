"""Tests for fault schedules: validation, serialization, generation."""

import pytest

from repro.core.directions import EAST
from repro.resilience import (
    FAIL,
    HEAL,
    FaultEvent,
    FaultSchedule,
    channel_from_dict,
    channel_to_dict,
)
from repro.topology import Mesh2D
from repro.topology.faults import FaultyTopology, is_strongly_connected


def east_channel(mesh, node=(1, 1)):
    return mesh.channel_in_direction(node, EAST)


class TestChannelCodec:
    def test_round_trip(self, mesh44):
        for channel in mesh44.channels():
            assert channel_from_dict(channel_to_dict(channel)) == channel

    def test_payload_is_json_ready(self, mesh44):
        import json

        payload = channel_to_dict(east_channel(mesh44))
        assert json.loads(json.dumps(payload)) == payload


class TestFaultEvent:
    def test_negative_cycle_rejected(self, mesh44):
        with pytest.raises(ValueError):
            FaultEvent(-1, FAIL, east_channel(mesh44))

    def test_bad_kind_rejected(self, mesh44):
        with pytest.raises(ValueError):
            FaultEvent(0, "explode", east_channel(mesh44))

    def test_dict_round_trip(self, mesh44):
        event = FaultEvent(17, HEAL, east_channel(mesh44))
        assert FaultEvent.from_dict(event.to_dict()) == event


class TestFaultSchedule:
    def test_events_sorted_by_cycle(self, mesh44):
        a = east_channel(mesh44, (0, 0))
        b = east_channel(mesh44, (1, 1))
        schedule = FaultSchedule([FaultEvent(9, FAIL, b), FaultEvent(3, FAIL, a)])
        assert [event.cycle for event in schedule] == [3, 9]
        assert len(schedule) == 2

    def test_double_fail_rejected(self, mesh44):
        ch = east_channel(mesh44)
        with pytest.raises(ValueError, match="already failed"):
            FaultSchedule([FaultEvent(1, FAIL, ch), FaultEvent(2, FAIL, ch)])

    def test_heal_without_fault_rejected(self, mesh44):
        with pytest.raises(ValueError, match="without a prior fault"):
            FaultSchedule([FaultEvent(1, HEAL, east_channel(mesh44))])

    def test_fail_heal_fail_is_valid(self, mesh44):
        ch = east_channel(mesh44)
        schedule = FaultSchedule(
            [
                FaultEvent(1, FAIL, ch),
                FaultEvent(5, HEAL, ch),
                FaultEvent(9, FAIL, ch),
            ]
        )
        assert schedule.failed_at(0) == frozenset()
        assert schedule.failed_at(1) == frozenset([ch])
        assert schedule.failed_at(6) == frozenset()
        assert schedule.failed_at(20) == frozenset([ch])

    def test_channels_and_peak(self, mesh44):
        a = east_channel(mesh44, (0, 0))
        b = east_channel(mesh44, (1, 1))
        schedule = FaultSchedule(
            [FaultEvent(1, FAIL, a), FaultEvent(4, HEAL, a), FaultEvent(2, FAIL, b)]
        )
        assert schedule.channels() == frozenset([a, b])
        assert schedule.peak_failed() == frozenset([a, b])

    def test_validate_for(self, mesh44, cube4):
        schedule = FaultSchedule([FaultEvent(1, FAIL, east_channel(mesh44))])
        schedule.validate_for(mesh44)
        with pytest.raises(ValueError, match="not in"):
            schedule.validate_for(cube4)

    def test_json_round_trip(self, mesh44):
        schedule = FaultSchedule.random(mesh44, 4, seed=7, window=(10, 50))
        restored = FaultSchedule.from_json(schedule.to_json())
        assert restored == schedule

    def test_equality(self, mesh44):
        a = FaultSchedule.random(mesh44, 3, seed=5, window=(0, 10))
        b = FaultSchedule.from_dict(a.to_dict())
        assert a == b
        assert a != FaultSchedule(())


class TestRandomGeneration:
    def test_deterministic_per_seed(self, mesh44):
        a = FaultSchedule.random(mesh44, 5, seed=3, window=(0, 100))
        b = FaultSchedule.random(mesh44, 5, seed=3, window=(0, 100))
        assert a == b
        assert a != FaultSchedule.random(mesh44, 5, seed=4, window=(0, 100))

    def test_count_and_window_respected(self, mesh44):
        schedule = FaultSchedule.random(mesh44, 6, seed=1, window=(20, 40))
        fails = [event for event in schedule if event.kind == FAIL]
        assert len(fails) == 6
        assert all(20 <= event.cycle < 40 for event in fails)

    def test_zero_count_is_empty(self, mesh44):
        assert len(FaultSchedule.random(mesh44, 0, seed=1)) == 0

    def test_heal_after_adds_heals(self, mesh44):
        schedule = FaultSchedule.random(
            mesh44, 3, seed=2, window=(0, 10), heal_after=25
        )
        fails = [event for event in schedule if event.kind == FAIL]
        heals = [event for event in schedule if event.kind == HEAL]
        assert len(fails) == len(heals) == 3
        for fail in fails:
            assert any(
                heal.channel == fail.channel
                and heal.cycle == fail.cycle + 25
                for heal in heals
            )

    def test_require_connected_holds(self, mesh44):
        for seed in range(10):
            schedule = FaultSchedule.random(
                mesh44, 8, seed=seed, window=(0, 10), require_connected=True
            )
            degraded = FaultyTopology(mesh44, schedule.peak_failed())
            assert is_strongly_connected(degraded)

    def test_empty_window_rejected(self, mesh44):
        with pytest.raises(ValueError, match="window"):
            FaultSchedule.random(mesh44, 2, seed=1, window=(5, 5))

    def test_bad_heal_after_rejected(self, mesh44):
        with pytest.raises(ValueError, match="heal_after"):
            FaultSchedule.random(mesh44, 2, seed=1, heal_after=0)

    def test_matches_topology_fault_sampling(self, mesh44):
        # The schedule's fault set is drawn exactly as
        # random_channel_faults draws it for the same seed.
        from repro.topology import random_channel_faults

        schedule = FaultSchedule.random(
            mesh44, 5, seed=11, window=(0, 10), require_connected=False
        )
        faulty = random_channel_faults(mesh44, 5, seed=11)
        assert schedule.peak_failed() == faulty.failed
