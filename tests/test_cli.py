"""Tests for the turnmodel command-line interface."""

import pytest

from repro.cli import build_parser, main, parse_topology
from repro.topology import Hypercube, Mesh, Mesh2D, Torus


class TestParseTopology:
    def test_mesh_2d(self):
        topology = parse_topology("mesh:5x4")
        assert isinstance(topology, Mesh2D)
        assert topology.shape == (5, 4)

    def test_mesh_3d(self):
        topology = parse_topology("mesh:3x3x3")
        assert isinstance(topology, Mesh)
        assert topology.shape == (3, 3, 3)

    def test_cube(self):
        topology = parse_topology("cube:6")
        assert isinstance(topology, Hypercube)
        assert topology.n_dims == 6

    def test_torus(self):
        topology = parse_topology("torus:5x2")
        assert isinstance(topology, Torus)
        assert topology.shape == (5, 5)

    def test_missing_size_rejected(self):
        with pytest.raises(ValueError):
            parse_topology("mesh")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            parse_topology("ring:8")


class TestCommands:
    def test_tables_theorem1(self, capsys):
        assert main(["tables", "--which", "theorem1"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out
        assert "0.25" in out

    def test_tables_pcube(self, capsys):
        assert main(["tables", "--which", "pcube"]) == 0
        out = capsys.readouterr().out
        assert "1011010100" in out
        assert "3(+2)" in out

    def test_tables_enumeration(self, capsys):
        assert main(["tables", "--which", "enumeration"]) == 0
        out = capsys.readouterr().out
        assert "12 prevent deadlock" in out

    def test_simulate_small(self, capsys):
        code = main([
            "simulate", "--topology", "mesh:4x4", "--algorithm", "xy",
            "--pattern", "uniform", "--load", "0.05",
            "--warmup", "200", "--measure", "800", "--drain", "200",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "thru=" in out and "lat=" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "negative-first" in out
        assert "patterns:" in out

    def test_figure_rejects_unknown_number(self, capsys):
        assert main(["figure", "99"]) == 2

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSynthCommand:
    def test_census_and_artifacts(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "synth-report.json"
        manifest_dir = tmp_path / "manifests"
        code = main([
            "synth", "--topology", "mesh4x4",
            "--out", str(out_path), "--manifest-dir", str(manifest_dir),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "12 deadlock-free" in out
        assert "west-first" in out
        assert "north-last" in out
        assert "negative-first" in out

        report = json.loads(out_path.read_text())
        assert report["schema_version"] == 1
        assert report["tool"] == "synth"
        assert report["spec_hash"]
        assert report["census"]["deadlock_free"] == 12
        assert report["census"]["deadlocked"] == 4
        assert report["missing_rediscovery"] is None

        manifests = sorted(manifest_dir.glob("synth-*.json"))
        assert len(manifests) == 4
        candidate = json.loads(manifests[0].read_text())
        assert candidate["tool"] == "synth-candidate"
        assert candidate["spec_hash"] == report["spec_hash"]

    def test_truncated_run_does_not_fail_rediscovery_gate(self, capsys):
        assert main(["synth", "--topology", "mesh:4x4",
                     "--max-candidates", "2"]) == 0
        assert "TRUNCATED" in capsys.readouterr().out

    def test_unsupported_topology_is_a_usage_error(self, capsys):
        assert main(["synth", "--topology", "torus:4x4"]) == 2
        assert "meshes and hypercubes" in capsys.readouterr().err

    def test_simulate_ranks_by_throughput(self, capsys):
        code = main([
            "synth", "--topology", "mesh:4x4", "--simulate",
            "--loads", "0.05",
        ])
        assert code == 0
        assert "thr=" in capsys.readouterr().out


class TestNewTopologies:
    def test_hex_spec(self):
        from repro.topology import HexMesh

        topology = parse_topology("hex:6x4")
        assert isinstance(topology, HexMesh)
        assert topology.shape == (6, 4)

    def test_hex_square_shorthand(self):
        assert parse_topology("hex:5").shape == (5, 5)

    def test_oct_spec(self):
        from repro.topology import OctMesh

        topology = parse_topology("oct:4x6")
        assert isinstance(topology, OctMesh)
        assert topology.shape == (4, 6)

    def test_simulate_on_hex(self, capsys):
        code = main([
            "simulate", "--topology", "hex:4x4",
            "--algorithm", "hex-negative-first", "--pattern", "uniform",
            "--load", "0.05", "--warmup", "200", "--measure", "800",
            "--drain", "200",
        ])
        assert code == 0
        assert "thru=" in capsys.readouterr().out


class TestSweepCommand:
    SWEEP_ARGS = [
        "sweep", "--topology", "mesh:4x4",
        "--algorithm", "xy", "negative_first",
        "--pattern", "transpose", "--loads", "0.05", "0.1",
        "--warmup", "200", "--measure", "800", "--drain", "200",
    ]

    def test_sweep_runs(self, capsys):
        assert main(self.SWEEP_ARGS) == 0
        out = capsys.readouterr().out
        assert "xy / transpose" in out
        assert "negative-first / transpose" in out

    def test_sweep_parallel_with_cache_and_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "sweep.json"
        cache_dir = tmp_path / "cache"
        args = self.SWEEP_ARGS + [
            "--jobs", "2", "--cache-dir", str(cache_dir),
            "--out", str(out_path),
        ]
        assert main(args) == 0
        first = json.loads(out_path.read_text())
        assert first["schema_version"] == 1
        assert first["tool"] == "sweep"
        assert first["kind"] == "sweep-run"
        assert [s["algorithm"] for s in first["series"]] == [
            "xy", "negative-first",
        ]
        assert len(list(cache_dir.glob("*.json"))) == 4

        # Second invocation hits the cache and reproduces the output.
        capsys.readouterr()
        assert main(args) == 0
        assert json.loads(out_path.read_text()) == first

    def test_sweep_default_load_grid(self, capsys):
        code = main([
            "sweep", "--topology", "mesh:4x4", "--algorithm", "xy",
            "--pattern", "uniform", "--load-start", "0.05",
            "--load-stop", "0.1", "--load-count", "2",
            "--warmup", "200", "--measure", "800", "--drain", "200",
        ])
        assert code == 0
        assert "0.050" in capsys.readouterr().out


class TestLoadsCommand:
    def test_static_loads(self, capsys):
        code = main([
            "loads", "--topology", "mesh:4x4", "--pattern", "transpose",
            "--algorithm", "xy", "negative-first",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "saturation bound" in out
        assert "xy" in out and "negative-first" in out


class TestResilienceCommand:
    def test_small_fault_sweep(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "res.json"
        code = main([
            "resilience", "--topology", "mesh:4x4",
            "--algorithm", "xy", "west-first-nonminimal",
            "--pattern", "uniform", "--load", "0.05",
            "--faults", "0", "2",
            "--warmup", "100", "--measure", "600", "--drain", "300",
            "--out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "delivered fraction" in out
        assert "west-first-nonminimal" in out
        payload = json.loads(out_path.read_text())
        assert payload["schema_version"] == 1
        assert payload["tool"] == "resilience"
        assert payload["topology"] == "mesh:4x4"
        assert payload["fault_counts"] == [0, 2]
        cells = payload["cells"]
        assert {c["algorithm"] for c in cells} == {"xy", "west-first-nonminimal"}
        for cell in cells:
            if cell["fault_count"]:
                assert cell["resilience"]["recertifications"] > 0
